//! Offline stand-in for the crates.io `rand` crate (0.8 API subset).
//!
//! The build environment has no crates registry, so the workspace vendors
//! the parts of `rand` it uses: [`Rng::gen_range`] / [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] (xoshiro256++ seeded
//! via SplitMix64, the same algorithm family the real crate uses on 64-bit
//! targets), and [`seq::SliceRandom::shuffle`].
//!
//! Streams are deterministic for a given seed, which is all the simulator
//! requires; they are NOT bit-compatible with upstream `rand`.

/// The core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A generator seedable from a `u64` (the only constructor the workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from their full domain (`rng.gen::<T>()`); `f64`/`f32`
/// sample uniformly from `[0, 1)`, matching the real crate's `Standard`
/// distribution.
pub trait StandardSample: Sized {
    /// Draws one sample.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! int_standard_sample {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_standard_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) as f32 * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: used to expand a 64-bit seed into generator state.
    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias so `StdRng` call sites (if any appear later) keep working.
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Sequence-related random operations.

    use super::RngCore;

    /// Random operations over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut v1: Vec<u32> = (0..50).collect();
        let mut v2: Vec<u32> = (0..50).collect();
        v1.shuffle(&mut SmallRng::seed_from_u64(9));
        v2.shuffle(&mut SmallRng::seed_from_u64(9));
        assert_eq!(v1, v2);
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn generic_rng_param_works() {
        fn jitter(rng: &mut impl super::Rng) -> u64 {
            rng.gen_range(1..100)
        }
        let mut rng = SmallRng::seed_from_u64(11);
        let v = jitter(&mut rng);
        assert!((1..100).contains(&v));
    }
}
