//! Offline stand-in for the crates.io `bytes` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the (small) portion of the `bytes` API it uses:
//! [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] traits with
//! big-endian integer accessors. Semantics match the real crate for the
//! covered surface; cheap clones are provided by an `Arc`-backed buffer
//! with a view range.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice (copies in this shim).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same backing storage.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    ///
    /// Panics when `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Splits off and returns the bytes from `at` onward; `self` keeps the
    /// prefix.
    ///
    /// # Panics
    ///
    /// Panics when `at > self.len()`.
    pub fn split_off(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Splits off and returns the first `at` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, rest);
        BytesMut { data: head }
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.data).fmt(f)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { data: v.to_vec() }
    }
}

/// Read access to a contiguous buffer, advancing an internal cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes into `dst`, advancing.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a `u8`, advancing.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads an `i8`, advancing.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a big-endian `u16`, advancing.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`, advancing.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`, advancing.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Copies the next `len` bytes into a fresh [`Bytes`], advancing.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

/// Write access to a growable buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends the remaining bytes of another buffer.
    fn put<B: Buf>(&mut self, mut src: B)
    where
        Self: Sized,
    {
        while src.has_remaining() {
            let n = src.chunk().len();
            self.put_slice(src.chunk());
            src.advance(n);
        }
    }

    /// Appends a `u8`.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends an `i8`.
    fn put_i8(&mut self, n: i8) {
        self.put_u8(n as u8);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEADBEEF);
        buf.put_u64(0x0102030405060708);
        let frozen = buf.freeze();
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u8(), 0xAB);
        assert_eq!(rd.get_u16(), 0x1234);
        assert_eq!(rd.get_u32(), 0xDEADBEEF);
        assert_eq!(rd.get_u64(), 0x0102030405060708);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    fn buf_for_slice_advances() {
        let data = [1u8, 2, 3, 4];
        let mut rd: &[u8] = &data;
        let mut two = [0u8; 2];
        rd.copy_to_slice(&mut two);
        assert_eq!(two, [1, 2]);
        assert_eq!(rd.remaining(), 2);
        assert_eq!(rd.chunk(), &[3, 4]);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\n\x01");
        assert_eq!(format!("{b:?}"), "b\"a\\n\\x01\"");
    }
}
