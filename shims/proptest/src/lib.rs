//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no crates registry, so the workspace vendors
//! the subset of the proptest API its property tests use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, [`arbitrary::any`],
//! [`collection::vec`] / [`collection::btree_set`], [`prop_oneof!`],
//! [`strategy::Just`], the `prop_assert*` / [`prop_assume!`] macros,
//! [`test_runner::ProptestConfig`], and [`test_runner::TestCaseError`].
//!
//! Differences from upstream, deliberate for an offline test shim:
//!
//! - **No shrinking.** A failing case reports its inputs (via the panic
//!   message of the failed assertion) but is not minimized.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so runs are reproducible; set `PROPTEST_RNG_SEED` to
//!   explore a different stream and `PROPTEST_CASES` to change the case
//!   count.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it.
        fn prop_flat_map<S, F>(self, f: F) -> Flatten<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            Flatten { inner: self, f }
        }

        /// Keeps only values passing `pred`, retrying on rejection.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    // A strategy reference generates like the strategy itself; this lets
    // combinators hold strategies by value while the macro generates from a
    // borrow.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct Flatten<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Flatten<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive values: {}",
                self.whence
            );
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Object-safe generation, so strategies can live behind a pointer.
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Picks uniformly among several strategies (see `prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + draw) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + draw) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    // String strategies from a regex subset: sequences of literal chars or
    // `[...]` classes (with `a-z` ranges), each optionally quantified by
    // `{n}`, `{m,n}`, `?`, `+`, or `*`. This covers the patterns the
    // workspace tests use; anything fancier panics loudly.
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            let chars: Vec<char> = self.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                let choices: Vec<char> = match chars[i] {
                    '[' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == ']')
                            .unwrap_or_else(|| panic!("unclosed [ in pattern {self:?}"))
                            + i;
                        let mut set = Vec::new();
                        let mut j = i + 1;
                        while j < close {
                            if j + 2 < close && chars[j + 1] == '-' {
                                let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                                assert!(lo <= hi, "bad range in pattern {self:?}");
                                set.extend((lo..=hi).filter_map(char::from_u32));
                                j += 3;
                            } else {
                                set.push(chars[j]);
                                j += 1;
                            }
                        }
                        i = close + 1;
                        set
                    }
                    '\\' => {
                        i += 2;
                        vec![chars[i - 1]]
                    }
                    c if "(){}?+*|.^$".contains(c) => {
                        panic!("unsupported regex syntax {c:?} in pattern {self:?}")
                    }
                    c => {
                        i += 1;
                        vec![c]
                    }
                };
                assert!(!choices.is_empty(), "empty character class in {self:?}");
                let (lo, hi): (usize, usize) = if i < chars.len() {
                    match chars[i] {
                        '{' => {
                            let close = chars[i..]
                                .iter()
                                .position(|&c| c == '}')
                                .unwrap_or_else(|| panic!("unclosed {{ in pattern {self:?}"))
                                + i;
                            let body: String = chars[i + 1..close].iter().collect();
                            i = close + 1;
                            match body.split_once(',') {
                                Some((m, n)) => (
                                    m.trim().parse().expect("bad repeat lower bound"),
                                    n.trim().parse().expect("bad repeat upper bound"),
                                ),
                                None => {
                                    let n = body.trim().parse().expect("bad repeat count");
                                    (n, n)
                                }
                            }
                        }
                        '?' => {
                            i += 1;
                            (0, 1)
                        }
                        '+' => {
                            i += 1;
                            (1, 8)
                        }
                        '*' => {
                            i += 1;
                            (0, 8)
                        }
                        _ => (1, 1),
                    }
                } else {
                    (1, 1)
                };
                assert!(lo <= hi, "bad repeat bounds in pattern {self:?}");
                let n = lo + rng.below((hi - lo) as u64 + 1) as usize;
                for _ in 0..n {
                    out.push(choices[rng.below(choices.len() as u64) as usize]);
                }
            }
            out
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident.$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
}

pub mod arbitrary {
    //! Default strategies per type ([`any`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy's type.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Returns the canonical strategy for `A` (`any::<u8>()` etc.).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Strategy backed by a plain sampling function.
    #[derive(Clone, Copy)]
    pub struct FnStrategy<T>(fn(&mut TestRng) -> T);

    impl<T> Strategy for FnStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FnStrategy<$t>;
                fn arbitrary() -> Self::Strategy {
                    FnStrategy(|rng| rng.next_u64() as $t)
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = FnStrategy<bool>;
        fn arbitrary() -> Self::Strategy {
            FnStrategy(|rng| rng.next_u64() & 1 == 1)
        }
    }

    impl Arbitrary for char {
        type Strategy = FnStrategy<char>;
        fn arbitrary() -> Self::Strategy {
            // Printable ASCII keeps generated text debuggable.
            FnStrategy(|rng| (b' ' + rng.below(95) as u8) as char)
        }
    }

    impl Arbitrary for f64 {
        type Strategy = FnStrategy<f64>;
        fn arbitrary() -> Self::Strategy {
            FnStrategy(|rng| rng.unit_f64())
        }
    }

    /// Strategy for fixed-size arrays of [`Arbitrary`] elements.
    pub struct ArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    impl<A: Arbitrary, const N: usize> Arbitrary for [A; N] {
        type Strategy = ArrayStrategy<A::Strategy, N>;
        fn arbitrary() -> Self::Strategy {
            ArrayStrategy {
                element: A::arbitrary(),
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// An inclusive size interval for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_inclusive - self.lo) as u64 + 1;
            self.lo + rng.below(span) as usize
        }
    }

    /// Generates `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s whose size falls in `size` (best-effort when
    /// the element domain is small).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set, so allow extra draws before
            // settling for whatever size was reached.
            for _ in 0..target.saturating_mul(16).max(32) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

pub mod test_runner {
    //! The per-test runner: config, RNG, and case-level error type.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case's inputs were rejected (e.g. by `prop_assume!`); it
        /// does not count against the case budget.
        Reject(String),
        /// An assertion failed; the whole property fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "failed: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-property configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
        /// Maximum rejected cases (via `prop_assume!`) before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig {
                cases,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// The deterministic generator handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name (plus `PROPTEST_RNG_SEED` when set) so
        /// every property test has its own reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let extra: u64 = std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ extra.rotate_left(32),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics when `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal: expands the item list inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                #[allow(unreachable_code)]
                let case: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                match case {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "{}: too many prop_assume! rejections ({})",
                            stringify!($name),
                            rejected
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed after {} passing case(s): {}",
                            stringify!($name),
                            passed,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

/// Like `assert!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Like `assert_ne!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Rejects the current case (does not count as pass or failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let s = crate::collection::vec(0u64..100, 1..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 5u32..10, w in 0i64..=3) {
            prop_assert!((5..10).contains(&v));
            prop_assert!((0..=3).contains(&w));
        }

        #[test]
        fn vec_sizes_respected(xs in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
        }

        #[test]
        fn maps_and_tuples_compose(
            pair in (0u8..4, any::<bool>()).prop_map(|(n, b)| (n as u32 * 2, b)),
        ) {
            prop_assert!(pair.0 <= 6 && pair.0 % 2 == 0);
        }

        #[test]
        fn oneof_and_flat_map(
            v in prop_oneof![Just(1u8), Just(2u8)]
                .prop_flat_map(|n| crate::collection::vec(Just(n), 1..4)),
        ) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x == v[0]));
            prop_assert!(v[0] == 1 || v[0] == 2);
        }

        #[test]
        fn regex_subset_strings(key in "[a-zA-Z0-9_:]{1,32}") {
            prop_assert!(!key.is_empty() && key.len() <= 32);
            prop_assert!(key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_form_works(n in 0u8..255) {
            prop_assert!(n < 255);
        }
    }

    #[test]
    fn failing_property_panics() {
        let result = std::panic::catch_unwind(|| {
            // No `#[test]` here: the expansion is nested inside this
            // test fn, where rustc warns that inner items can't be
            // collected by the harness.
            proptest! {
                fn always_fails(n in 0u8..4) {
                    prop_assert!(n > 100, "n was {}", n);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }

    #[test]
    fn btree_set_reaches_target_when_domain_allows() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::for_test("set");
        for _ in 0..50 {
            let s = crate::collection::btree_set(0u32..32, 1..8);
            let set = s.generate(&mut rng);
            assert!(!set.is_empty() && set.len() < 8);
        }
    }

    #[test]
    fn arrays_generate() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::for_test("arr");
        let s = any::<[u8; 6]>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_eq!(a.len(), 6);
        // 48 random bits colliding twice in a row is effectively impossible.
        assert_ne!(a, b);
    }
}
