//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no crates registry, so the workspace vendors a
//! minimal bench harness with the same surface the benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. It times each bench
//! with a short calibrated loop and prints mean time per iteration — enough
//! to compare hot paths locally, with none of the statistics machinery.
//!
//! Set `CRITERION_SHIM_MS` to change the per-bench measurement budget
//! (default 200 ms; `cargo test` style smoke invocations stay fast).

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    budget: Duration,
    /// (iterations, elapsed) recorded by the last `iter` call.
    sample: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count that fits the
    /// measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: double iterations until the batch takes >= 1% of budget.
        let mut iters: u64 = 1;
        let threshold = self.budget / 100;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= threshold || iters >= 1 << 20 {
                // Scale to fill the remaining budget, then measure.
                let per_iter = elapsed.as_nanos().max(1) / iters as u128;
                let target = (self.budget.as_nanos() / per_iter.max(1)).max(1) as u64;
                let total = target.min(1 << 24);
                let start = Instant::now();
                for _ in 0..total {
                    black_box(routine());
                }
                self.sample = Some((total, start.elapsed()));
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }
}

/// Registers and runs benchmarks (configuration-free shim).
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_SHIM_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs `routine` as a named benchmark and prints its mean latency.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.budget,
            sample: None,
        };
        routine(&mut b);
        match b.sample {
            Some((iters, elapsed)) => {
                let per_iter = elapsed.as_nanos() as f64 / iters as f64;
                println!("bench {id:<40} {per_iter:>12.1} ns/iter ({iters} iters)");
            }
            None => println!("bench {id:<40} (no measurement)"),
        }
        self
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        std::env::set_var("CRITERION_SHIM_MS", "5");
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1u64 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
