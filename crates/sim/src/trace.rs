//! Structured event tracing: a low-overhead event stream recorded in sim
//! time, with pluggable sinks.
//!
//! Components emit [`TraceEvent`]s through [`crate::engine::Ctx::emit`];
//! the engine stamps each with the virtual time, a global sequence
//! number, and the emitting component, and fans the resulting
//! [`TraceRecord`] out to every registered [`TraceSink`]. When no sink is
//! registered the emit path is a single branch on an `Option`, so
//! instrumented hot paths cost nothing in untraced runs (the event
//! closure is never built).
//!
//! Three sinks ship with the engine:
//!
//! - [`RingSink`]: a bounded in-memory ring of the most recent records
//!   (post-mortem debugging, test assertions).
//! - [`JsonlSink`]: streams one JSON object per record to a writer
//!   (capture for offline diffing; see EXPERIMENTS.md).
//! - [`HashSink`]: folds every record into a stable 64-bit FNV-1a digest.
//!   Two runs with the same seed must produce the same hash — the
//!   golden-trace regression suite pins these digests.
//!
//! The online [`crate::check::InvariantChecker`] is a fourth sink that
//! asserts cross-component invariants while the simulation runs.
//!
//! Events carry only integers, booleans, and `&'static str` tags so the
//! digest is identical across debug/release builds and platforms (no
//! floats, no pointers, no hash-map iteration order).

use std::any::Any;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

use crate::engine::ComponentId;
use crate::time::SimTime;

/// A single value inside a [`TraceEvent`], as seen by generic sinks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integer (all numeric fields widen to `u64`).
    U64(u64),
    /// A boolean flag.
    Bool(bool),
    /// A static tag (memory level, drop reason, fault kind).
    Str(&'static str),
}

/// One structured event emitted by an instrumented component.
///
/// Spans are keyed by the identifiers the paper's execution model cares
/// about: request id, lambda (workload) id, NPU core/worker thread, and
/// memory level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The gateway accepted a request and sent the first attempt.
    RequestSubmitted {
        /// Gateway-assigned request id (globally unique per run).
        request_id: u64,
        /// The target workload.
        workload_id: u32,
    },
    /// The gateway re-sent an outstanding request after a timeout.
    RequestRetransmit {
        /// The outstanding request.
        request_id: u64,
        /// The target workload.
        workload_id: u32,
    },
    /// The gateway resolved a request (response delivered or given up).
    RequestCompleted {
        /// The resolved request.
        request_id: u64,
        /// The target workload.
        workload_id: u32,
        /// Wire-to-wire latency in nanoseconds.
        latency_ns: u64,
        /// Whether the request failed (timeout exhaustion / lost placement).
        failed: bool,
    },
    /// The gateway had no placement for a submitted workload.
    RequestUnplaced {
        /// The unroutable workload.
        workload_id: u32,
    },
    /// A lambda execution started on a core (NPU thread / host worker).
    ExecStart {
        /// Core (thread) index within the component.
        core: u32,
        /// Lambda index within the deployed program.
        lambda_id: u32,
        /// The request being served.
        request_id: u64,
        /// The tenant the request was stamped with at the gateway. The
        /// checker asserts it matches the lambda's registered owner —
        /// a request must never execute under another tenant's lambda.
        tenant_id: u32,
    },
    /// The execution suspended awaiting a lambda RPC (core stays held:
    /// run-to-completion).
    ExecSuspend {
        /// Core holding the suspended job.
        core: u32,
        /// Lambda index.
        lambda_id: u32,
        /// The request being served.
        request_id: u64,
    },
    /// A suspended execution resumed (RPC response arrived).
    ExecResume {
        /// Core holding the job.
        core: u32,
        /// Lambda index.
        lambda_id: u32,
        /// The request being served.
        request_id: u64,
    },
    /// The execution finished and the core was released.
    ExecFinish {
        /// Core that ran the job.
        core: u32,
        /// Lambda index.
        lambda_id: u32,
        /// The request served.
        request_id: u64,
        /// Total cycles charged for the job (overhead + instructions +
        /// memory accesses).
        total_cycles: u64,
        /// Fixed cycles charged before execution (parse/match, reorder).
        overhead_cycles: u64,
        /// One cycle per interpreted instruction.
        instr_cycles: u64,
    },
    /// Memory-hierarchy cycles charged for one placed object (or the
    /// CTM-resident packet payload / response stream) of a finishing job.
    MemCharge {
        /// Core that ran the job.
        core: u32,
        /// Lambda index.
        lambda_id: u32,
        /// The request served.
        request_id: u64,
        /// Memory level tag (`"LMEM"`, `"CTM"`, `"IMEM"`, `"EMEM"`).
        level: &'static str,
        /// The level's access latency in cycles.
        latency_cycles: u64,
        /// Scalar (word) accesses.
        scalar: u64,
        /// Bulk (DMA-style) operations issued.
        bulk_ops: u64,
        /// Bytes moved by bulk operations.
        bulk_bytes: u64,
        /// Cycles charged for this object under the cost model.
        cycles: u64,
        /// Tenant owning the charged memory object. The checker asserts
        /// it matches the executing span's tenant — a lambda must never
        /// read another tenant's memory objects.
        owner_tenant: u32,
    },
    /// A request entered the WFQ (all cores busy). `depth` is the
    /// lambda's queue depth after the push.
    WfqEnqueue {
        /// Lambda index owning the per-lambda queue.
        lambda_id: u32,
        /// The lambda's weight in milli-units (weight × 1000, rounded).
        weight_milli: u64,
        /// The lambda's queue depth after the push.
        depth: u64,
        /// Tenant level of the hierarchical tree the lambda queues under.
        tenant_id: u32,
        /// The tenant's weight in milli-units.
        tenant_weight_milli: u64,
    },
    /// The WFQ released a request to a freed core. `depth` is the
    /// lambda's queue depth after the pop.
    WfqDequeue {
        /// Lambda index that won this service slot.
        lambda_id: u32,
        /// The lambda's weight in milli-units.
        weight_milli: u64,
        /// The lambda's queue depth after the pop.
        depth: u64,
        /// Tenant that won the tenant-level service slot.
        tenant_id: u32,
        /// The tenant's weight in milli-units.
        tenant_weight_milli: u64,
    },
    /// A link accepted a frame for transmission.
    LinkTx {
        /// Frame wire length in bytes.
        bytes: u64,
    },
    /// A link dropped a frame.
    LinkDrop {
        /// Frame wire length in bytes.
        bytes: u64,
        /// Why: `"down"`, `"burst"`, `"loss"`, or `"overflow"`.
        reason: &'static str,
    },
    /// A switch forwarded a frame to an output port.
    SwitchForward {
        /// Frame wire length in bytes.
        bytes: u64,
    },
    /// A switch dropped a frame (unknown destination or queue overflow).
    SwitchDrop {
        /// Frame wire length in bytes.
        bytes: u64,
    },
    /// A component (re)installed a program/firmware image while running.
    /// Jobs in flight across an install may have been costed under the
    /// previous image's placements.
    ProgramInstall {},
    /// A fault-layer event took effect on this component.
    Fault {
        /// Fault kind (`"crash"`, `"restart"`, `"evict"`, ...).
        kind: &'static str,
        /// Kind-specific detail (e.g. jobs lost, worker index).
        detail: u64,
    },
    /// A free-form experiment marker.
    Mark {
        /// Marker label.
        label: &'static str,
        /// First payload value.
        a: u64,
        /// Second payload value.
        b: u64,
    },
    /// The placement planner declared a worker's NIC capacity envelope;
    /// subsequent `Place` events on that worker are checked against it.
    PlacementCapacity {
        /// Worker index.
        worker: u32,
        /// Usable instruction-store words for lambda code.
        instr_words: u64,
        /// Usable bytes for lambda objects (all levels summed).
        mem_bytes: u64,
    },
    /// A lambda gained a live placement on a worker target.
    Place {
        /// The placed workload.
        workload_id: u32,
        /// Worker index.
        worker: u32,
        /// Serving engine: `"nic"` or `"host"`.
        target: &'static str,
        /// Instruction-store words the placement occupies (NIC targets).
        instr_words: u64,
        /// Object bytes the placement occupies (NIC targets).
        mem_bytes: u64,
    },
    /// A live placement was withdrawn (scale-in, or the old side of a
    /// completed migration).
    Unplace {
        /// The workload.
        workload_id: u32,
        /// Worker index.
        worker: u32,
        /// Serving engine the placement is leaving.
        target: &'static str,
    },
    /// A migration began: the new placement is prepared while the old
    /// one keeps serving (make-before-break).
    MigrateStart {
        /// The migrating workload.
        workload_id: u32,
        /// Worker the placement leaves.
        from_worker: u32,
        /// Engine the placement leaves.
        from_target: &'static str,
        /// Worker the placement moves to.
        to_worker: u32,
        /// Engine the placement moves to.
        to_target: &'static str,
    },
    /// A migration finished: traffic switched and the old placement was
    /// withdrawn.
    MigrateDone {
        /// The migrated workload.
        workload_id: u32,
        /// Worker the placement left.
        from_worker: u32,
        /// Engine the placement left.
        from_target: &'static str,
        /// Worker the placement now lives on.
        to_worker: u32,
        /// Engine the placement now runs on.
        to_target: &'static str,
    },
    /// The placement planner refused to place a lambda.
    PlacementReject {
        /// The rejected workload.
        workload_id: u32,
        /// Worker considered.
        worker: u32,
        /// Why (`"instr-store"`, `"memory"`, `"threads"`, ...).
        reason: &'static str,
    },
    /// The gateway's admission controller shed a request before it
    /// entered the system (never submitted; no request id is assigned).
    AdmissionReject {
        /// The target workload.
        workload_id: u32,
        /// Why (`"rate"`, `"concurrency"`, `"deadline"`).
        reason: &'static str,
    },
    /// The gateway issued a hedge (duplicate attempt to a second
    /// replica) for a still-outstanding request.
    HedgeFired {
        /// The hedged request.
        request_id: u64,
        /// The target workload.
        workload_id: u32,
    },
    /// A hedged request's winning reply came from the hedge replica
    /// (emitted just before the single `request_completed`).
    HedgeWon {
        /// The hedged request.
        request_id: u64,
        /// The target workload.
        workload_id: u32,
    },
    /// A worker dropped an expired request at dequeue instead of
    /// executing it (deadline propagation).
    DeadlineDrop {
        /// The expired request.
        request_id: u64,
        /// The target workload.
        workload_id: u32,
        /// How far past the deadline the dequeue happened, in ns.
        overdue_ns: u64,
    },
    /// The fail-slow detector quarantined a gray endpoint: its EWMA
    /// latency was an outlier against the cluster median.
    EndpointQuarantine {
        /// Index of the quarantined worker.
        worker: u32,
        /// The endpoint's EWMA latency in ns at quarantine time.
        ewma_ns: u64,
        /// The cluster median EWMA in ns it was judged against.
        median_ns: u64,
    },
    /// A link drop destroyed one fragment of a multi-packet message, so
    /// the whole reassembly will stall or abort; emitted alongside the
    /// `link_drop` so conservation accounting can attribute the loss to
    /// the owning request.
    FragDrop {
        /// The request whose fragment was lost.
        request_id: u64,
        /// Index of the lost fragment.
        frag_index: u64,
        /// Total fragments in the message.
        frag_count: u64,
        /// The drop reason of the underlying link drop.
        reason: &'static str,
    },
    /// The membership controller granted (or renewed) a worker's lease.
    LeaseGrant {
        /// Index of the worker in the testbed.
        worker: u32,
        /// Fencing token the lease carries.
        epoch: u64,
        /// Absolute expiry of the lease, in ns.
        until_ns: u64,
    },
    /// A worker's lease provably expired at the controller: the grace
    /// bound passed with no ack, so re-placement is now safe.
    LeaseExpire {
        /// Index of the worker.
        worker: u32,
        /// The epoch the expired lease carried.
        epoch: u64,
    },
    /// The controller fenced a worker: placements stamped with `epoch`
    /// or older are dead, and any execution on `component` before a
    /// matching `worker_rejoin` is split-brain.
    WorkerFenced {
        /// Index of the fenced worker.
        worker: u32,
        /// The worker's component index (for checker attribution).
        component: u32,
        /// Highest epoch the fence invalidates.
        epoch: u64,
    },
    /// A fenced worker completed the lease-renewal handshake and rejoined
    /// with a strictly higher epoch.
    WorkerRejoin {
        /// Index of the rejoining worker.
        worker: u32,
        /// The worker's component index (for checker attribution).
        component: u32,
        /// The new epoch (must exceed every previously fenced epoch).
        epoch: u64,
    },
    /// A worker refused a request or deploy carrying a stale fencing
    /// token (or arriving after its own lease lapsed) with `RC_FENCED`.
    FencedReject {
        /// The refused request (0 for deploys).
        request_id: u64,
        /// The target workload.
        workload_id: u32,
        /// The fencing token the work carried.
        hdr_epoch: u64,
        /// The epoch the worker currently holds.
        worker_epoch: u64,
    },
    /// The gateway discarded a late reply stamped with a fenced epoch
    /// instead of completing the request with it (no double-completion).
    StaleReplyDrop {
        /// The request the late reply answered.
        request_id: u64,
        /// The epoch the reply carried.
        reply_epoch: u64,
        /// The fence floor the reply failed to clear.
        floor_epoch: u64,
    },
    /// The control plane serialized its membership + placement state to
    /// stable storage.
    SnapshotTaken {
        /// Monotonic snapshot sequence number.
        seq: u64,
        /// Workers captured in the snapshot.
        workers: u64,
        /// Placement entries captured in the snapshot.
        placements: u64,
    },
    /// A restarted control plane restored the last stable snapshot and
    /// reconciled it against worker-reported epochs.
    SnapshotRestored {
        /// Sequence number of the restored snapshot.
        seq: u64,
        /// Workers whose reported epoch was ahead of the snapshot.
        reconciled: u64,
    },
    /// A replicated-KV operation entered the system at the gateway (the
    /// linearizability checker's invocation event; retries and hedges of
    /// the same request do not re-invoke).
    KvInvoke {
        /// Gateway request id (pairs with the matching [`Self::KvResponse`]).
        request_id: u64,
        /// The key operated on.
        key: u64,
        /// `true` for a write (PUT), `false` for a read (GET).
        write: bool,
        /// The value written (writes) or 0 (reads).
        value: u64,
    },
    /// A replicated-KV operation resolved at the gateway (the
    /// linearizability checker's response event).
    KvResponse {
        /// Gateway request id (pairs with the matching [`Self::KvInvoke`]).
        request_id: u64,
        /// Whether the operation was acknowledged as successful.
        ok: bool,
        /// Reads: whether the key was present. Writes: always `true`.
        found: bool,
        /// Reads: the value returned (0 when absent). Writes: the value
        /// that was acknowledged.
        value: u64,
    },
    /// The control plane registered a workload→tenant assignment. The
    /// checker builds its ownership map from these, so they must precede
    /// any traffic for the workload (the testbed emits them at t=0).
    TenantAssign {
        /// The owning tenant.
        tenant_id: u32,
        /// The owned workload.
        workload_id: u32,
    },
    /// A request targeted a lambda whose firmware page was not resident
    /// in the worker's instruction-store cache: the page is fetched in
    /// and the fetch cycles are charged as execution overhead on the
    /// faulting request (the per-lambda analogue of the whole-image
    /// firmware swap).
    FirmwareFault {
        /// Tenant owning the faulting lambda.
        tenant_id: u32,
        /// The faulting lambda.
        workload_id: u32,
        /// Instruction-store words paged in.
        words: u64,
        /// Pages evicted to make room (each also emits `firmware_evict`).
        evictions: u64,
    },
    /// A firmware page was evicted from a worker's instruction-store
    /// cache to make room for a faulting page (LRU order).
    FirmwareEvict {
        /// Tenant owning the evicted lambda.
        tenant_id: u32,
        /// The evicted lambda.
        workload_id: u32,
        /// Instruction-store words freed.
        words: u64,
    },
    /// The gateway-tier controller installed a new shard map. Epochs are
    /// strictly increasing; the checker rejects any regression.
    GwShardMap {
        /// The new map's epoch (fencing token for the whole ring).
        epoch: u64,
        /// Gateway shards serving in this map.
        shards: u64,
    },
    /// A gateway shard was deposed from the ring: its tier lease provably
    /// expired (crash/partition) or it was drained, and the map that
    /// excludes it is being installed. Any `request_submitted` whose id
    /// encodes this gateway before a matching `gw_rejoin` is split-brain.
    GwDeposed {
        /// The deposed gateway shard.
        gateway: u32,
        /// The map epoch at which it was deposed.
        epoch: u64,
    },
    /// A deposed gateway shard completed the lease handshake again and
    /// rejoined the ring at a strictly higher epoch.
    GwRejoin {
        /// The rejoining gateway shard.
        gateway: u32,
        /// The new map epoch (must exceed the deposed epoch).
        epoch: u64,
    },
    /// A draining gateway handed one in-flight request to its successor
    /// (forward-or-redirect). The old request id is retired without a
    /// completion; the adopting gateway re-submits under its own id.
    GwHandoff {
        /// Gateway shard giving the request up.
        from_gateway: u32,
        /// Gateway shard adopting it.
        to_gateway: u32,
        /// The retired request id at the old gateway.
        request_id: u64,
    },
    /// The shard router accepted a client request and routed it to the
    /// gateway shard owning the client's hash point.
    GwClientSubmit {
        /// Router-assigned client-request uid (unique per run).
        uid: u64,
        /// The originating client's identity (hash key for routing).
        client_id: u64,
        /// The gateway shard chosen by the current map.
        gateway: u32,
    },
    /// The shard router delivered the single client-visible completion
    /// for a routed request. A second delivery for the same uid is an
    /// exactly-once violation (rule 14).
    GwClientComplete {
        /// The completed client-request uid.
        uid: u64,
        /// The gateway shard whose completion won.
        gateway: u32,
        /// Whether the tier gave up on the request.
        failed: bool,
    },
    /// A gateway shard bounced a routed request back to the router
    /// instead of accepting it: its tier lease had lapsed (self-fence)
    /// or it was draining. Proof that a deposed shard stops accepting.
    GwBounce {
        /// The bouncing gateway shard.
        gateway: u32,
        /// The bounced client-request uid.
        uid: u64,
        /// Why (`"fenced"`, `"draining"`, `"crashed"`).
        reason: &'static str,
    },
    /// The gateway-tier controller wrote a snapshot of its durable state
    /// (shard map, per-shard lease views, handoff ledger) to modeled
    /// stable storage. Sequence numbers are strictly increasing and the
    /// snapshot may not claim an epoch or ledger the stream has never
    /// shown (checker rule 15). Distinct from [`Self::SnapshotTaken`],
    /// which belongs to the placement failover controller and runs its
    /// own sequence.
    TierSnapshot {
        /// Monotonic tier-snapshot sequence number.
        seq: u64,
        /// The map epoch captured in the snapshot.
        epoch: u64,
        /// Member shards captured in the snapshot.
        shards: u64,
        /// Handoff-ledger total captured in the snapshot.
        handed_off: u64,
    },
    /// The gateway-tier controller finished restoring after a crash:
    /// stable state re-adopted (or a cold rebuild when the snapshot was
    /// missing/corrupt) and live shard epochs reconciled via
    /// query/report. The restored epoch must cover every epoch the
    /// stream has shown and the ledger may not exceed the observed
    /// handoffs (checker rule 15).
    TierRestore {
        /// The snapshot sequence restored from (0 = cold rebuild).
        seq: u64,
        /// The map epoch in force after the restore.
        epoch: u64,
        /// Shard epoch reports reconciled before this emit.
        reconciled: u64,
        /// Handoff-ledger total after the restore.
        handed_off: u64,
    },
}

impl TraceEvent {
    /// A stable tag naming the event kind (used by the JSONL and hash
    /// sinks; never rename without regenerating goldens).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RequestSubmitted { .. } => "request_submitted",
            TraceEvent::RequestRetransmit { .. } => "request_retransmit",
            TraceEvent::RequestCompleted { .. } => "request_completed",
            TraceEvent::RequestUnplaced { .. } => "request_unplaced",
            TraceEvent::ExecStart { .. } => "exec_start",
            TraceEvent::ExecSuspend { .. } => "exec_suspend",
            TraceEvent::ExecResume { .. } => "exec_resume",
            TraceEvent::ExecFinish { .. } => "exec_finish",
            TraceEvent::MemCharge { .. } => "mem_charge",
            TraceEvent::WfqEnqueue { .. } => "wfq_enqueue",
            TraceEvent::WfqDequeue { .. } => "wfq_dequeue",
            TraceEvent::LinkTx { .. } => "link_tx",
            TraceEvent::LinkDrop { .. } => "link_drop",
            TraceEvent::SwitchForward { .. } => "switch_forward",
            TraceEvent::SwitchDrop { .. } => "switch_drop",
            TraceEvent::ProgramInstall {} => "program_install",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Mark { .. } => "mark",
            TraceEvent::PlacementCapacity { .. } => "placement_capacity",
            TraceEvent::Place { .. } => "place",
            TraceEvent::Unplace { .. } => "unplace",
            TraceEvent::MigrateStart { .. } => "migrate_start",
            TraceEvent::MigrateDone { .. } => "migrate_done",
            TraceEvent::PlacementReject { .. } => "reject",
            TraceEvent::AdmissionReject { .. } => "admission_reject",
            TraceEvent::HedgeFired { .. } => "hedge_fired",
            TraceEvent::HedgeWon { .. } => "hedge_won",
            TraceEvent::DeadlineDrop { .. } => "deadline_drop",
            TraceEvent::EndpointQuarantine { .. } => "endpoint_quarantine",
            TraceEvent::FragDrop { .. } => "frag_drop",
            TraceEvent::LeaseGrant { .. } => "lease_grant",
            TraceEvent::LeaseExpire { .. } => "lease_expire",
            TraceEvent::WorkerFenced { .. } => "worker_fenced",
            TraceEvent::WorkerRejoin { .. } => "worker_rejoin",
            TraceEvent::FencedReject { .. } => "fenced_reject",
            TraceEvent::StaleReplyDrop { .. } => "stale_reply_drop",
            TraceEvent::SnapshotTaken { .. } => "snapshot_taken",
            TraceEvent::SnapshotRestored { .. } => "snapshot_restored",
            TraceEvent::KvInvoke { .. } => "kv_invoke",
            TraceEvent::KvResponse { .. } => "kv_response",
            TraceEvent::TenantAssign { .. } => "tenant_assign",
            TraceEvent::FirmwareFault { .. } => "firmware_fault",
            TraceEvent::FirmwareEvict { .. } => "firmware_evict",
            TraceEvent::GwShardMap { .. } => "gw_shard_map",
            TraceEvent::GwDeposed { .. } => "gw_deposed",
            TraceEvent::GwRejoin { .. } => "gw_rejoin",
            TraceEvent::GwHandoff { .. } => "gw_handoff",
            TraceEvent::GwClientSubmit { .. } => "gw_client_submit",
            TraceEvent::GwClientComplete { .. } => "gw_client_complete",
            TraceEvent::GwBounce { .. } => "gw_bounce",
            TraceEvent::TierSnapshot { .. } => "tier_snapshot",
            TraceEvent::TierRestore { .. } => "tier_restore",
        }
    }

    /// Visits every field as a `(name, value)` pair in declaration order.
    pub fn visit_fields(&self, f: &mut dyn FnMut(&'static str, FieldValue)) {
        use FieldValue::{Bool, Str, U64};
        match *self {
            TraceEvent::RequestSubmitted {
                request_id,
                workload_id,
            } => {
                f("request_id", U64(request_id));
                f("workload_id", U64(workload_id.into()));
            }
            TraceEvent::RequestRetransmit {
                request_id,
                workload_id,
            } => {
                f("request_id", U64(request_id));
                f("workload_id", U64(workload_id.into()));
            }
            TraceEvent::RequestCompleted {
                request_id,
                workload_id,
                latency_ns,
                failed,
            } => {
                f("request_id", U64(request_id));
                f("workload_id", U64(workload_id.into()));
                f("latency_ns", U64(latency_ns));
                f("failed", Bool(failed));
            }
            TraceEvent::RequestUnplaced { workload_id } => {
                f("workload_id", U64(workload_id.into()));
            }
            TraceEvent::ExecStart {
                core,
                lambda_id,
                request_id,
                tenant_id,
            } => {
                f("core", U64(core.into()));
                f("lambda_id", U64(lambda_id.into()));
                f("request_id", U64(request_id));
                f("tenant_id", U64(tenant_id.into()));
            }
            TraceEvent::ExecSuspend {
                core,
                lambda_id,
                request_id,
            }
            | TraceEvent::ExecResume {
                core,
                lambda_id,
                request_id,
            } => {
                f("core", U64(core.into()));
                f("lambda_id", U64(lambda_id.into()));
                f("request_id", U64(request_id));
            }
            TraceEvent::ExecFinish {
                core,
                lambda_id,
                request_id,
                total_cycles,
                overhead_cycles,
                instr_cycles,
            } => {
                f("core", U64(core.into()));
                f("lambda_id", U64(lambda_id.into()));
                f("request_id", U64(request_id));
                f("total_cycles", U64(total_cycles));
                f("overhead_cycles", U64(overhead_cycles));
                f("instr_cycles", U64(instr_cycles));
            }
            TraceEvent::MemCharge {
                core,
                lambda_id,
                request_id,
                level,
                latency_cycles,
                scalar,
                bulk_ops,
                bulk_bytes,
                cycles,
                owner_tenant,
            } => {
                f("core", U64(core.into()));
                f("lambda_id", U64(lambda_id.into()));
                f("request_id", U64(request_id));
                f("level", Str(level));
                f("latency_cycles", U64(latency_cycles));
                f("scalar", U64(scalar));
                f("bulk_ops", U64(bulk_ops));
                f("bulk_bytes", U64(bulk_bytes));
                f("cycles", U64(cycles));
                f("owner_tenant", U64(owner_tenant.into()));
            }
            TraceEvent::WfqEnqueue {
                lambda_id,
                weight_milli,
                depth,
                tenant_id,
                tenant_weight_milli,
            }
            | TraceEvent::WfqDequeue {
                lambda_id,
                weight_milli,
                depth,
                tenant_id,
                tenant_weight_milli,
            } => {
                f("lambda_id", U64(lambda_id.into()));
                f("weight_milli", U64(weight_milli));
                f("depth", U64(depth));
                f("tenant_id", U64(tenant_id.into()));
                f("tenant_weight_milli", U64(tenant_weight_milli));
            }
            TraceEvent::LinkTx { bytes } => f("bytes", U64(bytes)),
            TraceEvent::LinkDrop { bytes, reason } => {
                f("bytes", U64(bytes));
                f("reason", Str(reason));
            }
            TraceEvent::SwitchForward { bytes } | TraceEvent::SwitchDrop { bytes } => {
                f("bytes", U64(bytes));
            }
            TraceEvent::ProgramInstall {} => {}
            TraceEvent::Fault { kind, detail } => {
                f("kind", Str(kind));
                f("detail", U64(detail));
            }
            TraceEvent::Mark { label, a, b } => {
                f("label", Str(label));
                f("a", U64(a));
                f("b", U64(b));
            }
            TraceEvent::PlacementCapacity {
                worker,
                instr_words,
                mem_bytes,
            } => {
                f("worker", U64(worker.into()));
                f("instr_words", U64(instr_words));
                f("mem_bytes", U64(mem_bytes));
            }
            TraceEvent::Place {
                workload_id,
                worker,
                target,
                instr_words,
                mem_bytes,
            } => {
                f("workload_id", U64(workload_id.into()));
                f("worker", U64(worker.into()));
                f("target", Str(target));
                f("instr_words", U64(instr_words));
                f("mem_bytes", U64(mem_bytes));
            }
            TraceEvent::Unplace {
                workload_id,
                worker,
                target,
            } => {
                f("workload_id", U64(workload_id.into()));
                f("worker", U64(worker.into()));
                f("target", Str(target));
            }
            TraceEvent::MigrateStart {
                workload_id,
                from_worker,
                from_target,
                to_worker,
                to_target,
            }
            | TraceEvent::MigrateDone {
                workload_id,
                from_worker,
                from_target,
                to_worker,
                to_target,
            } => {
                f("workload_id", U64(workload_id.into()));
                f("from_worker", U64(from_worker.into()));
                f("from_target", Str(from_target));
                f("to_worker", U64(to_worker.into()));
                f("to_target", Str(to_target));
            }
            TraceEvent::PlacementReject {
                workload_id,
                worker,
                reason,
            } => {
                f("workload_id", U64(workload_id.into()));
                f("worker", U64(worker.into()));
                f("reason", Str(reason));
            }
            TraceEvent::AdmissionReject {
                workload_id,
                reason,
            } => {
                f("workload_id", U64(workload_id.into()));
                f("reason", Str(reason));
            }
            TraceEvent::HedgeFired {
                request_id,
                workload_id,
            }
            | TraceEvent::HedgeWon {
                request_id,
                workload_id,
            } => {
                f("request_id", U64(request_id));
                f("workload_id", U64(workload_id.into()));
            }
            TraceEvent::DeadlineDrop {
                request_id,
                workload_id,
                overdue_ns,
            } => {
                f("request_id", U64(request_id));
                f("workload_id", U64(workload_id.into()));
                f("overdue_ns", U64(overdue_ns));
            }
            TraceEvent::EndpointQuarantine {
                worker,
                ewma_ns,
                median_ns,
            } => {
                f("worker", U64(worker.into()));
                f("ewma_ns", U64(ewma_ns));
                f("median_ns", U64(median_ns));
            }
            TraceEvent::FragDrop {
                request_id,
                frag_index,
                frag_count,
                reason,
            } => {
                f("request_id", U64(request_id));
                f("frag_index", U64(frag_index));
                f("frag_count", U64(frag_count));
                f("reason", Str(reason));
            }
            TraceEvent::LeaseGrant {
                worker,
                epoch,
                until_ns,
            } => {
                f("worker", U64(worker.into()));
                f("epoch", U64(epoch));
                f("until_ns", U64(until_ns));
            }
            TraceEvent::LeaseExpire { worker, epoch } => {
                f("worker", U64(worker.into()));
                f("epoch", U64(epoch));
            }
            TraceEvent::WorkerFenced {
                worker,
                component,
                epoch,
            }
            | TraceEvent::WorkerRejoin {
                worker,
                component,
                epoch,
            } => {
                f("worker", U64(worker.into()));
                f("component", U64(component.into()));
                f("epoch", U64(epoch));
            }
            TraceEvent::FencedReject {
                request_id,
                workload_id,
                hdr_epoch,
                worker_epoch,
            } => {
                f("request_id", U64(request_id));
                f("workload_id", U64(workload_id.into()));
                f("hdr_epoch", U64(hdr_epoch));
                f("worker_epoch", U64(worker_epoch));
            }
            TraceEvent::StaleReplyDrop {
                request_id,
                reply_epoch,
                floor_epoch,
            } => {
                f("request_id", U64(request_id));
                f("reply_epoch", U64(reply_epoch));
                f("floor_epoch", U64(floor_epoch));
            }
            TraceEvent::SnapshotTaken {
                seq,
                workers,
                placements,
            } => {
                f("seq", U64(seq));
                f("workers", U64(workers));
                f("placements", U64(placements));
            }
            TraceEvent::SnapshotRestored { seq, reconciled } => {
                f("seq", U64(seq));
                f("reconciled", U64(reconciled));
            }
            TraceEvent::KvInvoke {
                request_id,
                key,
                write,
                value,
            } => {
                f("request_id", U64(request_id));
                f("key", U64(key));
                f("write", Bool(write));
                f("value", U64(value));
            }
            TraceEvent::KvResponse {
                request_id,
                ok,
                found,
                value,
            } => {
                f("request_id", U64(request_id));
                f("ok", Bool(ok));
                f("found", Bool(found));
                f("value", U64(value));
            }
            TraceEvent::TenantAssign {
                tenant_id,
                workload_id,
            } => {
                f("tenant_id", U64(tenant_id.into()));
                f("workload_id", U64(workload_id.into()));
            }
            TraceEvent::FirmwareFault {
                tenant_id,
                workload_id,
                words,
                evictions,
            } => {
                f("tenant_id", U64(tenant_id.into()));
                f("workload_id", U64(workload_id.into()));
                f("words", U64(words));
                f("evictions", U64(evictions));
            }
            TraceEvent::FirmwareEvict {
                tenant_id,
                workload_id,
                words,
            } => {
                f("tenant_id", U64(tenant_id.into()));
                f("workload_id", U64(workload_id.into()));
                f("words", U64(words));
            }
            TraceEvent::GwShardMap { epoch, shards } => {
                f("epoch", U64(epoch));
                f("shards", U64(shards));
            }
            TraceEvent::GwDeposed { gateway, epoch } | TraceEvent::GwRejoin { gateway, epoch } => {
                f("gateway", U64(gateway.into()));
                f("epoch", U64(epoch));
            }
            TraceEvent::GwHandoff {
                from_gateway,
                to_gateway,
                request_id,
            } => {
                f("from_gateway", U64(from_gateway.into()));
                f("to_gateway", U64(to_gateway.into()));
                f("request_id", U64(request_id));
            }
            TraceEvent::GwClientSubmit {
                uid,
                client_id,
                gateway,
            } => {
                f("uid", U64(uid));
                f("client_id", U64(client_id));
                f("gateway", U64(gateway.into()));
            }
            TraceEvent::GwClientComplete {
                uid,
                gateway,
                failed,
            } => {
                f("uid", U64(uid));
                f("gateway", U64(gateway.into()));
                f("failed", Bool(failed));
            }
            TraceEvent::GwBounce {
                gateway,
                uid,
                reason,
            } => {
                f("gateway", U64(gateway.into()));
                f("uid", U64(uid));
                f("reason", Str(reason));
            }
            TraceEvent::TierSnapshot {
                seq,
                epoch,
                shards,
                handed_off,
            } => {
                f("seq", U64(seq));
                f("epoch", U64(epoch));
                f("shards", U64(shards));
                f("handed_off", U64(handed_off));
            }
            TraceEvent::TierRestore {
                seq,
                epoch,
                reconciled,
                handed_off,
            } => {
                f("seq", U64(seq));
                f("epoch", U64(epoch));
                f("reconciled", U64(reconciled));
                f("handed_off", U64(handed_off));
            }
        }
    }
}

/// One stamped record on the trace stream.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Virtual time of emission.
    pub at: SimTime,
    /// Global emission sequence number (dense, starting at 0).
    pub seq: u64,
    /// The component that emitted the event.
    pub src: ComponentId,
    /// The event payload.
    pub event: TraceEvent,
}

/// A trace record captured on a shard of the parallel engine before the
/// global sequence number has been stamped.
///
/// Sharded runs buffer emissions per shard during each conservative round
/// and hand the buffers to [`Tracer::record_merged`] at the round barrier,
/// which stamps `seq` in the deterministic merged order. The serialized
/// engine stamps inline through [`Tracer::record`] instead and never builds
/// these.
#[derive(Debug)]
pub struct PendingRecord {
    /// Virtual time of emission.
    pub at: SimTime,
    /// The component that emitted the event.
    pub src: ComponentId,
    /// The event payload.
    pub event: TraceEvent,
}

/// A consumer of the trace stream.
///
/// Sinks run inline on the emit path, so `on_record` should stay cheap.
/// `on_finish` fires once when [`crate::Simulation::finish_tracing`] is
/// called (end-of-run checks, flushing buffers).
pub trait TraceSink: Any {
    /// Consumes one record.
    fn on_record(&mut self, rec: &TraceRecord);

    /// Notifies the sink that the run is over.
    fn on_finish(&mut self, _now: SimTime) {}
}

/// The per-simulation fan-out point for trace records.
pub struct Tracer {
    sinks: Vec<Box<dyn TraceSink>>,
    next_seq: u64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("sinks", &self.sinks.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates a tracer with no sinks.
    pub fn new() -> Self {
        Tracer {
            sinks: Vec::new(),
            next_seq: 0,
        }
    }

    /// Registers a sink.
    pub fn add_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sinks.push(sink);
    }

    /// Number of records emitted so far.
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Stamps and fans out one event.
    pub fn record(&mut self, at: SimTime, src: ComponentId, event: TraceEvent) {
        let rec = TraceRecord {
            at,
            seq: self.next_seq,
            src,
            event,
        };
        self.next_seq += 1;
        for sink in &mut self.sinks {
            sink.on_record(&rec);
        }
    }

    /// Stamps and fans out one round of shard-buffered records in the
    /// deterministic merge order: `(timestamp, shard, emission index)`.
    ///
    /// Each entry is `(shard, index-within-that-shard's-buffer, record)`.
    /// Within a shard the indices follow processing order (timestamps
    /// non-decreasing), so the merged stream is globally time-monotone and
    /// identical for every thread count that executes the same shard plan —
    /// this is what keeps FNV trace hashes byte-stable between serial and
    /// parallel runs.
    pub fn record_merged(&mut self, mut batch: Vec<(u32, u32, PendingRecord)>) {
        batch.sort_by_key(|&(shard, idx, ref rec)| (rec.at, shard, idx));
        for (_, _, rec) in batch {
            self.record(rec.at, rec.src, rec.event);
        }
    }

    /// Signals end-of-run to every sink.
    pub fn finish(&mut self, now: SimTime) {
        for sink in &mut self.sinks {
            sink.on_finish(now);
        }
    }

    /// Borrows the first sink of concrete type `S`, if registered.
    pub fn sink<S: TraceSink>(&self) -> Option<&S> {
        self.sinks
            .iter()
            .find_map(|s| (s.as_ref() as &dyn Any).downcast_ref::<S>())
    }

    /// Mutably borrows the first sink of concrete type `S`, if registered.
    pub fn sink_mut<S: TraceSink>(&mut self) -> Option<&mut S> {
        self.sinks
            .iter_mut()
            .find_map(|s| (s.as_mut() as &mut dyn Any).downcast_mut::<S>())
    }
}

/// A bounded ring of the most recent records.
pub struct RingSink {
    cap: usize,
    buf: VecDeque<TraceRecord>,
    seen: u64,
}

impl RingSink {
    /// Creates a ring keeping at most `cap` records.
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            buf: VecDeque::with_capacity(cap.min(4096)),
            seen: 0,
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Total records observed (including evicted ones).
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

impl TraceSink for RingSink {
    fn on_record(&mut self, rec: &TraceRecord) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(rec.clone());
        self.seen += 1;
    }
}

/// Renders one record as a single-line JSON object.
///
/// The schema is flat: `at` (ns), `seq`, `src` (component index), `kind`,
/// then the event's own fields. Static tags are emitted as JSON strings;
/// they never contain characters needing escapes.
pub fn json_line(rec: &TraceRecord) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "{{\"at\":{},\"seq\":{},\"src\":{},\"kind\":\"{}\"",
        rec.at.as_nanos(),
        rec.seq,
        rec.src.index(),
        rec.event.kind()
    );
    rec.event.visit_fields(&mut |name, value| {
        let _ = match value {
            FieldValue::U64(v) => write!(s, ",\"{name}\":{v}"),
            FieldValue::Bool(v) => write!(s, ",\"{name}\":{v}"),
            FieldValue::Str(v) => write!(s, ",\"{name}\":\"{v}\""),
        };
    });
    s.push('}');
    s
}

/// Streams records as JSON Lines to a writer.
pub struct JsonlSink {
    out: io::BufWriter<Box<dyn Write>>,
    lines: u64,
}

impl JsonlSink {
    /// Wraps an arbitrary writer.
    pub fn new(out: Box<dyn Write>) -> Self {
        JsonlSink {
            out: io::BufWriter::new(out),
            lines: 0,
        }
    }

    /// Creates (truncates) `path` and streams records into it.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(file)))
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl TraceSink for JsonlSink {
    fn on_record(&mut self, rec: &TraceRecord) {
        // A full disk during an experiment is not worth a panic in the
        // middle of the run; drop the line.
        let _ = writeln!(self.out, "{}", json_line(rec));
        self.lines += 1;
    }

    fn on_finish(&mut self, _now: SimTime) {
        let _ = self.out.flush();
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Folds the stream into a stable 64-bit FNV-1a digest.
///
/// The digest covers every record's time, sequence number, source
/// component, event kind, and every field name and value — so any change
/// in event order, timing, or content changes the hash. It is identical
/// across debug/release builds and platforms.
pub struct HashSink {
    state: u64,
    count: u64,
}

impl Default for HashSink {
    fn default() -> Self {
        Self::new()
    }
}

impl HashSink {
    /// Creates an empty digest.
    pub fn new() -> Self {
        HashSink {
            state: FNV_OFFSET,
            count: 0,
        }
    }

    /// The digest over everything consumed so far.
    pub fn hash(&self) -> u64 {
        self.state
    }

    /// Records consumed.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl TraceSink for HashSink {
    fn on_record(&mut self, rec: &TraceRecord) {
        let mut h = self.state;
        h = fnv1a(h, &rec.at.as_nanos().to_le_bytes());
        h = fnv1a(h, &rec.seq.to_le_bytes());
        h = fnv1a(h, &(rec.src.index() as u64).to_le_bytes());
        h = fnv1a(h, rec.event.kind().as_bytes());
        rec.event.visit_fields(&mut |name, value| {
            h = fnv1a(h, name.as_bytes());
            h = match value {
                FieldValue::U64(v) => fnv1a(h, &v.to_le_bytes()),
                FieldValue::Bool(v) => fnv1a(h, &[u8::from(v)]),
                FieldValue::Str(v) => fnv1a(h, v.as_bytes()),
            };
        });
        self.state = h;
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ns: u64, seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_nanos(at_ns),
            seq,
            src: crate::engine::ComponentId::from_index_for_tests(3),
            event,
        }
    }

    #[test]
    fn json_line_is_flat_and_complete() {
        let line = json_line(&rec(
            1500,
            7,
            TraceEvent::RequestCompleted {
                request_id: 42,
                workload_id: 2,
                latency_ns: 880,
                failed: false,
            },
        ));
        assert_eq!(
            line,
            "{\"at\":1500,\"seq\":7,\"src\":3,\"kind\":\"request_completed\",\
             \"request_id\":42,\"workload_id\":2,\"latency_ns\":880,\"failed\":false}"
        );
    }

    #[test]
    fn hash_is_order_and_content_sensitive() {
        let a = rec(10, 0, TraceEvent::LinkTx { bytes: 64 });
        let b = rec(20, 1, TraceEvent::LinkTx { bytes: 64 });

        let mut h1 = HashSink::new();
        h1.on_record(&a);
        h1.on_record(&b);
        let mut h2 = HashSink::new();
        h2.on_record(&b);
        h2.on_record(&a);
        assert_ne!(h1.hash(), h2.hash(), "order must matter");

        let mut h3 = HashSink::new();
        h3.on_record(&a);
        h3.on_record(&b);
        assert_eq!(h1.hash(), h3.hash(), "same stream, same digest");

        let mut h4 = HashSink::new();
        h4.on_record(&a);
        h4.on_record(&rec(20, 1, TraceEvent::LinkTx { bytes: 65 }));
        assert_ne!(h1.hash(), h4.hash(), "content must matter");
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let mut ring = RingSink::new(2);
        for i in 0..5 {
            ring.on_record(&rec(
                i,
                i,
                TraceEvent::Mark {
                    label: "m",
                    a: i,
                    b: 0,
                },
            ));
        }
        assert_eq!(ring.seen(), 5);
        let kept: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn tracer_fans_out_and_stamps_sequence() {
        let mut tracer = Tracer::new();
        tracer.add_sink(Box::new(RingSink::new(16)));
        tracer.add_sink(Box::new(HashSink::new()));
        let src = crate::engine::ComponentId::from_index_for_tests(0);
        tracer.record(SimTime::from_nanos(1), src, TraceEvent::LinkTx { bytes: 1 });
        tracer.record(SimTime::from_nanos(2), src, TraceEvent::LinkTx { bytes: 2 });
        assert_eq!(tracer.emitted(), 2);
        let ring = tracer.sink::<RingSink>().unwrap();
        let seqs: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(tracer.sink::<HashSink>().unwrap().count(), 2);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let path = std::env::temp_dir().join("lnic_trace_test.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.on_record(&rec(5, 0, TraceEvent::SwitchDrop { bytes: 9 }));
            sink.on_record(&rec(6, 1, TraceEvent::ProgramInstall {}));
            sink.on_finish(SimTime::from_nanos(6));
            assert_eq!(sink.lines(), 2);
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"switch_drop\""));
        assert!(lines[1].ends_with("\"kind\":\"program_install\"}"));
        let _ = std::fs::remove_file(&path);
    }
}
