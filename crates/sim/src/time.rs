//! Virtual time for the discrete-event simulation.
//!
//! All simulated clocks are nanosecond-resolution. [`SimTime`] is an absolute
//! instant on the virtual timeline and [`SimDuration`] is a span between two
//! instants. Both are thin wrappers around `u64` nanoseconds so they are
//! `Copy` and cheap to pass around.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated timeline, in nanoseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use lnic_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use lnic_sim::time::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 2_500_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// The end of representable time. The sharded engine uses this as
    /// the "no pending event" sentinel when merging per-shard clocks,
    /// so no real event may ever be scheduled at it.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since the simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the instant as nanoseconds since the simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant as (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the instant as (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Returns the duration since `earlier`, or [`SimDuration::ZERO`] when
    /// `earlier` is in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, clamping at [`SimTime::MAX`] instead of
    /// overflowing — used for conservative window arithmetic near the
    /// end of time (`+` panics in debug and wraps in release).
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Returns the span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns `true` when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two durations.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by a non-negative factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

/// Formats a nanosecond count with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t0 = SimTime::from_nanos(500);
        let d = SimDuration::from_micros(2);
        let t1 = t0 + d;
        assert_eq!(t1.as_nanos(), 2_500);
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn duration_constructors_scale_correctly() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_nanos(10)
        );
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn duration_since_panics_on_underflow() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(1.26).as_nanos(), 13);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_nanos(1_200).to_string(), "1.200us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn conversions_to_float_units() {
        let d = SimDuration::from_nanos(1_500_000);
        assert!((d.as_millis_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_micros_f64() - 1_500.0).abs() < 1e-9);
        let t = SimTime::from_nanos(2_000_000_000);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-12);
    }
}
