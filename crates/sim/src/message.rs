//! Dynamically-typed messages exchanged between simulation components.
//!
//! Components from different crates need to exchange payloads the engine
//! knows nothing about, so the engine moves [`Box<dyn Message>`] values and
//! receivers downcast to the concrete types they understand.

use std::any::Any;
use std::fmt;

/// A payload deliverable to a [`crate::Component`].
///
/// Blanket-implemented for every `'static + Debug + Send` type, so any
/// ordinary struct or enum can be sent without ceremony.
///
/// # Examples
///
/// ```
/// use lnic_sim::message::{AnyMessage, Message};
///
/// #[derive(Debug, PartialEq)]
/// struct Ping(u32);
///
/// let boxed: AnyMessage = Box::new(Ping(7));
/// let ping = boxed.downcast::<Ping>().expect("type matches");
/// assert_eq!(*ping, Ping(7));
/// ```
pub trait Message: Any + fmt::Debug + Send {
    /// Borrows the message as [`Any`] for by-reference downcasting.
    fn as_any(&self) -> &dyn Any;
    /// Converts the boxed message into [`Box<dyn Any>`] for by-value
    /// downcasting.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + fmt::Debug + Send> Message for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A boxed, type-erased message.
pub type AnyMessage = Box<dyn Message>;

impl dyn Message {
    /// Returns a reference to the payload if it is a `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.as_any().downcast_ref::<T>()
    }

    /// Returns `true` when the payload is a `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.as_any().is::<T>()
    }

    /// Recovers the concrete payload, or returns the box unchanged when the
    /// type does not match.
    pub fn downcast<T: Any>(self: Box<Self>) -> Result<Box<T>, AnyMessage> {
        if self.is::<T>() {
            Ok(self
                .into_any()
                .downcast::<T>()
                .expect("type checked by is::<T>()"))
        } else {
            Err(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ping(u32);
    #[derive(Debug, PartialEq)]
    struct Pong(u32);

    #[test]
    fn downcast_ref_matches_type() {
        let m: AnyMessage = Box::new(Ping(1));
        assert!(m.is::<Ping>());
        assert!(!m.is::<Pong>());
        assert_eq!(m.downcast_ref::<Ping>(), Some(&Ping(1)));
        assert_eq!(m.downcast_ref::<Pong>(), None);
    }

    #[test]
    fn downcast_by_value_recovers_payload() {
        let m: AnyMessage = Box::new(Ping(9));
        let ping = m.downcast::<Ping>().expect("is a Ping");
        assert_eq!(*ping, Ping(9));
    }

    #[test]
    fn downcast_by_value_returns_box_on_mismatch() {
        let m: AnyMessage = Box::new(Ping(9));
        let m = m.downcast::<Pong>().expect_err("not a Pong");
        // The original payload is preserved.
        assert_eq!(m.downcast_ref::<Ping>(), Some(&Ping(9)));
    }

    #[test]
    fn debug_formatting_passes_through() {
        let m: AnyMessage = Box::new(Ping(3));
        assert_eq!(format!("{m:?}"), "Ping(3)");
    }
}
