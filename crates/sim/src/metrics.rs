//! Measurement utilities: latency series, summaries, ECDFs, and histograms.
//!
//! Experiments record nanosecond latencies into a [`Series`] and derive
//! [`Summary`] statistics or [`Ecdf`] curves from it, matching how the paper
//! reports Figure 6 (ECDFs), Figure 7/Table 2 (means), and tail percentiles.

use std::fmt;

use crate::time::SimDuration;

/// An append-only collection of nanosecond samples.
///
/// # Examples
///
/// ```
/// use lnic_sim::metrics::Series;
/// use lnic_sim::time::SimDuration;
///
/// let mut s = Series::new("latency");
/// for us in [10, 20, 30] {
///     s.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.summary().mean_ns, 20_000.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Series {
    name: String,
    samples_ns: Vec<u64>,
}

impl Series {
    /// Creates an empty, named series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            samples_ns: Vec::new(),
        }
    }

    /// Returns the series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_ns.push(d.as_nanos());
    }

    /// Appends one raw nanosecond sample.
    pub fn record_ns(&mut self, ns: u64) {
        self.samples_ns.push(ns);
    }

    /// Returns the number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// Returns `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// Returns the raw samples in recording order.
    pub fn samples_ns(&self) -> &[u64] {
        &self.samples_ns
    }

    /// Computes summary statistics over all samples.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.samples_ns)
    }

    /// Builds the empirical CDF of the samples.
    pub fn ecdf(&self) -> Ecdf {
        Ecdf::of(&self.samples_ns)
    }

    /// Returns the `q`-quantile (0.0 ..= 1.0) in nanoseconds using
    /// nearest-rank interpolation, or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples_ns.is_empty() {
            return None;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        Some(sorted[nearest_rank(q, sorted.len())])
    }

    /// Merges another series' samples into this one.
    pub fn merge(&mut self, other: &Series) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
    }
}

impl Extend<SimDuration> for Series {
    fn extend<T: IntoIterator<Item = SimDuration>>(&mut self, iter: T) {
        self.samples_ns
            .extend(iter.into_iter().map(|d| d.as_nanos()));
    }
}

impl FromIterator<SimDuration> for Series {
    fn from_iter<T: IntoIterator<Item = SimDuration>>(iter: T) -> Self {
        let mut s = Series::new("collected");
        s.extend(iter);
        s
    }
}

/// Zero-based index of the `q`-quantile under the nearest-rank convention:
/// `ceil(q * n)` clamped to `[1, n]`, minus one.
fn nearest_rank(q: f64, n: usize) -> usize {
    ((q * n as f64).ceil() as usize).clamp(1, n) - 1
}

/// Summary statistics of a sample set, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum sample.
    pub min_ns: u64,
    /// Maximum sample.
    pub max_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Population standard deviation.
    pub stddev_ns: f64,
    /// Median (p50).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
}

impl Summary {
    /// Computes a summary over raw nanosecond samples.
    pub fn of(samples: &[u64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&v| v as u128).sum();
        let mean = sum as f64 / count as f64;
        let var = sorted
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / count as f64;
        let pct = |q: f64| -> u64 { sorted[nearest_rank(q, count)] };
        Summary {
            count,
            min_ns: sorted[0],
            max_ns: sorted[count - 1],
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            p50_ns: pct(0.50),
            p90_ns: pct(0.90),
            p99_ns: pct(0.99),
            p999_ns: pct(0.999),
        }
    }

    /// Mean as fractional milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1e6
    }

    /// Mean as fractional microseconds.
    pub fn mean_us(&self) -> f64 {
        self.mean_ns / 1e3
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} max={}",
            self.count,
            SimDuration::from_nanos(self.mean_ns as u64),
            SimDuration::from_nanos(self.p50_ns),
            SimDuration::from_nanos(self.p99_ns),
            SimDuration::from_nanos(self.max_ns),
        )
    }
}

/// An empirical cumulative distribution function over nanosecond samples.
///
/// Points are `(value_ns, fraction <= value)` with fractions in `(0, 1]`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Ecdf {
    points: Vec<(u64, f64)>,
}

impl Ecdf {
    /// Builds the ECDF of `samples`.
    pub fn of(samples: &[u64]) -> Ecdf {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len() as f64;
        let mut points: Vec<(u64, f64)> = Vec::new();
        for (i, v) in sorted.iter().enumerate() {
            let frac = (i + 1) as f64 / n;
            match points.last_mut() {
                Some(last) if last.0 == *v => last.1 = frac,
                _ => points.push((*v, frac)),
            }
        }
        Ecdf { points }
    }

    /// Returns the `(value_ns, cumulative fraction)` steps.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Evaluates the ECDF at `value_ns`: the fraction of samples `<= value`.
    pub fn at(&self, value_ns: u64) -> f64 {
        match self.points.binary_search_by_key(&value_ns, |p| p.0) {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }
}

/// A monotonically increasing event counter with throughput derivation.
///
/// # Examples
///
/// ```
/// use lnic_sim::metrics::Counter;
/// use lnic_sim::time::SimDuration;
///
/// let mut c = Counter::default();
/// c.add(500);
/// assert_eq!(c.per_second(SimDuration::from_millis(500)), 1_000.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Returns the current count.
    pub fn get(&self) -> u64 {
        self.count
    }

    /// Returns the average rate per second over `elapsed` virtual time.
    ///
    /// Returns `0.0` when `elapsed` is zero.
    pub fn per_second(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.count as f64 / elapsed.as_secs_f64()
        }
    }
}

/// A fixed-layout log-bucketed histogram for cheap, bounded-memory recording
/// of long-running experiments (buckets double from 1 ns to ~18.4 s).
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: vec![0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one nanosecond sample.
    pub fn record_ns(&mut self, ns: u64) {
        let idx = (64 - ns.leading_zeros()).min(63) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        self.record_ns(d.as_nanos());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Approximate `q`-quantile: returns the upper bound of the bucket that
    /// contains the requested rank (within 2x of the true value).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn quantile_upper_bound_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if idx >= 63 {
                    u64::MAX
                } else {
                    (1u64 << idx) - 1
                };
            }
        }
        self.max_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[10, 20, 30, 40]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 40);
        assert_eq!(s.mean_ns, 25.0);
        assert_eq!(s.p50_ns, 20); // nearest-rank: ceil(0.5*4) = 2nd value
    }

    #[test]
    fn summary_of_empty_is_default() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn ecdf_steps_and_lookup() {
        let e = Ecdf::of(&[1, 1, 2, 4]);
        assert_eq!(e.points(), &[(1, 0.5), (2, 0.75), (4, 1.0)]);
        assert_eq!(e.at(0), 0.0);
        assert_eq!(e.at(1), 0.5);
        assert_eq!(e.at(3), 0.75);
        assert_eq!(e.at(100), 1.0);
    }

    #[test]
    fn series_quantiles() {
        let mut s = Series::new("t");
        for v in 1..=100u64 {
            s.record_ns(v);
        }
        assert_eq!(s.quantile_ns(0.0), Some(1));
        assert_eq!(s.quantile_ns(1.0), Some(100));
        assert_eq!(s.quantile_ns(0.5), Some(50));
        assert!(Series::new("e").quantile_ns(0.5).is_none());
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        for _ in 0..10 {
            c.incr();
        }
        assert_eq!(c.get(), 10);
        assert_eq!(c.per_second(SimDuration::from_secs(2)), 5.0);
        assert_eq!(c.per_second(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn log_histogram_tracks_mass() {
        let mut h = LogHistogram::new();
        for v in [1u64, 10, 100, 1_000, 10_000] {
            h.record_ns(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ns(), 10_000);
        assert!((h.mean_ns() - 2_222.2).abs() < 0.1);
        // p100 upper bound must cover the max.
        assert!(h.quantile_upper_bound_ns(1.0) >= 10_000);
        // p20 covers only the smallest bucket.
        assert!(h.quantile_upper_bound_ns(0.2) <= 1);
    }

    #[test]
    fn series_merge_and_extend() {
        let mut a = Series::new("a");
        a.record(SimDuration::from_nanos(1));
        let mut b = Series::new("b");
        b.extend([SimDuration::from_nanos(2), SimDuration::from_nanos(3)]);
        a.merge(&b);
        assert_eq!(a.samples_ns(), &[1, 2, 3]);
        let c: Series = (1..=3).map(SimDuration::from_micros).collect();
        assert_eq!(c.len(), 3);
        assert_eq!(c.summary().mean_ns, 2_000.0);
    }

    proptest! {
        #[test]
        fn ecdf_is_monotone_and_ends_at_one(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let e = Ecdf::of(&samples);
            let pts = e.points();
            for w in pts.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
                prop_assert!(w[0].1 < w[1].1 + 1e-12);
            }
            prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
        }

        #[test]
        fn summary_bounds_hold(samples in proptest::collection::vec(0u64..u32::MAX as u64, 1..200)) {
            let s = Summary::of(&samples);
            prop_assert!(s.min_ns <= s.p50_ns);
            prop_assert!(s.p50_ns <= s.p90_ns);
            prop_assert!(s.p90_ns <= s.p99_ns);
            prop_assert!(s.p99_ns <= s.p999_ns);
            prop_assert!(s.p999_ns <= s.max_ns);
            prop_assert!(s.mean_ns >= s.min_ns as f64 && s.mean_ns <= s.max_ns as f64);
        }

        #[test]
        fn log_histogram_quantile_upper_bounds_true_quantile(
            samples in proptest::collection::vec(1u64..1_000_000_000, 1..200),
            q in 0.0f64..=1.0,
        ) {
            let mut h = LogHistogram::new();
            let mut series = Series::new("s");
            for &v in &samples {
                h.record_ns(v);
                series.record_ns(v);
            }
            let exact = series.quantile_ns(q).unwrap();
            // The bucket upper bound can never under-report by more than the
            // rank rounding difference of one bucket; assert >= exact/2.
            prop_assert!(h.quantile_upper_bound_ns(q) >= exact / 2);
        }
    }
}
