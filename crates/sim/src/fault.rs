//! Fault injection: timed failure events and health-check messages.
//!
//! The λ-NIC paper leans on two recovery mechanisms — client
//! retransmission of lost requests (§4.2-D3) and controller-driven
//! re-deployment of lambdas from a failed SmartNIC onto survivors (§7) —
//! so the simulation needs a way to *make* components fail. A
//! [`FaultPlan`] is a declarative schedule of failures against logical
//! targets (worker and link indices); the harness that built the
//! topology resolves those indices to [`ComponentId`]s and delivers each
//! event through the ordinary event queue, so a faulty run is exactly as
//! deterministic as a healthy one.
//!
//! This module also defines the component-level control messages
//! ([`Crash`], [`Restart`], [`StallFor`], [`LinkDown`], [`LossBurst`],
//! [`HealthPing`]/[`HealthPong`]) in the sim crate so every backend
//! (NIC, host, links, controllers) can downcast them without new
//! inter-crate dependencies.

use crate::engine::ComponentId;
use crate::time::{SimDuration, SimTime};

/// Control message: the target component fails immediately.
///
/// Backends drop all in-flight work and blackhole arrivals until they
/// receive a [`Restart`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crash;

/// Control message: a crashed component begins recovery.
///
/// Workers pay their re-provisioning cost (the NIC re-enters through the
/// firmware-swap path) before serving again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Restart;

/// Control message: the target stops making progress for the given
/// duration, then resumes with its state intact (e.g. an OS hiccup or
/// management-plane pause on a host backend).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallFor(pub SimDuration);

/// Control message: the target link drops every frame for the given
/// duration (a flap), then recovers by itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkDown(pub SimDuration);

/// Control message: the target link drops frames with probability
/// `prob` for `duration` (a correlated loss burst), then returns to its
/// configured baseline loss rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossBurst {
    /// How long the burst lasts.
    pub duration: SimDuration,
    /// Drop probability while the burst is active.
    pub prob: f64,
}

/// Control message: the target worker keeps serving but every unit of
/// work takes `factor`× as long for `duration` (a gray failure — e.g.
/// thermal throttling, a sick DIMM, or a noisy neighbour on the NPU
/// complex). The worker still answers health pings, so heartbeat-based
/// failure detectors cannot see it; only latency-based fail-slow
/// detection can.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slowdown {
    /// Multiplier applied to service/compute time (>= 1.0).
    pub factor: f64,
    /// How long the slowdown lasts.
    pub duration: SimDuration,
}

/// Control message: for `duration`, the target link delays each frame by
/// an extra uniform jitter up to `spread`, so later frames can overtake
/// earlier ones (reordering).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reorder {
    /// How long the reorder window lasts.
    pub duration: SimDuration,
    /// Maximum extra per-frame delay drawn uniformly at random.
    pub spread: SimDuration,
}

/// Control message: for `duration`, the target link delivers each frame
/// twice with probability `prob` (a misbehaving switch or a retransmit
/// race at the PHY).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Duplicate {
    /// How long the duplication window lasts.
    pub duration: SimDuration,
    /// Probability that a frame is delivered twice.
    pub prob: f64,
}

/// Control message: for `duration`, the target link flips one random bit
/// per frame with probability `prob`. The receiving NIC's checksum
/// verification must detect (and drop) the mangled frame rather than
/// execute it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Corrupt {
    /// How long the corruption window lasts.
    pub duration: SimDuration,
    /// Probability that a frame gets one bit flipped.
    pub prob: f64,
}

/// Health probe sent by a controller to a worker.
///
/// Live workers answer with [`HealthPong`] carrying the same sequence
/// number; crashed workers stay silent, which is the failure signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthPing {
    /// Sequence number echoed in the pong.
    pub seq: u64,
    /// Where to send the pong.
    pub reply_to: ComponentId,
}

/// A worker's answer to a [`HealthPing`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthPong {
    /// The probed sequence number.
    pub seq: u64,
    /// The responding component.
    pub from: ComponentId,
}

/// Control message: a membership lease offered by the controller.
///
/// The lease replaces bare heartbeats: a worker that holds a current
/// lease may serve; once the absolute expiry `until_ns` passes without
/// a renewal the worker must *self-fence* (answer `RC_FENCED`, execute
/// nothing), and the controller may only re-place its lambdas after the
/// same bound has provably passed. The expiry is absolute rather than
/// relative so a grant whose processing is delayed (a stalled worker
/// draining its backlog) can never extend the lease beyond what the
/// controller recorded when it issued the grant. `epoch` is the
/// worker's fencing token; it only ever increases, and a grant with
/// `rejoin` set tells a healed worker to adopt the higher epoch and
/// drop its pre-partition placements — a rejoin grant carries an
/// already-expired `until_ns`, so serving only resumes after the ack
/// round-trips and a regular grant follows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GrantLease {
    /// Fencing token the worker serves under while the lease is live.
    pub epoch: u64,
    /// Absolute instant (ns) the lease runs out.
    pub until_ns: u64,
    /// Renewal round (echoed in the [`LeaseAck`]).
    pub seq: u64,
    /// Set on the first grant after a fence: the worker bumps its epoch
    /// and discards placements stamped with older epochs.
    pub rejoin: bool,
    /// Where to send the ack.
    pub reply_to: ComponentId,
}

/// Control message: a worker's acceptance of a [`GrantLease`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaseAck {
    /// The acking component.
    pub from: ComponentId,
    /// The epoch the worker now holds.
    pub epoch: u64,
    /// The renewal round being acked.
    pub seq: u64,
    /// The acker's restart count (0 if it never crashed). A controller
    /// that sees this jump between acks knows the member lost its
    /// volatile state even though the lease handshake looks healthy —
    /// the signal behind proactive client re-adoption after a fast
    /// crash/restart that never tripped the miss threshold.
    pub incarnation: u64,
}

/// Control message: a restarted controller asking a worker what epoch it
/// holds, to reconcile a restored snapshot against reality.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochQuery {
    /// Where to send the [`EpochReport`].
    pub reply_to: ComponentId,
}

/// A worker's answer to an [`EpochQuery`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochReport {
    /// The reporting component.
    pub from: ComponentId,
    /// The epoch the worker currently holds.
    pub epoch: u64,
    /// When the worker's lease runs out (ns), 0 if it never held one.
    pub lease_until_ns: u64,
}

/// Control message: for `duration`, the target must treat direct control
/// messages *from* the listed components as blackholed (they never
/// arrived). This is how a [`FaultEvent::Partition`] severs the
/// control-plane channel (heartbeats, lease grants/acks) that does not
/// ride the simulated links; frames on the data path are cut by
/// [`LinkDown`] windows on the links crossing the partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetCutFrom {
    /// Peers whose direct messages are dropped.
    pub peers: Vec<ComponentId>,
    /// How long the cut lasts.
    pub duration: SimDuration,
}

/// One scheduled failure against a logical target.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Worker `worker` crashes: in-flight jobs are lost and arrivals
    /// blackholed until a restart.
    NicCrash {
        /// Index of the worker in the testbed.
        worker: usize,
    },
    /// Worker `worker` begins recovery, paying its firmware-swap (or
    /// equivalent re-provisioning) downtime before serving again.
    NicRestart {
        /// Index of the worker in the testbed.
        worker: usize,
    },
    /// Link `link` goes dark for `duration`.
    LinkFlap {
        /// Index of the link in the testbed's link table.
        link: usize,
        /// How long the link stays down.
        duration: SimDuration,
    },
    /// Link `link` drops frames with probability `prob` for `duration`.
    LossBurst {
        /// Index of the link in the testbed's link table.
        link: usize,
        /// How long the burst lasts.
        duration: SimDuration,
        /// Drop probability during the burst.
        prob: f64,
    },
    /// Worker `worker` freezes for `duration` without losing state.
    BackendStall {
        /// Index of the worker in the testbed.
        worker: usize,
        /// How long the worker stalls.
        duration: SimDuration,
    },
    /// Worker `worker` runs `factor`× slower for `duration` (gray
    /// failure: alive, answering health pings, but sick).
    Slowdown {
        /// Index of the worker in the testbed.
        worker: usize,
        /// Service-time multiplier (>= 1.0).
        factor: f64,
        /// How long the slowdown lasts.
        duration: SimDuration,
    },
    /// Link `link` reorders frames for `duration` by delaying each one
    /// an extra uniform amount up to `spread`.
    Reorder {
        /// Index of the link in the testbed's link table.
        link: usize,
        /// How long the reorder window lasts.
        duration: SimDuration,
        /// Maximum extra per-frame delay.
        spread: SimDuration,
    },
    /// Link `link` duplicates frames with probability `prob` for
    /// `duration`.
    Duplicate {
        /// Index of the link in the testbed's link table.
        link: usize,
        /// How long the duplication window lasts.
        duration: SimDuration,
        /// Probability a frame is delivered twice.
        prob: f64,
    },
    /// Link `link` flips one random bit per frame with probability
    /// `prob` for `duration`.
    Corrupt {
        /// Index of the link in the testbed's link table.
        link: usize,
        /// How long the corruption window lasts.
        duration: SimDuration,
        /// Probability a frame gets one bit flipped.
        prob: f64,
    },
    /// Network partition: the workers named by the `groups` bitmask
    /// (bit *i* = worker *i*) are cut off from everything on the other
    /// side — the control plane, the gateway, the shared services, and
    /// the workers whose bits are clear — for `duration`. Frames are
    /// blackholed in *both* directions, including heartbeats and lease
    /// traffic, and the cut composes with any other fault window active
    /// on the affected links.
    Partition {
        /// Bitmask of worker indices on the severed side.
        groups: u64,
        /// How long the partition lasts before healing.
        duration: SimDuration,
    },
    /// Asymmetric cut: frames from node `from` toward node `to` are
    /// blackholed for `duration`, while the reverse direction keeps
    /// working (a one-way fibre fault or a poisoned ARP entry). Node 0
    /// is the control plane (gateway + controller); node `1 + i` is
    /// worker `i`.
    AsymLink {
        /// Sending node whose frames are lost (0 = control plane).
        from: usize,
        /// Receiving node that never sees them (0 = control plane).
        to: usize,
        /// How long the asymmetry lasts.
        duration: SimDuration,
    },
    /// The control plane (failover controller) crashes: its in-memory
    /// membership and placement state is lost; only the last stable
    /// snapshot survives. Leases stop renewing, so workers self-fence
    /// when theirs expire.
    ControllerCrash,
    /// The control plane restarts from its last stable snapshot and
    /// reconciles against worker-reported epochs before serving.
    ControllerRestart,
    /// Gateway shard `gateway` crashes: its in-flight request state is
    /// lost and arrivals blackholed until a restart. With a gateway tier
    /// installed, the tier controller deposes it once its lease provably
    /// expires and the router re-routes its orphaned clients.
    GatewayCrash {
        /// Index of the gateway shard in the testbed's gateway table.
        gateway: usize,
    },
    /// Gateway shard `gateway` restarts empty. It rejoins the ring only
    /// after the tier controller's rejoin handshake at a higher epoch.
    GatewayRestart {
        /// Index of the gateway shard in the testbed's gateway table.
        gateway: usize,
    },
    /// Gateway shard `gateway` is cut off from everything — its data
    /// links are blackholed and the direct control channels (tier
    /// leases, routed submits) are severed in both directions — for
    /// `duration`, then heals. The shard stays alive the whole time: the
    /// partition tests that it self-fences when its lease lapses rather
    /// than serving stale clients.
    GatewayPartition {
        /// Index of the gateway shard in the testbed's gateway table.
        gateway: usize,
        /// How long the partition lasts before healing.
        duration: SimDuration,
    },
    /// A correlated restart storm across the gateway tier: `count`
    /// shards starting at index `first` crash one after another,
    /// `stagger` apart, and each restarts `down` after its own crash —
    /// the rolling-deploy-gone-wrong / cluster-power-event shape where
    /// each crash is individually too fast to trip the miss threshold
    /// but together they orphan work tier-wide.
    GatewayRestartStorm {
        /// First gateway shard index hit by the storm.
        first: usize,
        /// How many consecutive shards crash.
        count: usize,
        /// Gap between successive crashes.
        stagger: SimDuration,
        /// Downtime of each shard before its restart.
        down: SimDuration,
    },
    /// Rack power loss: gateway shard `gateway` and every worker named
    /// in the `workers` bitmask (bit *i* = worker *i*) crash at the
    /// same instant and restart together `down` later — the correlated
    /// failure domain a top-of-rack event produces, losing both the
    /// routing layer and the compute behind it at once.
    RackLoss {
        /// Index of the gateway shard in the failure domain.
        gateway: usize,
        /// Bitmask of worker indices sharing the rack.
        workers: u64,
        /// Downtime before the rack comes back.
        down: SimDuration,
    },
    /// The gateway-tier controller crashes: its shard map, lease table,
    /// and handoff ledger survive only as the last stable tier
    /// snapshot. Leases stop renewing, so shards self-fence if the
    /// outage outlives them.
    TierControllerCrash,
    /// The gateway-tier controller restarts, restores from its last
    /// stable snapshot (cold-rebuilding if it is missing or corrupt),
    /// and reconciles live shard epochs via query/report before acting.
    TierControllerRestart,
}

/// A [`FaultEvent`] with its injection time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedFault {
    /// Absolute virtual time at which the fault fires.
    pub at: SimTime,
    /// What happens.
    pub event: FaultEvent,
}

/// A declarative, time-ordered schedule of failures.
///
/// Build one with the fluent constructors, then hand it to the harness
/// that owns the topology (e.g. `Testbed::inject_faults` in `lnic`),
/// which resolves worker/link indices to components and posts each event
/// into the simulation. Because delivery rides the ordinary event queue,
/// two runs with the same seed and the same plan are bit-identical.
///
/// # Examples
///
/// ```
/// use lnic_sim::fault::{FaultEvent, FaultPlan};
/// use lnic_sim::time::{SimDuration, SimTime};
///
/// let plan = FaultPlan::new()
///     .nic_crash(0, SimTime::ZERO + SimDuration::from_secs(2))
///     .nic_restart(0, SimTime::ZERO + SimDuration::from_secs(4))
///     .link_flap(1, SimTime::ZERO + SimDuration::from_secs(3), SimDuration::from_millis(50));
/// assert_eq!(plan.events().len(), 3);
/// assert!(matches!(plan.events()[0].event, FaultEvent::NicCrash { worker: 0 }));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<TimedFault>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an arbitrary timed event.
    pub fn push(mut self, at: SimTime, event: FaultEvent) -> FaultPlan {
        self.events.push(TimedFault { at, event });
        self
    }

    /// Schedules a worker crash.
    pub fn nic_crash(self, worker: usize, at: SimTime) -> FaultPlan {
        self.push(at, FaultEvent::NicCrash { worker })
    }

    /// Schedules a worker restart.
    pub fn nic_restart(self, worker: usize, at: SimTime) -> FaultPlan {
        self.push(at, FaultEvent::NicRestart { worker })
    }

    /// Schedules a link flap.
    pub fn link_flap(self, link: usize, at: SimTime, duration: SimDuration) -> FaultPlan {
        self.push(at, FaultEvent::LinkFlap { link, duration })
    }

    /// Schedules a loss burst on a link.
    pub fn loss_burst(
        self,
        link: usize,
        at: SimTime,
        duration: SimDuration,
        prob: f64,
    ) -> FaultPlan {
        self.push(
            at,
            FaultEvent::LossBurst {
                link,
                duration,
                prob,
            },
        )
    }

    /// Schedules a backend stall.
    pub fn backend_stall(self, worker: usize, at: SimTime, duration: SimDuration) -> FaultPlan {
        self.push(at, FaultEvent::BackendStall { worker, duration })
    }

    /// Schedules a gray-failure slowdown on a worker.
    pub fn slowdown(
        self,
        worker: usize,
        at: SimTime,
        factor: f64,
        duration: SimDuration,
    ) -> FaultPlan {
        self.push(
            at,
            FaultEvent::Slowdown {
                worker,
                factor,
                duration,
            },
        )
    }

    /// Schedules a reorder window on a link.
    pub fn reorder(
        self,
        link: usize,
        at: SimTime,
        duration: SimDuration,
        spread: SimDuration,
    ) -> FaultPlan {
        self.push(
            at,
            FaultEvent::Reorder {
                link,
                duration,
                spread,
            },
        )
    }

    /// Schedules a duplication window on a link.
    pub fn duplicate(
        self,
        link: usize,
        at: SimTime,
        duration: SimDuration,
        prob: f64,
    ) -> FaultPlan {
        self.push(
            at,
            FaultEvent::Duplicate {
                link,
                duration,
                prob,
            },
        )
    }

    /// Schedules a corruption window on a link.
    pub fn corrupt(self, link: usize, at: SimTime, duration: SimDuration, prob: f64) -> FaultPlan {
        self.push(
            at,
            FaultEvent::Corrupt {
                link,
                duration,
                prob,
            },
        )
    }

    /// Schedules a network partition severing the given workers from the
    /// rest of the cluster (control plane included).
    pub fn partition(self, workers: &[usize], at: SimTime, duration: SimDuration) -> FaultPlan {
        let mut groups = 0u64;
        for &w in workers {
            assert!(w < 64, "partition bitmask holds worker indices < 64");
            groups |= 1 << w;
        }
        self.push(at, FaultEvent::Partition { groups, duration })
    }

    /// Schedules a one-way cut from node `from` to node `to`
    /// (0 = control plane, `1 + i` = worker `i`).
    pub fn asym_link(
        self,
        from: usize,
        to: usize,
        at: SimTime,
        duration: SimDuration,
    ) -> FaultPlan {
        self.push(at, FaultEvent::AsymLink { from, to, duration })
    }

    /// Schedules a control-plane crash.
    pub fn controller_crash(self, at: SimTime) -> FaultPlan {
        self.push(at, FaultEvent::ControllerCrash)
    }

    /// Schedules a control-plane restart from the last stable snapshot.
    pub fn controller_restart(self, at: SimTime) -> FaultPlan {
        self.push(at, FaultEvent::ControllerRestart)
    }

    /// Schedules a gateway-shard crash.
    pub fn gateway_crash(self, gateway: usize, at: SimTime) -> FaultPlan {
        self.push(at, FaultEvent::GatewayCrash { gateway })
    }

    /// Schedules a gateway-shard restart.
    pub fn gateway_restart(self, gateway: usize, at: SimTime) -> FaultPlan {
        self.push(at, FaultEvent::GatewayRestart { gateway })
    }

    /// Schedules a partition cutting one gateway shard off from the rest
    /// of the cluster (router, tier controller, and workers included).
    pub fn gateway_partition(
        self,
        gateway: usize,
        at: SimTime,
        duration: SimDuration,
    ) -> FaultPlan {
        self.push(at, FaultEvent::GatewayPartition { gateway, duration })
    }

    /// Schedules a staggered crash/restart storm over `count` gateway
    /// shards starting at `first`.
    pub fn restart_storm(
        self,
        first: usize,
        count: usize,
        at: SimTime,
        stagger: SimDuration,
        down: SimDuration,
    ) -> FaultPlan {
        assert!(count >= 1, "a storm needs at least one shard");
        self.push(
            at,
            FaultEvent::GatewayRestartStorm {
                first,
                count,
                stagger,
                down,
            },
        )
    }

    /// Schedules a rack loss: gateway shard `gateway` plus the listed
    /// workers crash simultaneously and restart `down` later.
    pub fn rack_loss(
        self,
        gateway: usize,
        workers: &[usize],
        at: SimTime,
        down: SimDuration,
    ) -> FaultPlan {
        let mut mask = 0u64;
        for &w in workers {
            assert!(w < 64, "rack-loss bitmask holds worker indices < 64");
            mask |= 1 << w;
        }
        self.push(
            at,
            FaultEvent::RackLoss {
                gateway,
                workers: mask,
                down,
            },
        )
    }

    /// Schedules a gateway-tier controller crash.
    pub fn tier_controller_crash(self, at: SimTime) -> FaultPlan {
        self.push(at, FaultEvent::TierControllerCrash)
    }

    /// Schedules a gateway-tier controller restart from its last stable
    /// tier snapshot.
    pub fn tier_controller_restart(self, at: SimTime) -> FaultPlan {
        self.push(at, FaultEvent::TierControllerRestart)
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The latest event time in the plan, if any.
    pub fn horizon(&self) -> Option<SimTime> {
        self.events.iter().map(|e| e.at).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_record_events_in_order() {
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        let plan = FaultPlan::new()
            .nic_crash(2, t(1))
            .backend_stall(1, t(2), SimDuration::from_millis(10))
            .loss_burst(0, t(3), SimDuration::from_millis(5), 0.5)
            .nic_restart(2, t(4));
        assert_eq!(plan.events().len(), 4);
        assert_eq!(plan.horizon(), Some(t(4)));
        assert_eq!(
            plan.events()[1].event,
            FaultEvent::BackendStall {
                worker: 1,
                duration: SimDuration::from_millis(10)
            }
        );
    }

    #[test]
    fn gateway_builders_record_events() {
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        let plan = FaultPlan::new()
            .gateway_crash(1, t(1))
            .gateway_partition(2, t(2), SimDuration::from_millis(250))
            .gateway_restart(1, t(3));
        assert_eq!(plan.events().len(), 3);
        assert_eq!(
            plan.events()[1].event,
            FaultEvent::GatewayPartition {
                gateway: 2,
                duration: SimDuration::from_millis(250)
            }
        );
        assert_eq!(plan.horizon(), Some(t(3)));
    }

    #[test]
    fn disaster_builders_record_events() {
        let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
        let plan = FaultPlan::new()
            .restart_storm(
                1,
                2,
                t(100),
                SimDuration::from_millis(80),
                SimDuration::from_millis(60),
            )
            .rack_loss(1, &[0, 2], t(200), SimDuration::from_millis(120))
            .tier_controller_crash(t(300))
            .tier_controller_restart(t(400));
        assert_eq!(plan.events().len(), 4);
        assert_eq!(
            plan.events()[0].event,
            FaultEvent::GatewayRestartStorm {
                first: 1,
                count: 2,
                stagger: SimDuration::from_millis(80),
                down: SimDuration::from_millis(60),
            }
        );
        assert_eq!(
            plan.events()[1].event,
            FaultEvent::RackLoss {
                gateway: 1,
                workers: 0b101,
                down: SimDuration::from_millis(120),
            }
        );
        assert_eq!(plan.events()[2].event, FaultEvent::TierControllerCrash);
        assert_eq!(plan.horizon(), Some(t(400)));
    }

    #[test]
    fn empty_plan_has_no_horizon() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.horizon(), None);
    }
}
