//! Fault injection: timed failure events and health-check messages.
//!
//! The λ-NIC paper leans on two recovery mechanisms — client
//! retransmission of lost requests (§4.2-D3) and controller-driven
//! re-deployment of lambdas from a failed SmartNIC onto survivors (§7) —
//! so the simulation needs a way to *make* components fail. A
//! [`FaultPlan`] is a declarative schedule of failures against logical
//! targets (worker and link indices); the harness that built the
//! topology resolves those indices to [`ComponentId`]s and delivers each
//! event through the ordinary event queue, so a faulty run is exactly as
//! deterministic as a healthy one.
//!
//! This module also defines the component-level control messages
//! ([`Crash`], [`Restart`], [`StallFor`], [`LinkDown`], [`LossBurst`],
//! [`HealthPing`]/[`HealthPong`]) in the sim crate so every backend
//! (NIC, host, links, controllers) can downcast them without new
//! inter-crate dependencies.

use crate::engine::ComponentId;
use crate::time::{SimDuration, SimTime};

/// Control message: the target component fails immediately.
///
/// Backends drop all in-flight work and blackhole arrivals until they
/// receive a [`Restart`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crash;

/// Control message: a crashed component begins recovery.
///
/// Workers pay their re-provisioning cost (the NIC re-enters through the
/// firmware-swap path) before serving again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Restart;

/// Control message: the target stops making progress for the given
/// duration, then resumes with its state intact (e.g. an OS hiccup or
/// management-plane pause on a host backend).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallFor(pub SimDuration);

/// Control message: the target link drops every frame for the given
/// duration (a flap), then recovers by itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkDown(pub SimDuration);

/// Control message: the target link drops frames with probability
/// `prob` for `duration` (a correlated loss burst), then returns to its
/// configured baseline loss rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossBurst {
    /// How long the burst lasts.
    pub duration: SimDuration,
    /// Drop probability while the burst is active.
    pub prob: f64,
}

/// Control message: the target worker keeps serving but every unit of
/// work takes `factor`× as long for `duration` (a gray failure — e.g.
/// thermal throttling, a sick DIMM, or a noisy neighbour on the NPU
/// complex). The worker still answers health pings, so heartbeat-based
/// failure detectors cannot see it; only latency-based fail-slow
/// detection can.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slowdown {
    /// Multiplier applied to service/compute time (>= 1.0).
    pub factor: f64,
    /// How long the slowdown lasts.
    pub duration: SimDuration,
}

/// Control message: for `duration`, the target link delays each frame by
/// an extra uniform jitter up to `spread`, so later frames can overtake
/// earlier ones (reordering).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reorder {
    /// How long the reorder window lasts.
    pub duration: SimDuration,
    /// Maximum extra per-frame delay drawn uniformly at random.
    pub spread: SimDuration,
}

/// Control message: for `duration`, the target link delivers each frame
/// twice with probability `prob` (a misbehaving switch or a retransmit
/// race at the PHY).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Duplicate {
    /// How long the duplication window lasts.
    pub duration: SimDuration,
    /// Probability that a frame is delivered twice.
    pub prob: f64,
}

/// Control message: for `duration`, the target link flips one random bit
/// per frame with probability `prob`. The receiving NIC's checksum
/// verification must detect (and drop) the mangled frame rather than
/// execute it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Corrupt {
    /// How long the corruption window lasts.
    pub duration: SimDuration,
    /// Probability that a frame gets one bit flipped.
    pub prob: f64,
}

/// Health probe sent by a controller to a worker.
///
/// Live workers answer with [`HealthPong`] carrying the same sequence
/// number; crashed workers stay silent, which is the failure signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthPing {
    /// Sequence number echoed in the pong.
    pub seq: u64,
    /// Where to send the pong.
    pub reply_to: ComponentId,
}

/// A worker's answer to a [`HealthPing`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthPong {
    /// The probed sequence number.
    pub seq: u64,
    /// The responding component.
    pub from: ComponentId,
}

/// One scheduled failure against a logical target.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Worker `worker` crashes: in-flight jobs are lost and arrivals
    /// blackholed until a restart.
    NicCrash {
        /// Index of the worker in the testbed.
        worker: usize,
    },
    /// Worker `worker` begins recovery, paying its firmware-swap (or
    /// equivalent re-provisioning) downtime before serving again.
    NicRestart {
        /// Index of the worker in the testbed.
        worker: usize,
    },
    /// Link `link` goes dark for `duration`.
    LinkFlap {
        /// Index of the link in the testbed's link table.
        link: usize,
        /// How long the link stays down.
        duration: SimDuration,
    },
    /// Link `link` drops frames with probability `prob` for `duration`.
    LossBurst {
        /// Index of the link in the testbed's link table.
        link: usize,
        /// How long the burst lasts.
        duration: SimDuration,
        /// Drop probability during the burst.
        prob: f64,
    },
    /// Worker `worker` freezes for `duration` without losing state.
    BackendStall {
        /// Index of the worker in the testbed.
        worker: usize,
        /// How long the worker stalls.
        duration: SimDuration,
    },
    /// Worker `worker` runs `factor`× slower for `duration` (gray
    /// failure: alive, answering health pings, but sick).
    Slowdown {
        /// Index of the worker in the testbed.
        worker: usize,
        /// Service-time multiplier (>= 1.0).
        factor: f64,
        /// How long the slowdown lasts.
        duration: SimDuration,
    },
    /// Link `link` reorders frames for `duration` by delaying each one
    /// an extra uniform amount up to `spread`.
    Reorder {
        /// Index of the link in the testbed's link table.
        link: usize,
        /// How long the reorder window lasts.
        duration: SimDuration,
        /// Maximum extra per-frame delay.
        spread: SimDuration,
    },
    /// Link `link` duplicates frames with probability `prob` for
    /// `duration`.
    Duplicate {
        /// Index of the link in the testbed's link table.
        link: usize,
        /// How long the duplication window lasts.
        duration: SimDuration,
        /// Probability a frame is delivered twice.
        prob: f64,
    },
    /// Link `link` flips one random bit per frame with probability
    /// `prob` for `duration`.
    Corrupt {
        /// Index of the link in the testbed's link table.
        link: usize,
        /// How long the corruption window lasts.
        duration: SimDuration,
        /// Probability a frame gets one bit flipped.
        prob: f64,
    },
}

/// A [`FaultEvent`] with its injection time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedFault {
    /// Absolute virtual time at which the fault fires.
    pub at: SimTime,
    /// What happens.
    pub event: FaultEvent,
}

/// A declarative, time-ordered schedule of failures.
///
/// Build one with the fluent constructors, then hand it to the harness
/// that owns the topology (e.g. `Testbed::inject_faults` in `lnic`),
/// which resolves worker/link indices to components and posts each event
/// into the simulation. Because delivery rides the ordinary event queue,
/// two runs with the same seed and the same plan are bit-identical.
///
/// # Examples
///
/// ```
/// use lnic_sim::fault::{FaultEvent, FaultPlan};
/// use lnic_sim::time::{SimDuration, SimTime};
///
/// let plan = FaultPlan::new()
///     .nic_crash(0, SimTime::ZERO + SimDuration::from_secs(2))
///     .nic_restart(0, SimTime::ZERO + SimDuration::from_secs(4))
///     .link_flap(1, SimTime::ZERO + SimDuration::from_secs(3), SimDuration::from_millis(50));
/// assert_eq!(plan.events().len(), 3);
/// assert!(matches!(plan.events()[0].event, FaultEvent::NicCrash { worker: 0 }));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<TimedFault>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an arbitrary timed event.
    pub fn push(mut self, at: SimTime, event: FaultEvent) -> FaultPlan {
        self.events.push(TimedFault { at, event });
        self
    }

    /// Schedules a worker crash.
    pub fn nic_crash(self, worker: usize, at: SimTime) -> FaultPlan {
        self.push(at, FaultEvent::NicCrash { worker })
    }

    /// Schedules a worker restart.
    pub fn nic_restart(self, worker: usize, at: SimTime) -> FaultPlan {
        self.push(at, FaultEvent::NicRestart { worker })
    }

    /// Schedules a link flap.
    pub fn link_flap(self, link: usize, at: SimTime, duration: SimDuration) -> FaultPlan {
        self.push(at, FaultEvent::LinkFlap { link, duration })
    }

    /// Schedules a loss burst on a link.
    pub fn loss_burst(
        self,
        link: usize,
        at: SimTime,
        duration: SimDuration,
        prob: f64,
    ) -> FaultPlan {
        self.push(
            at,
            FaultEvent::LossBurst {
                link,
                duration,
                prob,
            },
        )
    }

    /// Schedules a backend stall.
    pub fn backend_stall(self, worker: usize, at: SimTime, duration: SimDuration) -> FaultPlan {
        self.push(at, FaultEvent::BackendStall { worker, duration })
    }

    /// Schedules a gray-failure slowdown on a worker.
    pub fn slowdown(
        self,
        worker: usize,
        at: SimTime,
        factor: f64,
        duration: SimDuration,
    ) -> FaultPlan {
        self.push(
            at,
            FaultEvent::Slowdown {
                worker,
                factor,
                duration,
            },
        )
    }

    /// Schedules a reorder window on a link.
    pub fn reorder(
        self,
        link: usize,
        at: SimTime,
        duration: SimDuration,
        spread: SimDuration,
    ) -> FaultPlan {
        self.push(
            at,
            FaultEvent::Reorder {
                link,
                duration,
                spread,
            },
        )
    }

    /// Schedules a duplication window on a link.
    pub fn duplicate(
        self,
        link: usize,
        at: SimTime,
        duration: SimDuration,
        prob: f64,
    ) -> FaultPlan {
        self.push(
            at,
            FaultEvent::Duplicate {
                link,
                duration,
                prob,
            },
        )
    }

    /// Schedules a corruption window on a link.
    pub fn corrupt(self, link: usize, at: SimTime, duration: SimDuration, prob: f64) -> FaultPlan {
        self.push(
            at,
            FaultEvent::Corrupt {
                link,
                duration,
                prob,
            },
        )
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The latest event time in the plan, if any.
    pub fn horizon(&self) -> Option<SimTime> {
        self.events.iter().map(|e| e.at).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_record_events_in_order() {
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        let plan = FaultPlan::new()
            .nic_crash(2, t(1))
            .backend_stall(1, t(2), SimDuration::from_millis(10))
            .loss_burst(0, t(3), SimDuration::from_millis(5), 0.5)
            .nic_restart(2, t(4));
        assert_eq!(plan.events().len(), 4);
        assert_eq!(plan.horizon(), Some(t(4)));
        assert_eq!(
            plan.events()[1].event,
            FaultEvent::BackendStall {
                worker: 1,
                duration: SimDuration::from_millis(10)
            }
        );
    }

    #[test]
    fn empty_plan_has_no_horizon() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.horizon(), None);
    }
}
