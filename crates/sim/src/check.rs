//! Online invariant checking over the trace stream.
//!
//! [`InvariantChecker`] is a [`TraceSink`] that validates, while the
//! simulation runs, the properties the λ-NIC model's headline numbers
//! rest on:
//!
//! 1. **Clock monotonicity** — records never go backwards in sim time.
//! 2. **Request conservation** — every completion matches exactly one
//!    outstanding submission (no invented or double-counted requests),
//!    and at end of run `submitted = completed + failed + in-flight`.
//! 3. **Per-core run-to-completion** — once a job starts on an NPU
//!    thread or host worker, no other job starts on that core until it
//!    finishes (§4.2-D1); RPC suspensions keep the core held.
//! 4. **WFQ weight bounds** — among continuously-backlogged lambdas,
//!    per-lambda service normalized by weight stays within a small
//!    additive bound of every other's (credit-based WRR guarantee), and
//!    no backlogged lambda starves.
//! 5. **Memory-hierarchy cost consistency** — the cycles a finishing job
//!    was charged equal its fixed overheads plus one cycle per
//!    instruction plus the per-object memory charges recomputed from the
//!    documented cost model (scalar burst amortization, bulk latency +
//!    streaming).
//! 6. **Placement conservation** — once a lambda is placed by the
//!    placement control plane, it always keeps at least one live
//!    placement (migrations must be make-before-break); a worker's
//!    NIC-resident placements never exceed its declared
//!    instruction-store or memory capacity; and every `migrate_done`
//!    pairs with a prior `migrate_start`. The checks only engage when
//!    placement events appear on the stream, so testbeds without a
//!    placer are unaffected.
//! 7. **At most one live owner per placement across epochs** — between a
//!    `worker_fenced` event and the matching `worker_rejoin`, the fenced
//!    component must not start executing any job (a stale owner running
//!    work after the controller re-placed its lambdas is exactly the
//!    split-brain the fencing tokens exist to prevent).
//! 8. **Fencing-token monotonicity** — per worker, lease/fence/rejoin
//!    epochs never regress (including across controller restarts), a
//!    rejoin strictly bumps the fenced epoch, a worker never rejects a
//!    token fresher than its own epoch, and the gateway only discards
//!    replies whose epoch is genuinely below the fence floor.
//! 9. **Snapshot conservation** — control-plane snapshot sequence
//!    numbers strictly increase, and a restore names a snapshot that was
//!    actually taken (a restart must not invent state).
//! 10. **Linearizability** — the per-key history of replicated-KV
//!     operations ([`TraceEvent::KvInvoke`]/[`TraceEvent::KvResponse`]
//!     pairs emitted at the gateway) admits a legal sequential ordering
//!     that respects real time, checked online Wing–Gong style: each
//!     response re-runs a memoized search for a witness ordering over the
//!     current window. Failed writes are *ghosts* — they may take effect
//!     at any later point or never (the gateway gave up, but a delayed or
//!     duplicated frame can still apply them) — while failed reads have
//!     no visible effect and drop out. The rule only engages when KV
//!     events appear on the stream, so existing testbeds are unaffected.
//! 11. **Tenant execution isolation** — a request never executes under
//!     another tenant's lambda: the tenant an `exec_start` runs as must
//!     equal the registered owner (`tenant_assign`) of the workload the
//!     request was submitted against. Untenanted runs carry tenant 0
//!     everywhere, so the rule is active by default and vacuously clean.
//! 12. **Tenant memory isolation** — a running job is only ever charged
//!     for memory objects its own tenant owns: every `mem_charge`'s
//!     `owner_tenant` must equal the executing span's tenant.
//! 13. **Tenant-level weighted fairness** — the tenant tier of the
//!     hierarchical WFQ obeys the same starvation and
//!     weight-proportional-share bounds as the per-lambda tier
//!     (invariant 4), computed over the tenant ids and weights stamped
//!     on `wfq_enqueue`/`wfq_dequeue`: under saturation, per-tenant
//!     service normalized by tenant weight converges to equal shares.
//! 14. **Gateway-tier exactly-once and epoch monotonicity** — across
//!     shard-map changes and gateway-to-gateway handoffs, each routed
//!     client request (`gw_client_submit`) is delivered exactly one
//!     client-visible completion (`gw_client_complete`); shard-map
//!     epochs (`gw_shard_map`) strictly increase; a deposed gateway
//!     (`gw_deposed`) must not accept new requests — detected through
//!     the gateway id encoded in the high bits of submitted request
//!     ids — until it rejoins (`gw_rejoin`) at a strictly higher
//!     epoch; and a `gw_handoff` retires an outstanding request at
//!     the old gateway exactly once (the successor re-submits it under
//!     its own id, keeping conservation whole). The rule only engages
//!     when gateway-tier events appear on the stream.
//! 15. **Tier-controller snapshot/restore conservation** — tier
//!     snapshot sequence numbers (`tier_snapshot`) strictly increase; a
//!     snapshot never claims a map epoch above the last published
//!     `gw_shard_map` (write-through order) nor a handoff-ledger total
//!     above the `gw_handoff` events actually observed; a restore
//!     (`tier_restore`) names a snapshot that was actually taken (seq 0
//!     is the declared cold rebuild) and never regresses the map epoch
//!     below the last published one — with requests neither lost nor
//!     duplicated across the restore (that part is invariant 14's
//!     exactly-once machinery plus end-of-run conservation, which keep
//!     running across the controller outage). Engages with the
//!     gateway-tier rule.
//!
//! By default a violation panics immediately with the offending record,
//! which makes every integration test a correctness gate; use
//! [`InvariantChecker::collecting`] to gather violations instead (e.g.
//! to assert that a deliberately broken run *is* caught).

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::time::SimTime;
use crate::trace::{TraceEvent, TraceRecord, TraceSink};

/// Mirror of the cost model's scalar burst factor
/// (`lnic_mlambda::cost::SCALAR_BURST`); the checker recomputes memory
/// charges independently, so the constant is duplicated by design — if
/// the model changes, this check is *supposed* to fail until both sides
/// agree.
pub const SCALAR_BURST: u64 = 8;

/// Mirror of `lnic_mlambda::cost::BULK_BYTES_PER_CYCLE`.
pub const BULK_BYTES_PER_CYCLE: u64 = 8;

/// Dequeues a continuously-backlogged lambda may wait, per unit of
/// (total weight / own weight), before the checker calls starvation.
const STARVATION_FACTOR: u64 = 4;

/// Additive slack (in dequeues) on the starvation bound.
const STARVATION_SLACK: u64 = 64;

/// Allowed spread, in weight-normalized service rounds, between any two
/// continuously-backlogged lambdas (credit WRR serves bursts of up to
/// `weight` items, so ~1 round of skew is inherent; 4 is generous).
const FAIRNESS_SLACK_ROUNDS: f64 = 4.0;

/// Dequeues (per backlogged lambda) before the fairness bound is
/// enforced on a window, letting shares converge first.
const FAIRNESS_MIN_WINDOW: u64 = 16;

#[derive(Debug)]
struct JobSpan {
    request_id: u64,
    lambda_id: u32,
    /// The tenant the job started under (invariant 12 joins memory
    /// charges against it).
    tenant_id: u32,
    suspended: bool,
    /// A program install landed mid-job: charged cycles may mix two
    /// images' placements, so skip the cost identity.
    cost_exempt: bool,
    charge_sum: u64,
}

#[derive(Debug, Default)]
struct LambdaQueue {
    backlog: u64,
    weight_milli: u64,
    served_in_window: u64,
    dequeues_since_served: u64,
}

/// Per-component WFQ bookkeeping. A "window" is a maximal span of
/// dequeues over which the set of backlogged lambdas did not change, so
/// every lambda in it was continuously backlogged.
#[derive(Debug, Default)]
struct WfqState {
    lambdas: HashMap<u32, LambdaQueue>,
    window_dequeues: u64,
}

impl WfqState {
    fn reset_window(&mut self) {
        self.window_dequeues = 0;
        for q in self.lambdas.values_mut() {
            q.served_in_window = 0;
            q.dequeues_since_served = 0;
        }
    }
}

/// Completed KV ops a key's window may hold before the checker forces a
/// compaction (ghosts folded into the wildcard set — a sound
/// over-approximation, counted in [`InvariantChecker::kv_forced_gc`]).
const KV_WINDOW_CAP: usize = 96;

/// Optional (ghost / still-pending) ops a key's window may hold before
/// a forced compaction. Ghosts carry no real-time upper bound, so each
/// one roughly doubles the Wing–Gong state space: an outage that fails
/// every write (leaderless churn, a partitioned majority) would
/// otherwise push the per-response search cost to 2^ghosts. Compacting
/// at a small ghost count keeps the search cheap while the required-op
/// real-time order keeps it near-linear in window length.
const KV_GHOST_CAP: usize = 8;

/// One completed (or ghost) operation in a key's linearizability window.
#[derive(Clone, Debug)]
struct KvOp {
    request_id: u64,
    /// Trace sequence number of the invocation (real-time lower bound).
    invoke_seq: u64,
    /// Trace sequence number of the response (real-time upper bound —
    /// only binding for `required` ops; `u64::MAX` while the op is
    /// still pending).
    resp_seq: u64,
    write: bool,
    /// The value written (writes) or returned (successful reads).
    value: u64,
    /// Reads: whether the key was present.
    found: bool,
    /// Acknowledged ops must appear in the witness ordering; ghosts
    /// (failed or still-pending writes) are optional and carry no
    /// real-time upper bound.
    required: bool,
}

/// An invocation awaiting its response.
#[derive(Debug)]
struct PendingKvOp {
    key: u64,
    invoke_seq: u64,
    write: bool,
    value: u64,
}

/// Per-key linearizability state (invariant 10).
#[derive(Debug, Default)]
struct KeyHistory {
    /// Completed ops not yet compacted, in completion order.
    window: Vec<KvOp>,
    /// Possible register values at the start of the window (`None` =
    /// absent). Seeded with `{None}`; replaced by the reachable final
    /// values at each compaction.
    init_values: BTreeSet<Option<u64>>,
    /// Values of ghost writes dropped by a forced compaction: a later
    /// read returning one is accepted as "the ghost applied just before
    /// this read" (over-approximation, see [`KV_WINDOW_CAP`]).
    wildcard: HashSet<u64>,
    /// Invocations on this key still awaiting a response.
    open: usize,
}

impl KeyHistory {
    fn fresh() -> Self {
        KeyHistory {
            init_values: std::iter::once(None).collect(),
            ..KeyHistory::default()
        }
    }

    /// Ops with no real-time upper bound: ghosts and in-flight writes.
    fn optional_len(&self) -> usize {
        self.window.iter().filter(|op| !op.required).count()
    }

    /// Wing–Gong search: does the window admit a witness ordering, and
    /// if so, which register values can a complete ordering end on?
    ///
    /// DFS over `(linearized-set, value)` states with memoization. From
    /// each state any not-yet-linearized op may go next unless a
    /// *required* op's response precedes its invocation (real time
    /// forbids reordering past an op that demonstrably finished first);
    /// reads must match the current value, writes set it. A state is
    /// complete once every required op is linearized — ghosts may remain
    /// unlinearized forever.
    fn search(&self) -> Option<BTreeSet<Option<u64>>> {
        let n = self.window.len();
        debug_assert!(n <= 128, "window bounded by KV_WINDOW_CAP");
        let mut required_mask: u128 = 0;
        for (i, op) in self.window.iter().enumerate() {
            if op.required {
                required_mask |= 1 << i;
            }
        }
        let mut finals = BTreeSet::new();
        let mut seen = HashSet::new();
        let mut stack: Vec<(u128, Option<u64>)> =
            self.init_values.iter().map(|&v| (0u128, v)).collect();
        while let Some((mask, val)) = stack.pop() {
            if !seen.insert((mask, val)) {
                continue;
            }
            if mask & required_mask == required_mask {
                finals.insert(val);
            }
            'next: for i in 0..n {
                if mask & (1 << i) != 0 {
                    continue;
                }
                let op = &self.window[i];
                for (j, other) in self.window.iter().enumerate() {
                    if j != i
                        && mask & (1 << j) == 0
                        && other.required
                        && other.resp_seq < op.invoke_seq
                    {
                        continue 'next;
                    }
                }
                let next_val = if op.write {
                    Some(op.value)
                } else if op.found {
                    if val == Some(op.value) {
                        val
                    } else if self.wildcard.contains(&op.value) {
                        Some(op.value)
                    } else {
                        continue;
                    }
                } else if val.is_none() {
                    val
                } else {
                    continue;
                };
                stack.push((mask | (1 << i), next_val));
            }
        }
        if finals.is_empty() {
            None
        } else {
            Some(finals)
        }
    }

    /// Forced compaction given a successful search: fold every optional
    /// op's value into the wildcard set (a dropped ghost or still-pending
    /// write may apply at any later point) and restart the window from
    /// the reachable final values. A sound over-approximation — it can
    /// only admit more histories, never reject a linearizable one.
    fn fold_into(&mut self, finals: BTreeSet<Option<u64>>) {
        let ghost_values: Vec<u64> = self
            .window
            .iter()
            .filter(|op| !op.required)
            .map(|op| op.value)
            .collect();
        self.init_values = finals;
        for v in ghost_values {
            self.init_values.insert(Some(v));
            self.wildcard.insert(v);
        }
        self.window.clear();
    }

    /// A compact rendering of the window for violation messages.
    fn describe(&self) -> String {
        let ops: Vec<String> = self
            .window
            .iter()
            .map(|op| {
                let kind = match (op.write, op.required) {
                    (true, true) => "W",
                    (true, false) => "W?",
                    (false, _) if op.found => "R",
                    (false, _) => "R∅",
                };
                let resp = if op.resp_seq == u64::MAX {
                    "?".to_string()
                } else {
                    op.resp_seq.to_string()
                };
                format!(
                    "{kind}(v={},inv={},resp={resp},req={})",
                    op.value, op.invoke_seq, op.request_id
                )
            })
            .collect();
        format!("inits {:?}, window [{}]", self.init_values, ops.join(" "))
    }
}

/// The online checker; see the module docs for the invariant list.
pub struct InvariantChecker {
    panic_on_violation: bool,
    violations: Vec<String>,
    records: u64,
    finished: bool,
    last_at: SimTime,

    // Request conservation (gateway events).
    submitted: u64,
    completed: u64,
    failed: u64,
    outstanding: HashSet<u64>,
    // Requests with a hedge in flight: a hedge may only be fired once
    // per request, only while the request is outstanding, and must
    // never double-count in conservation (the completion stays 1:1).
    hedged: HashSet<u64>,
    shed: u64,

    // Run-to-completion + cost consistency, keyed by (component, core).
    slots: HashMap<(usize, u32), JobSpan>,

    // WFQ fairness, keyed by component. The lambda tier tracks the
    // per-lambda queues; the tenant tier (invariant 13) tracks the
    // tenant level of the hierarchical tree. The events carry per-lambda
    // depths, so each tenant's backlog is maintained as a running sum of
    // its lambdas' last-seen depths (`wfq_lambda_depth` holds them).
    wfq: HashMap<usize, WfqState>,
    tenant_wfq: HashMap<usize, WfqState>,
    wfq_lambda_depth: HashMap<(usize, u32), (u32, u64)>,

    // Tenant isolation (invariants 11–12): workload→owner from
    // tenant_assign events, and request→workload from submissions so
    // exec_start (which carries the program-local lambda index, not the
    // workload id) can be joined back to its owner.
    tenant_owner: HashMap<u32, u32>,
    request_workload: HashMap<u64, u32>,

    // Placement conservation (invariant 6). Capacities are keyed by
    // worker index, live placements by (workload, worker, target) so a
    // make-before-break migration holds both sides simultaneously.
    placement_capacity: HashMap<u32, (u64, u64)>,
    placements: HashMap<(u32, u32, &'static str), (u64, u64)>,
    live_placements: HashMap<u32, u32>,
    ever_placed: HashSet<u32>,
    migrations_in_flight: HashMap<u32, u32>,

    // Fencing and membership (invariants 7–8). Epoch floors are keyed
    // by worker id; fenced spans by component index so `ExecStart`
    // records (attributed by `src`) can be matched against them.
    lease_epochs: HashMap<u32, u64>,
    fenced_components: HashMap<usize, u64>,

    // Snapshot conservation (invariant 9).
    snapshot_seqs: HashSet<u64>,
    last_snapshot_seq: u64,

    // Linearizability (invariant 10), engaged only when KV events
    // appear on the stream.
    kv_pending: HashMap<u64, PendingKvOp>,
    kv_keys: HashMap<u64, KeyHistory>,
    kv_ops: u64,
    kv_forced_gc: u64,

    // Gateway tier (invariant 14), engaged only when gateway-tier
    // events appear on the stream. Request ids encode the accepting
    // gateway in their high 16 bits, which is how acceptance by a
    // deposed shard is attributed.
    tier_active: bool,
    tier_epoch: u64,
    gw_epochs: HashMap<u32, u64>,
    deposed_gateways: HashMap<u32, u64>,
    client_outstanding: HashSet<u64>,
    client_delivered: HashSet<u64>,
    handed_off: u64,

    // Tier-controller snapshot/restore (invariant 15). Kept separate
    // from invariant 9's `snapshot_seqs`: the placement controller and
    // the tier controller number their snapshots independently.
    tier_snapshot_seqs: HashSet<u64>,
    tier_last_snap_seq: u64,
}

impl Default for InvariantChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl InvariantChecker {
    /// A checker that panics on the first violation (the default for
    /// tests: the panic carries the offending record).
    pub fn new() -> Self {
        InvariantChecker {
            panic_on_violation: true,
            violations: Vec::new(),
            records: 0,
            finished: false,
            last_at: SimTime::ZERO,
            submitted: 0,
            completed: 0,
            failed: 0,
            outstanding: HashSet::new(),
            hedged: HashSet::new(),
            shed: 0,
            slots: HashMap::new(),
            wfq: HashMap::new(),
            tenant_wfq: HashMap::new(),
            wfq_lambda_depth: HashMap::new(),
            tenant_owner: HashMap::new(),
            request_workload: HashMap::new(),
            placement_capacity: HashMap::new(),
            placements: HashMap::new(),
            live_placements: HashMap::new(),
            ever_placed: HashSet::new(),
            migrations_in_flight: HashMap::new(),
            lease_epochs: HashMap::new(),
            fenced_components: HashMap::new(),
            snapshot_seqs: HashSet::new(),
            last_snapshot_seq: 0,
            kv_pending: HashMap::new(),
            kv_keys: HashMap::new(),
            kv_ops: 0,
            kv_forced_gc: 0,
            tier_active: false,
            tier_epoch: 0,
            gw_epochs: HashMap::new(),
            deposed_gateways: HashMap::new(),
            client_outstanding: HashSet::new(),
            client_delivered: HashSet::new(),
            handed_off: 0,
            tier_snapshot_seqs: HashSet::new(),
            tier_last_snap_seq: 0,
        }
    }

    /// A checker that collects violations instead of panicking.
    pub fn collecting() -> Self {
        InvariantChecker {
            panic_on_violation: false,
            ..Self::new()
        }
    }

    /// Violations recorded so far (always empty in panicking mode).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Records observed.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Requests submitted / completed / failed so far.
    pub fn request_counts(&self) -> (u64, u64, u64) {
        (self.submitted, self.completed, self.failed)
    }

    /// Requests currently outstanding at the gateway.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Requests shed by admission control (never submitted).
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Completed replicated-KV operations checked for linearizability.
    pub fn kv_ops(&self) -> u64 {
        self.kv_ops
    }

    /// Forced window compactions (each one widens the over-approximation
    /// for its key; zero in a healthy run of bench scale).
    pub fn kv_forced_gc(&self) -> u64 {
        self.kv_forced_gc
    }

    /// Requests retired by gateway-to-gateway handoff (invariant 14);
    /// each one was outstanding at the old gateway and re-submitted by
    /// the adopting shard under its own request id.
    pub fn handed_off(&self) -> u64 {
        self.handed_off
    }

    /// Routed client requests delivered exactly one client-visible
    /// completion so far (invariant 14).
    pub fn clients_delivered(&self) -> u64 {
        self.client_delivered.len() as u64
    }

    /// The last shard-map epoch installed by the tier controller
    /// (invariant 14); 0 when no gateway tier is on the stream.
    pub fn tier_epoch(&self) -> u64 {
        self.tier_epoch
    }

    /// Panics unless zero violations were recorded.
    ///
    /// # Panics
    ///
    /// Panics listing the violations, if any.
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "{} invariant violation(s):\n{}",
            self.violations.len(),
            self.violations.join("\n")
        );
    }

    fn violation(&mut self, at: SimTime, msg: String) {
        let full = format!("[{}ns] {msg}", at.as_nanos());
        if self.panic_on_violation {
            panic!("trace invariant violated: {full}");
        }
        self.violations.push(full);
    }

    fn on_exec_start(
        &mut self,
        rec: &TraceRecord,
        core: u32,
        lambda_id: u32,
        request_id: u64,
        tenant_id: u32,
    ) {
        let key = (rec.src.index(), core);
        if let Some(prev) = self.slots.get(&key) {
            let msg = format!(
                "run-to-completion violated on {} core {core}: request {request_id} \
                 started while request {} (lambda {}) still holds the core",
                rec.src, prev.request_id, prev.lambda_id
            );
            self.violation(rec.at, msg);
        }
        // Invariant 11: the executing tenant must be the registered
        // owner of the workload the request was submitted against.
        if let Some(&workload_id) = self.request_workload.get(&request_id) {
            let owner = self.tenant_owner.get(&workload_id).copied().unwrap_or(0);
            if owner != tenant_id {
                let msg = format!(
                    "cross-tenant execution on {} core {core}: request {request_id} \
                     ran as tenant {tenant_id} under workload {workload_id}, which \
                     belongs to tenant {owner}",
                    rec.src
                );
                self.violation(rec.at, msg);
            }
        }
        self.slots.insert(
            key,
            JobSpan {
                request_id,
                lambda_id,
                tenant_id,
                suspended: false,
                cost_exempt: false,
                charge_sum: 0,
            },
        );
    }

    fn on_exec_suspend(&mut self, rec: &TraceRecord, core: u32, request_id: u64, resume: bool) {
        let key = (rec.src.index(), core);
        let what = if resume { "resumed" } else { "suspended" };
        let failure = match self.slots.get_mut(&key) {
            None => Some(format!(
                "request {request_id} {what} on idle {} core {core}",
                rec.src
            )),
            Some(span) if span.request_id != request_id => Some(format!(
                "{} core {core} holds request {} but request {request_id} \
                 changed suspension state",
                rec.src, span.request_id
            )),
            Some(span) => {
                let double = span.suspended != resume;
                span.suspended = !resume;
                double.then(|| {
                    format!(
                        "request {request_id} on {} core {core} {what} twice",
                        rec.src
                    )
                })
            }
        };
        if let Some(msg) = failure {
            self.violation(rec.at, msg);
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the MemCharge event's fields
    fn on_mem_charge(
        &mut self,
        rec: &TraceRecord,
        core: u32,
        request_id: u64,
        level: &'static str,
        latency_cycles: u64,
        scalar: u64,
        bulk_ops: u64,
        bulk_bytes: u64,
        cycles: u64,
        owner_tenant: u32,
    ) {
        // Invariant 5a: the per-object charge matches the cost model.
        let expect = scalar * (1 + latency_cycles.div_ceil(SCALAR_BURST))
            + bulk_ops * latency_cycles
            + bulk_bytes.div_ceil(BULK_BYTES_PER_CYCLE);
        if cycles != expect {
            let msg = format!(
                "memory cost model mismatch on {} core {core} request {request_id} \
                 level {level}: charged {cycles} cycles, model gives {expect} \
                 (lat={latency_cycles} scalar={scalar} bulk_ops={bulk_ops} \
                 bulk_bytes={bulk_bytes})",
                rec.src
            );
            self.violation(rec.at, msg);
        }
        let key = (rec.src.index(), core);
        match self.slots.get_mut(&key) {
            Some(span) if span.request_id == request_id => {
                span.charge_sum += cycles;
                // Invariant 12: a job only touches its own tenant's
                // memory objects.
                let span_tenant = span.tenant_id;
                if span_tenant != owner_tenant {
                    let msg = format!(
                        "cross-tenant memory access on {} core {core}: request \
                         {request_id} (tenant {span_tenant}) charged for a {level} \
                         object owned by tenant {owner_tenant}",
                        rec.src
                    );
                    self.violation(rec.at, msg);
                }
            }
            _ => {
                let msg = format!(
                    "memory charge for request {request_id} on {} core {core} \
                     without a matching running job",
                    rec.src
                );
                self.violation(rec.at, msg);
            }
        }
    }

    fn on_exec_finish(
        &mut self,
        rec: &TraceRecord,
        core: u32,
        request_id: u64,
        total_cycles: u64,
        overhead_cycles: u64,
        instr_cycles: u64,
    ) {
        let key = (rec.src.index(), core);
        let Some(span) = self.slots.remove(&key) else {
            let msg = format!(
                "request {request_id} finished on idle {} core {core}",
                rec.src
            );
            self.violation(rec.at, msg);
            return;
        };
        if span.request_id != request_id {
            let msg = format!(
                "{} core {core} finished request {request_id} but was running \
                 request {}",
                rec.src, span.request_id
            );
            self.violation(rec.at, msg);
            return;
        }
        // Invariant 5b: total charged cycles decompose exactly.
        let expect = overhead_cycles + instr_cycles + span.charge_sum;
        if !span.cost_exempt && total_cycles != expect {
            let msg = format!(
                "cost consistency violated on {} core {core} request {request_id}: \
                 charged {total_cycles} cycles, but overhead {overhead_cycles} + \
                 instrs {instr_cycles} + memory {} = {expect}",
                rec.src, span.charge_sum
            );
            self.violation(rec.at, msg);
        }
    }

    /// One tier of the WFQ bounds (invariants 4 and 13): `entity` names
    /// the queueing unit ("lambda" or "tenant") for the messages.
    fn wfq_tier(
        state: &mut WfqState,
        src: String,
        entity: &'static str,
        id: u32,
        weight_milli: u64,
        depth: u64,
        deq: bool,
    ) -> Vec<String> {
        let mut failures = Vec::new();
        let q = state.lambdas.entry(id).or_default();
        q.weight_milli = weight_milli;
        if weight_milli == 0 {
            failures.push(format!(
                "WFQ weight bound violated on {src}: {entity} {id} has \
                 non-positive weight"
            ));
            return failures;
        }
        if !deq {
            let was_empty = q.backlog == 0;
            q.backlog = depth;
            if was_empty {
                // The backlogged set changed: start a fresh fairness window.
                state.reset_window();
            }
            return failures;
        }
        if q.backlog == 0 {
            failures.push(format!(
                "WFQ on {src} dequeued {entity} {id} with no recorded backlog"
            ));
        }
        q.backlog = depth;
        q.served_in_window += 1;
        q.dequeues_since_served = 0;
        let emptied = depth == 0;
        state.window_dequeues += 1;

        // Gather the still-backlogged set for the bounds.
        let backlogged: Vec<(u32, u64, u64, u64)> = state
            .lambdas
            .iter()
            .filter(|(_, l)| l.backlog > 0)
            .map(|(&id, l)| {
                (
                    id,
                    l.weight_milli,
                    l.served_in_window,
                    l.dequeues_since_served,
                )
            })
            .collect();
        let total_milli: u64 = backlogged.iter().map(|&(_, w, _, _)| w).sum();

        if backlogged.len() >= 2 {
            // Invariant 4a: no starvation.
            for &(id, w, _, waited) in &backlogged {
                let bound = STARVATION_FACTOR * total_milli.div_ceil(w) + STARVATION_SLACK;
                if waited > bound {
                    failures.push(format!(
                        "WFQ starvation on {src}: {entity} {id} (weight {}m) backlogged \
                         through {waited} dequeues (bound {bound})",
                        w
                    ));
                }
            }
            // Invariant 4b: weight-proportional shares within the window.
            if state.window_dequeues >= FAIRNESS_MIN_WINDOW * backlogged.len() as u64 {
                let norms: Vec<f64> = backlogged
                    .iter()
                    .map(|&(_, w, served, _)| served as f64 * 1000.0 / w as f64)
                    .collect();
                let max = norms.iter().cloned().fold(f64::MIN, f64::max);
                let min = norms.iter().cloned().fold(f64::MAX, f64::min);
                if max - min > FAIRNESS_SLACK_ROUNDS {
                    failures.push(format!(
                        "WFQ weight bound violated on {src}: normalized {entity} service \
                         spread {:.2} rounds exceeds {FAIRNESS_SLACK_ROUNDS} \
                         (window of {} dequeues, set {:?})",
                        max - min,
                        state.window_dequeues,
                        backlogged
                            .iter()
                            .map(|&(id, w, served, _)| (id, w, served))
                            .collect::<Vec<_>>()
                    ));
                }
            }
        }
        // Advance starvation clocks for everyone else still waiting.
        for (&other, l) in state.lambdas.iter_mut() {
            if other != id && l.backlog > 0 {
                l.dequeues_since_served += 1;
            }
        }
        if emptied {
            // The backlogged set changed: close the window.
            state.reset_window();
        }
        failures
    }

    #[allow(clippy::too_many_arguments)] // mirrors the WFQ events' fields
    fn on_wfq(
        &mut self,
        rec: &TraceRecord,
        lambda_id: u32,
        weight_milli: u64,
        depth: u64,
        tenant_id: u32,
        tenant_weight_milli: u64,
        deq: bool,
    ) {
        let src = rec.src.to_string();
        let state = self.wfq.entry(rec.src.index()).or_default();
        let mut failures = Self::wfq_tier(
            state,
            src.clone(),
            "lambda",
            lambda_id,
            weight_milli,
            depth,
            deq,
        );
        // Tenant tier (invariant 13). The events carry per-lambda
        // depths, so each tenant's backlog is the running sum of its
        // lambdas' last-seen depths.
        let prev = self
            .wfq_lambda_depth
            .insert((rec.src.index(), lambda_id), (tenant_id, depth));
        let tstate = self.tenant_wfq.entry(rec.src.index()).or_default();
        let mut cur = tstate
            .lambdas
            .get(&tenant_id)
            .map(|q| q.backlog)
            .unwrap_or(0);
        if let Some((prev_tenant, prev_depth)) = prev {
            if prev_tenant == tenant_id {
                cur = cur.saturating_sub(prev_depth);
            } else if let Some(q) = tstate.lambdas.get_mut(&prev_tenant) {
                // A lambda changed owners mid-run (synthetic histories
                // only): move its backlog out of the old tenant.
                q.backlog = q.backlog.saturating_sub(prev_depth);
            }
        }
        let tenant_depth = cur + depth;
        failures.extend(Self::wfq_tier(
            tstate,
            src,
            "tenant",
            tenant_id,
            tenant_weight_milli,
            tenant_depth,
            deq,
        ));
        for msg in failures {
            self.violation(rec.at, msg);
        }
    }

    /// A component lost all volatile state: forget its cores and queues.
    fn on_component_reset(&mut self, src_index: usize) {
        self.slots.retain(|&(comp, _), _| comp != src_index);
        self.wfq.remove(&src_index);
        self.tenant_wfq.remove(&src_index);
        self.wfq_lambda_depth
            .retain(|&(comp, _), _| comp != src_index);
    }

    /// Sums NIC-resident usage on one worker across live placements.
    fn nic_usage(&self, worker: u32) -> (u64, u64) {
        self.placements
            .iter()
            .filter(|(&(_, w, target), _)| w == worker && target == "nic")
            .fold((0, 0), |(i, m), (_, &(instr, mem))| (i + instr, m + mem))
    }

    fn on_placement_capacity(&mut self, rec: &TraceRecord, worker: u32, instr: u64, mem: u64) {
        self.placement_capacity.insert(worker, (instr, mem));
        // Re-declared capacity must still admit what is already placed.
        let (used_instr, used_mem) = self.nic_usage(worker);
        if used_instr > instr || used_mem > mem {
            let msg = format!(
                "worker {worker} exceeds instruction-store/memory capacity after \
                 re-declaration: {used_instr} words / {used_mem} bytes placed, \
                 capacity {instr} words / {mem} bytes"
            );
            self.violation(rec.at, msg);
        }
    }

    fn on_place(
        &mut self,
        rec: &TraceRecord,
        workload_id: u32,
        worker: u32,
        target: &'static str,
        instr: u64,
        mem: u64,
    ) {
        let key = (workload_id, worker, target);
        if self.placements.insert(key, (instr, mem)).is_some() {
            let msg = format!("workload {workload_id} placed twice on worker {worker} ({target})");
            self.violation(rec.at, msg);
            return;
        }
        *self.live_placements.entry(workload_id).or_insert(0) += 1;
        self.ever_placed.insert(workload_id);
        if target == "nic" {
            if let Some(&(cap_instr, cap_mem)) = self.placement_capacity.get(&worker) {
                let (used_instr, used_mem) = self.nic_usage(worker);
                if used_instr > cap_instr || used_mem > cap_mem {
                    let msg = format!(
                        "worker {worker} exceeds instruction-store/memory capacity: \
                         placing workload {workload_id} brings usage to {used_instr} \
                         words / {used_mem} bytes, capacity {cap_instr} words / \
                         {cap_mem} bytes"
                    );
                    self.violation(rec.at, msg);
                }
            }
        }
    }

    fn on_unplace(
        &mut self,
        rec: &TraceRecord,
        workload_id: u32,
        worker: u32,
        target: &'static str,
    ) {
        if self
            .placements
            .remove(&(workload_id, worker, target))
            .is_none()
        {
            let msg = format!(
                "workload {workload_id} unplaced from worker {worker} ({target}) \
                 but was not placed there"
            );
            self.violation(rec.at, msg);
            return;
        }
        let live = self.live_placements.entry(workload_id).or_insert(0);
        *live = live.saturating_sub(1);
        if *live == 0 {
            let msg = format!(
                "workload {workload_id} lost its last live placement: migrations \
                 must be make-before-break"
            );
            self.violation(rec.at, msg);
        }
    }

    fn on_migrate_done(&mut self, rec: &TraceRecord, workload_id: u32) {
        match self.migrations_in_flight.get_mut(&workload_id) {
            Some(n) if *n > 0 => *n -= 1,
            _ => {
                let msg = format!(
                    "migrate_done for workload {workload_id} without a matching \
                     migrate_start"
                );
                self.violation(rec.at, msg);
            }
        }
    }

    /// Invariant 8: per-worker epochs never regress, no matter which
    /// membership event carries them (this also holds across controller
    /// restarts — a restored control plane must not hand out old
    /// tokens).
    fn note_epoch(&mut self, rec: &TraceRecord, worker: u32, epoch: u64, what: &str) {
        let prev = self.lease_epochs.get(&worker).copied().unwrap_or(0);
        if epoch < prev {
            let msg = format!(
                "fencing token regressed on worker {worker}: {what} at epoch \
                 {epoch} after epoch {prev}"
            );
            self.violation(rec.at, msg);
        }
        self.lease_epochs.insert(worker, prev.max(epoch));
    }

    /// Invariant 10: a KV invocation opens an op on its key. Writes
    /// enter the window immediately — a concurrent read may legally
    /// return a value whose write has not been acknowledged yet — as
    /// optional, unbounded ops until their response arrives.
    fn on_kv_invoke(
        &mut self,
        rec: &TraceRecord,
        request_id: u64,
        key: u64,
        write: bool,
        value: u64,
    ) {
        if self
            .kv_pending
            .insert(
                request_id,
                PendingKvOp {
                    key,
                    invoke_seq: rec.seq,
                    write,
                    value,
                },
            )
            .is_some()
        {
            let msg = format!("kv request {request_id} invoked twice");
            self.violation(rec.at, msg);
        }
        let mut forced = false;
        {
            let hist = self.kv_keys.entry(key).or_insert_with(KeyHistory::fresh);
            hist.open += 1;
            if write {
                if hist.window.len() >= KV_WINDOW_CAP || hist.optional_len() >= KV_GHOST_CAP {
                    if let Some(finals) = hist.search() {
                        hist.fold_into(finals);
                        forced = true;
                    }
                }
                hist.window.push(KvOp {
                    request_id,
                    invoke_seq: rec.seq,
                    resp_seq: u64::MAX,
                    write: true,
                    value,
                    found: true,
                    required: false,
                });
            }
        }
        if forced {
            self.kv_forced_gc += 1;
        }
    }

    /// Invariant 10: a KV response closes its op and re-runs the
    /// Wing–Gong search over the key's window.
    fn on_kv_response(
        &mut self,
        rec: &TraceRecord,
        request_id: u64,
        ok: bool,
        found: bool,
        value: u64,
    ) {
        let Some(pending) = self.kv_pending.remove(&request_id) else {
            let msg = format!("kv request {request_id} responded without an invocation");
            self.violation(rec.at, msg);
            return;
        };
        self.kv_ops += 1;
        let key = pending.key;
        let mut viol = None;
        let mut forced = false;
        {
            let hist = self
                .kv_keys
                .get_mut(&key)
                .expect("invocation created the key history");
            hist.open = hist.open.saturating_sub(1);
            // Bind the response to its op. Writes were placed in the
            // window at invocation: the response fixes their real-time
            // upper bound and, when acknowledged, makes them required.
            // Acknowledged reads are appended, constrained by the value
            // they *returned*; failed reads constrain nothing.
            let write_idx = if pending.write {
                match hist.window.iter().position(|op| {
                    op.write && op.request_id == request_id && op.resp_seq == u64::MAX
                }) {
                    Some(idx) => {
                        if !ok {
                            // Ghost: stays optional and unbounded.
                            return;
                        }
                        hist.window[idx].resp_seq = rec.seq;
                        hist.window[idx].required = true;
                        Some(idx)
                    }
                    // A forced compaction already folded this write into
                    // the wildcard set; its ordering can no longer be
                    // enforced (counted in `kv_forced_gc`).
                    None => return,
                }
            } else {
                if !ok {
                    return;
                }
                hist.window.push(KvOp {
                    request_id,
                    invoke_seq: pending.invoke_seq,
                    resp_seq: rec.seq,
                    write: false,
                    value,
                    found,
                    required: true,
                });
                None
            };
            match hist.search() {
                None => {
                    let msg = format!(
                        "non-linearizable history on key {key}: no witness ordering \
                         after request {request_id} ({}{}) — {}",
                        if pending.write { "write" } else { "read" },
                        if pending.write {
                            format!(" v={}", pending.value)
                        } else if found {
                            format!(" returned v={value}")
                        } else {
                            " returned absent".to_string()
                        },
                        hist.describe()
                    );
                    // Surgical recovery so one bad response does not
                    // cascade into a violation on every later op: demote
                    // the write back to a ghost, or drop the read.
                    match write_idx {
                        Some(idx) => {
                            hist.window[idx].resp_seq = u64::MAX;
                            hist.window[idx].required = false;
                        }
                        None => {
                            hist.window.pop();
                        }
                    }
                    viol = Some(msg);
                }
                Some(finals) => {
                    // Compact at quiescence: with no open ops and no
                    // ghosts, the window collapses to its reachable
                    // final values exactly.
                    let optional = hist.optional_len();
                    if hist.open == 0 && optional == 0 {
                        hist.init_values = finals;
                        hist.window.clear();
                    } else if hist.window.len() >= KV_WINDOW_CAP || optional >= KV_GHOST_CAP {
                        hist.fold_into(finals);
                        forced = true;
                    }
                }
            }
        }
        if forced {
            self.kv_forced_gc += 1;
        }
        if let Some(msg) = viol {
            self.violation(rec.at, msg);
        }
    }
}

impl TraceSink for InvariantChecker {
    fn on_record(&mut self, rec: &TraceRecord) {
        self.records += 1;
        // Invariant 1: clock monotonicity.
        if rec.at < self.last_at {
            let msg = format!(
                "clock went backwards: record {} at {}ns after {}ns",
                rec.seq,
                rec.at.as_nanos(),
                self.last_at.as_nanos()
            );
            self.violation(rec.at, msg);
        }
        self.last_at = self.last_at.max(rec.at);

        match rec.event {
            // Invariant 2: request conservation.
            TraceEvent::RequestSubmitted {
                request_id,
                workload_id,
            } => {
                self.submitted += 1;
                if !self.outstanding.insert(request_id) {
                    let msg = format!("request {request_id} submitted twice");
                    self.violation(rec.at, msg);
                }
                // Invariant 14: with a gateway tier on the stream, the
                // accepting gateway is encoded in the id's high bits; a
                // deposed shard must not accept before rejoining.
                if self.tier_active {
                    let gateway = (request_id >> 48) as u32;
                    if let Some(&epoch) = self.deposed_gateways.get(&gateway) {
                        let msg = format!(
                            "deposed gateway {gateway} (epoch {epoch}) accepted \
                             request {request_id} before rejoining"
                        );
                        self.violation(rec.at, msg);
                    }
                }
                // Invariant 11 joins exec_start back to the workload.
                self.request_workload.insert(request_id, workload_id);
            }
            TraceEvent::RequestRetransmit { request_id, .. } => {
                if !self.outstanding.contains(&request_id) {
                    let msg = format!("request {request_id} retransmitted but not outstanding");
                    self.violation(rec.at, msg);
                }
            }
            TraceEvent::RequestCompleted {
                request_id, failed, ..
            } => {
                if failed {
                    self.failed += 1;
                } else {
                    self.completed += 1;
                }
                if !self.outstanding.remove(&request_id) {
                    let msg = format!(
                        "request {request_id} completed without an outstanding \
                         submission (invented or double-completed)"
                    );
                    self.violation(rec.at, msg);
                }
                self.hedged.remove(&request_id);
                self.request_workload.remove(&request_id);
            }
            TraceEvent::RequestUnplaced { .. } => {}

            // Invariant 2, hedging form: a hedge is a *duplicate attempt*
            // for one outstanding request, never a new request. Exactly
            // one completion may follow, which the arms above enforce;
            // here we pin that hedges only attach to live requests and
            // fire at most once each.
            TraceEvent::HedgeFired { request_id, .. } => {
                if !self.outstanding.contains(&request_id) {
                    let msg = format!("request {request_id} hedged but not outstanding");
                    self.violation(rec.at, msg);
                }
                if !self.hedged.insert(request_id) {
                    let msg = format!("request {request_id} hedged twice");
                    self.violation(rec.at, msg);
                }
            }
            TraceEvent::HedgeWon { request_id, .. } => {
                if !self.hedged.contains(&request_id) {
                    let msg = format!("request {request_id} hedge won without a hedge fired");
                    self.violation(rec.at, msg);
                }
                if !self.outstanding.contains(&request_id) {
                    let msg = format!("request {request_id} hedge won after the request completed");
                    self.violation(rec.at, msg);
                }
            }
            // Shed requests are rejected before submission: they never
            // get a request id and must not enter conservation.
            TraceEvent::AdmissionReject { .. } => {
                self.shed += 1;
            }
            // A worker-side deadline drop resolves through the normal
            // response/timeout path at the gateway, so conservation is
            // untouched here.
            TraceEvent::DeadlineDrop { .. } => {}
            TraceEvent::EndpointQuarantine { .. } => {}

            // Invariant 3 (+5, 11 join); invariant 7 gates entry.
            TraceEvent::ExecStart {
                core,
                lambda_id,
                request_id,
                tenant_id,
            } => {
                if let Some(epoch) = self.fenced_components.get(&rec.src.index()) {
                    let msg = format!(
                        "stale-epoch execution: {} (fenced at epoch {epoch}) started \
                         request {request_id} (lambda {lambda_id}) before rejoining",
                        rec.src
                    );
                    self.violation(rec.at, msg);
                }
                self.on_exec_start(rec, core, lambda_id, request_id, tenant_id);
            }
            TraceEvent::ExecSuspend {
                core, request_id, ..
            } => self.on_exec_suspend(rec, core, request_id, false),
            TraceEvent::ExecResume {
                core, request_id, ..
            } => self.on_exec_suspend(rec, core, request_id, true),
            TraceEvent::ExecFinish {
                core,
                request_id,
                total_cycles,
                overhead_cycles,
                instr_cycles,
                ..
            } => self.on_exec_finish(
                rec,
                core,
                request_id,
                total_cycles,
                overhead_cycles,
                instr_cycles,
            ),
            TraceEvent::MemCharge {
                core,
                request_id,
                level,
                latency_cycles,
                scalar,
                bulk_ops,
                bulk_bytes,
                cycles,
                owner_tenant,
                ..
            } => self.on_mem_charge(
                rec,
                core,
                request_id,
                level,
                latency_cycles,
                scalar,
                bulk_ops,
                bulk_bytes,
                cycles,
                owner_tenant,
            ),

            // Invariants 4 and 13.
            TraceEvent::WfqEnqueue {
                lambda_id,
                weight_milli,
                depth,
                tenant_id,
                tenant_weight_milli,
            } => self.on_wfq(
                rec,
                lambda_id,
                weight_milli,
                depth,
                tenant_id,
                tenant_weight_milli,
                false,
            ),
            TraceEvent::WfqDequeue {
                lambda_id,
                weight_milli,
                depth,
                tenant_id,
                tenant_weight_milli,
            } => self.on_wfq(
                rec,
                lambda_id,
                weight_milli,
                depth,
                tenant_id,
                tenant_weight_milli,
                true,
            ),

            TraceEvent::ProgramInstall {} => {
                let src = rec.src.index();
                for ((comp, _), span) in self.slots.iter_mut() {
                    if *comp == src {
                        span.cost_exempt = true;
                    }
                }
            }
            TraceEvent::Fault { kind, .. } => {
                if kind == "crash" {
                    self.on_component_reset(rec.src.index());
                }
            }

            // Invariant 6: placement conservation.
            TraceEvent::PlacementCapacity {
                worker,
                instr_words,
                mem_bytes,
            } => self.on_placement_capacity(rec, worker, instr_words, mem_bytes),
            TraceEvent::Place {
                workload_id,
                worker,
                target,
                instr_words,
                mem_bytes,
            } => self.on_place(rec, workload_id, worker, target, instr_words, mem_bytes),
            TraceEvent::Unplace {
                workload_id,
                worker,
                target,
            } => self.on_unplace(rec, workload_id, worker, target),
            TraceEvent::MigrateStart { workload_id, .. } => {
                *self.migrations_in_flight.entry(workload_id).or_insert(0) += 1;
            }
            TraceEvent::MigrateDone { workload_id, .. } => self.on_migrate_done(rec, workload_id),
            TraceEvent::PlacementReject { .. } => {}

            // Invariants 7–8: lease-based membership and fencing.
            TraceEvent::LeaseGrant { worker, epoch, .. } => {
                self.note_epoch(rec, worker, epoch, "lease grant");
            }
            TraceEvent::WorkerFenced {
                worker,
                component,
                epoch,
            } => {
                self.note_epoch(rec, worker, epoch, "fence");
                self.fenced_components.insert(component as usize, epoch);
            }
            TraceEvent::WorkerRejoin {
                worker,
                component,
                epoch,
            } => {
                match self.fenced_components.remove(&(component as usize)) {
                    Some(fenced_epoch) if epoch <= fenced_epoch => {
                        let msg = format!(
                            "worker {worker} rejoined at epoch {epoch} without bumping \
                             past the fenced epoch {fenced_epoch}"
                        );
                        self.violation(rec.at, msg);
                    }
                    Some(_) => {}
                    None => {
                        let msg = format!(
                            "worker {worker} rejoined at epoch {epoch} without a \
                             preceding fence"
                        );
                        self.violation(rec.at, msg);
                    }
                }
                self.note_epoch(rec, worker, epoch, "rejoin");
            }
            TraceEvent::FencedReject {
                request_id,
                hdr_epoch,
                worker_epoch,
                ..
            } => {
                // A worker may reject an equal-epoch token (lapsed
                // lease, self-fence) but never a strictly fresher one.
                if hdr_epoch > worker_epoch {
                    let msg = format!(
                        "request {request_id} carried epoch {hdr_epoch} but was \
                         fence-rejected by a worker at older epoch {worker_epoch}"
                    );
                    self.violation(rec.at, msg);
                }
            }
            TraceEvent::StaleReplyDrop {
                request_id,
                reply_epoch,
                floor_epoch,
            } => {
                if reply_epoch >= floor_epoch {
                    let msg = format!(
                        "reply for request {request_id} at epoch {reply_epoch} \
                         discarded despite meeting the fence floor {floor_epoch}"
                    );
                    self.violation(rec.at, msg);
                }
            }
            TraceEvent::LeaseExpire { .. } => {}

            // Invariant 9: snapshot conservation.
            TraceEvent::SnapshotTaken { seq, .. } => {
                if seq <= self.last_snapshot_seq {
                    let msg = format!(
                        "snapshot seq went backwards: {seq} after {}",
                        self.last_snapshot_seq
                    );
                    self.violation(rec.at, msg);
                }
                self.last_snapshot_seq = seq;
                self.snapshot_seqs.insert(seq);
            }
            TraceEvent::SnapshotRestored { seq, .. } => {
                if !self.snapshot_seqs.contains(&seq) {
                    let msg = format!("controller restored snapshot {seq} that was never taken");
                    self.violation(rec.at, msg);
                }
            }

            // Invariant 10: online linearizability over per-key KV
            // histories.
            TraceEvent::KvInvoke {
                request_id,
                key,
                write,
                value,
            } => self.on_kv_invoke(rec, request_id, key, write, value),
            TraceEvent::KvResponse {
                request_id,
                ok,
                found,
                value,
            } => self.on_kv_response(rec, request_id, ok, found, value),

            // Invariants 11–12: ownership registration. Firmware paging
            // events are accounting-only (the fault cost feeds the cost
            // identity through exec_finish's overhead).
            TraceEvent::TenantAssign {
                tenant_id,
                workload_id,
            } => {
                self.tenant_owner.insert(workload_id, tenant_id);
            }
            TraceEvent::FirmwareFault { .. } | TraceEvent::FirmwareEvict { .. } => {}

            // Invariant 14: gateway-tier exactly-once and epoch
            // monotonicity.
            TraceEvent::GwShardMap { epoch, .. } => {
                self.tier_active = true;
                if epoch <= self.tier_epoch {
                    let msg = format!(
                        "shard-map epoch regressed: {epoch} installed after {}",
                        self.tier_epoch
                    );
                    self.violation(rec.at, msg);
                }
                self.tier_epoch = epoch;
            }
            TraceEvent::GwDeposed { gateway, epoch } => {
                self.tier_active = true;
                let floor = self.gw_epochs.get(&gateway).copied().unwrap_or(0);
                if epoch < floor {
                    let msg = format!(
                        "gateway {gateway} deposed at epoch {epoch}, below its \
                         prior epoch {floor}"
                    );
                    self.violation(rec.at, msg);
                }
                self.gw_epochs.insert(gateway, floor.max(epoch));
                self.deposed_gateways.insert(gateway, epoch);
            }
            TraceEvent::GwRejoin { gateway, epoch } => {
                self.tier_active = true;
                match self.deposed_gateways.remove(&gateway) {
                    Some(deposed_epoch) if epoch <= deposed_epoch => {
                        let msg = format!(
                            "gateway {gateway} rejoined at epoch {epoch} without \
                             bumping past the deposed epoch {deposed_epoch}"
                        );
                        self.violation(rec.at, msg);
                    }
                    Some(_) => {}
                    None => {
                        let msg = format!(
                            "gateway {gateway} rejoined at epoch {epoch} without a \
                             preceding depose"
                        );
                        self.violation(rec.at, msg);
                    }
                }
                let floor = self.gw_epochs.get(&gateway).copied().unwrap_or(0);
                self.gw_epochs.insert(gateway, floor.max(epoch));
            }
            TraceEvent::GwHandoff {
                from_gateway,
                to_gateway,
                request_id,
            } => {
                self.tier_active = true;
                if !self.outstanding.remove(&request_id) {
                    let msg = format!(
                        "handoff from gateway {from_gateway} to {to_gateway} retired \
                         request {request_id}, which was not outstanding"
                    );
                    self.violation(rec.at, msg);
                } else {
                    self.handed_off += 1;
                }
                self.hedged.remove(&request_id);
                self.request_workload.remove(&request_id);
            }
            TraceEvent::GwClientSubmit { uid, .. } => {
                self.tier_active = true;
                if self.client_delivered.contains(&uid) || !self.client_outstanding.insert(uid) {
                    let msg = format!("client request {uid} routed twice");
                    self.violation(rec.at, msg);
                }
            }
            TraceEvent::GwClientComplete { uid, gateway, .. } => {
                self.tier_active = true;
                if self.client_delivered.contains(&uid) {
                    let msg = format!(
                        "exactly-once violated: client request {uid} delivered a \
                         second completion (from gateway {gateway})"
                    );
                    self.violation(rec.at, msg);
                } else if !self.client_outstanding.remove(&uid) {
                    let msg = format!(
                        "client request {uid} completed (gateway {gateway}) without \
                         a routed submission"
                    );
                    self.violation(rec.at, msg);
                } else {
                    self.client_delivered.insert(uid);
                }
            }
            TraceEvent::GwBounce { .. } => {}

            // Invariant 15: tier-controller snapshot/restore
            // conservation.
            TraceEvent::TierSnapshot {
                seq,
                epoch,
                handed_off,
                ..
            } => {
                self.tier_active = true;
                if seq <= self.tier_last_snap_seq {
                    let msg = format!(
                        "tier snapshot seq went backwards: {seq} after {}",
                        self.tier_last_snap_seq
                    );
                    self.violation(rec.at, msg);
                }
                if epoch > self.tier_epoch {
                    let msg = format!(
                        "tier snapshot {seq} claims epoch {epoch} above the \
                         published map epoch {}",
                        self.tier_epoch
                    );
                    self.violation(rec.at, msg);
                }
                if handed_off > self.handed_off {
                    let msg = format!(
                        "tier snapshot {seq} claims {handed_off} handoffs but only \
                         {} were observed",
                        self.handed_off
                    );
                    self.violation(rec.at, msg);
                }
                self.tier_last_snap_seq = self.tier_last_snap_seq.max(seq);
                self.tier_snapshot_seqs.insert(seq);
            }
            TraceEvent::TierRestore {
                seq,
                epoch,
                handed_off,
                ..
            } => {
                self.tier_active = true;
                if seq != 0 && !self.tier_snapshot_seqs.contains(&seq) {
                    let msg =
                        format!("tier controller restored snapshot {seq} that was never taken");
                    self.violation(rec.at, msg);
                }
                if epoch < self.tier_epoch {
                    let msg = format!(
                        "tier restore regressed the map epoch: {epoch} below the \
                         published {}",
                        self.tier_epoch
                    );
                    self.violation(rec.at, msg);
                }
                if handed_off > self.handed_off {
                    let msg = format!(
                        "tier restore claims {handed_off} handoffs but only {} \
                         were observed",
                        self.handed_off
                    );
                    self.violation(rec.at, msg);
                }
            }

            TraceEvent::LinkTx { .. }
            | TraceEvent::LinkDrop { .. }
            | TraceEvent::FragDrop { .. }
            | TraceEvent::SwitchForward { .. }
            | TraceEvent::SwitchDrop { .. }
            | TraceEvent::Mark { .. } => {}
        }
    }

    fn on_finish(&mut self, now: SimTime) {
        if self.finished {
            return;
        }
        self.finished = true;
        // Invariant 2, end-of-run form (handed-off requests were retired
        // at the old gateway and re-submitted by the adopting shard, so
        // they count once on each side of the ledger).
        let accounted =
            self.completed + self.failed + self.handed_off + self.outstanding.len() as u64;
        if self.submitted != accounted {
            let msg = format!(
                "request conservation violated: {} submitted but {} completed + \
                 {} failed + {} handed off + {} in flight = {accounted}",
                self.submitted,
                self.completed,
                self.failed,
                self.handed_off,
                self.outstanding.len()
            );
            self.violation(now, msg);
        }
        // Invariant 6, end-of-run form: every workload the control plane
        // ever placed must still hold at least one live placement.
        // (Migrations still in flight at a run_until cutoff are fine —
        // the make-before-break ordering means the workload stays live
        // throughout.)
        let mut lost: Vec<u32> = self
            .ever_placed
            .iter()
            .filter(|id| self.live_placements.get(id).copied().unwrap_or(0) == 0)
            .copied()
            .collect();
        lost.sort_unstable();
        for workload_id in lost {
            let msg = format!(
                "placement conservation violated at end of run: workload \
                 {workload_id} was placed but holds no live placement"
            );
            self.violation(now, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ComponentId;

    fn rec(at_ns: u64, seq: u64, src: usize, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_nanos(at_ns),
            seq,
            src: ComponentId::from_index_for_tests(src),
            event,
        }
    }

    fn feed(checker: &mut InvariantChecker, events: &[(u64, usize, TraceEvent)]) {
        for (at, src, ev) in events {
            // Seq continues across feed calls: real-time order between
            // batches must be preserved (the kv rule orders by seq).
            let seq = checker.records;
            checker.on_record(&rec(*at, seq, *src, ev.clone()));
        }
    }

    #[test]
    fn clean_request_lifecycle_passes() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    1,
                    TraceEvent::RequestSubmitted {
                        request_id: 1,
                        workload_id: 7,
                    },
                ),
                (
                    10,
                    2,
                    TraceEvent::ExecStart {
                        core: 0,
                        lambda_id: 0,
                        request_id: 1,
                        tenant_id: 0,
                    },
                ),
                (
                    20,
                    2,
                    TraceEvent::MemCharge {
                        core: 0,
                        lambda_id: 0,
                        request_id: 1,
                        level: "CTM",
                        latency_cycles: 40,
                        scalar: 2,
                        bulk_ops: 1,
                        bulk_bytes: 64,
                        cycles: 2 * (1 + 5) + 40 + 8,
                        owner_tenant: 0,
                    },
                ),
                (
                    20,
                    2,
                    TraceEvent::ExecFinish {
                        core: 0,
                        lambda_id: 0,
                        request_id: 1,
                        total_cycles: 100 + 60,
                        overhead_cycles: 60,
                        instr_cycles: 40,
                    },
                ),
                (
                    30,
                    1,
                    TraceEvent::RequestCompleted {
                        request_id: 1,
                        workload_id: 7,
                        latency_ns: 30,
                        failed: false,
                    },
                ),
            ],
        );
        c.on_finish(SimTime::from_nanos(30));
        c.assert_clean();
        assert_eq!(c.request_counts(), (1, 1, 0));
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn double_completion_is_caught() {
        let mut c = InvariantChecker::collecting();
        let done = TraceEvent::RequestCompleted {
            request_id: 5,
            workload_id: 0,
            latency_ns: 1,
            failed: false,
        };
        feed(
            &mut c,
            &[
                (
                    0,
                    1,
                    TraceEvent::RequestSubmitted {
                        request_id: 5,
                        workload_id: 0,
                    },
                ),
                (1, 1, done.clone()),
                (2, 1, done),
            ],
        );
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("without an outstanding"));
    }

    #[test]
    fn clock_regression_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    100,
                    1,
                    TraceEvent::Mark {
                        label: "a",
                        a: 0,
                        b: 0,
                    },
                ),
                (
                    90,
                    1,
                    TraceEvent::Mark {
                        label: "b",
                        a: 0,
                        b: 0,
                    },
                ),
            ],
        );
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("clock went backwards"));
    }

    #[test]
    fn core_interleaving_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    3,
                    TraceEvent::ExecStart {
                        core: 4,
                        lambda_id: 0,
                        request_id: 1,
                        tenant_id: 0,
                    },
                ),
                (
                    5,
                    3,
                    TraceEvent::ExecStart {
                        core: 4,
                        lambda_id: 1,
                        request_id: 2,
                        tenant_id: 0,
                    },
                ),
            ],
        );
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("run-to-completion"));
    }

    #[test]
    fn suspension_keeps_core_held_without_violation() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    3,
                    TraceEvent::ExecStart {
                        core: 1,
                        lambda_id: 0,
                        request_id: 1,
                        tenant_id: 0,
                    },
                ),
                (
                    1,
                    3,
                    TraceEvent::ExecSuspend {
                        core: 1,
                        lambda_id: 0,
                        request_id: 1,
                    },
                ),
                (
                    2,
                    3,
                    TraceEvent::ExecResume {
                        core: 1,
                        lambda_id: 0,
                        request_id: 1,
                    },
                ),
                (
                    3,
                    3,
                    TraceEvent::ExecFinish {
                        core: 1,
                        lambda_id: 0,
                        request_id: 1,
                        total_cycles: 0,
                        overhead_cycles: 0,
                        instr_cycles: 0,
                    },
                ),
                // Core is free again: a new start is legal.
                (
                    4,
                    3,
                    TraceEvent::ExecStart {
                        core: 1,
                        lambda_id: 2,
                        request_id: 9,
                        tenant_id: 0,
                    },
                ),
            ],
        );
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    #[test]
    fn bad_memory_charge_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    3,
                    TraceEvent::ExecStart {
                        core: 0,
                        lambda_id: 0,
                        request_id: 1,
                        tenant_id: 0,
                    },
                ),
                (
                    1,
                    3,
                    TraceEvent::MemCharge {
                        core: 0,
                        lambda_id: 0,
                        request_id: 1,
                        level: "EMEM",
                        latency_cycles: 150,
                        scalar: 1,
                        bulk_ops: 0,
                        bulk_bytes: 0,
                        cycles: 7, // model says 1 + ceil(150/8) = 20
                        owner_tenant: 0,
                    },
                ),
            ],
        );
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("memory cost model mismatch"));
    }

    #[test]
    fn cost_decomposition_mismatch_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    3,
                    TraceEvent::ExecStart {
                        core: 0,
                        lambda_id: 0,
                        request_id: 1,
                        tenant_id: 0,
                    },
                ),
                (
                    1,
                    3,
                    TraceEvent::ExecFinish {
                        core: 0,
                        lambda_id: 0,
                        request_id: 1,
                        total_cycles: 500,
                        overhead_cycles: 100,
                        instr_cycles: 100, // memory sum is 0, so expect 200
                    },
                ),
            ],
        );
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("cost consistency"));
    }

    #[test]
    fn program_install_exempts_in_flight_jobs() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    3,
                    TraceEvent::ExecStart {
                        core: 0,
                        lambda_id: 0,
                        request_id: 1,
                        tenant_id: 0,
                    },
                ),
                (1, 3, TraceEvent::ProgramInstall {}),
                (
                    2,
                    3,
                    TraceEvent::ExecFinish {
                        core: 0,
                        lambda_id: 0,
                        request_id: 1,
                        total_cycles: 999, // inconsistent, but exempt
                        overhead_cycles: 0,
                        instr_cycles: 0,
                    },
                ),
            ],
        );
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    #[test]
    fn crash_resets_component_state() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    3,
                    TraceEvent::ExecStart {
                        core: 0,
                        lambda_id: 0,
                        request_id: 1,
                        tenant_id: 0,
                    },
                ),
                (
                    1,
                    3,
                    TraceEvent::Fault {
                        kind: "crash",
                        detail: 1,
                    },
                ),
                // After the crash the core is free; a fresh start is legal.
                (
                    2,
                    3,
                    TraceEvent::ExecStart {
                        core: 0,
                        lambda_id: 1,
                        request_id: 2,
                        tenant_id: 0,
                    },
                ),
            ],
        );
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    #[test]
    fn wfq_fair_interleaving_passes() {
        let mut c = InvariantChecker::collecting();
        let mut events = Vec::new();
        // Two lambdas, weights 2:1, continuously backlogged.
        for i in 0..64u64 {
            events.push((
                i,
                3usize,
                TraceEvent::WfqEnqueue {
                    lambda_id: 0,
                    weight_milli: 2000,
                    depth: i + 1,
                    tenant_id: 0,
                    tenant_weight_milli: 1000,
                },
            ));
            events.push((
                i,
                3,
                TraceEvent::WfqEnqueue {
                    lambda_id: 1,
                    weight_milli: 1000,
                    depth: i + 1,
                    tenant_id: 0,
                    tenant_weight_milli: 1000,
                },
            ));
        }
        // Serve in the WRR pattern 0,0,1 repeatedly; backlogs stay > 0.
        let mut d0 = 64u64;
        let mut d1 = 64u64;
        for i in 0..45u64 {
            let (l, w, depth) = if i % 3 == 2 {
                d1 -= 1;
                (1u32, 1000, d1)
            } else {
                d0 -= 1;
                (0u32, 2000, d0)
            };
            events.push((
                100 + i,
                3,
                TraceEvent::WfqDequeue {
                    lambda_id: l,
                    weight_milli: w,
                    depth,
                    tenant_id: 0,
                    tenant_weight_milli: 1000,
                },
            ));
        }
        feed(&mut c, &events);
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    #[test]
    fn wfq_starvation_is_caught() {
        let mut c = InvariantChecker::collecting();
        let mut events = vec![
            (
                0,
                3usize,
                TraceEvent::WfqEnqueue {
                    lambda_id: 0,
                    weight_milli: 1000,
                    depth: 600,
                    tenant_id: 0,
                    tenant_weight_milli: 1000,
                },
            ),
            (
                0,
                3,
                TraceEvent::WfqEnqueue {
                    lambda_id: 1,
                    weight_milli: 1000,
                    depth: 600,
                    tenant_id: 0,
                    tenant_weight_milli: 1000,
                },
            ),
        ];
        // Serve only lambda 0, hundreds of times, while lambda 1 waits.
        for i in 0..600u64 {
            events.push((
                1 + i,
                3,
                TraceEvent::WfqDequeue {
                    lambda_id: 0,
                    weight_milli: 1000,
                    depth: 600 - 1 - i,
                    tenant_id: 0,
                    tenant_weight_milli: 1000,
                },
            ));
        }
        feed(&mut c, &events);
        assert!(
            c.violations().iter().any(|v| v.contains("starvation")),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn conservation_checked_at_finish() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[(
                0,
                1,
                TraceEvent::RequestSubmitted {
                    request_id: 1,
                    workload_id: 0,
                },
            )],
        );
        c.on_finish(SimTime::from_nanos(5));
        // One submitted, one in flight: conserved.
        c.assert_clean();
        assert_eq!(c.in_flight(), 1);
    }

    fn place(workload_id: u32, worker: u32, target: &'static str, instr: u64) -> TraceEvent {
        TraceEvent::Place {
            workload_id,
            worker,
            target,
            instr_words: instr,
            mem_bytes: 0,
        }
    }

    #[test]
    fn make_before_break_migration_passes() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    1,
                    TraceEvent::PlacementCapacity {
                        worker: 0,
                        instr_words: 1000,
                        mem_bytes: 1 << 20,
                    },
                ),
                (1, 1, place(7, 0, "host", 100)),
                (
                    10,
                    1,
                    TraceEvent::MigrateStart {
                        workload_id: 7,
                        from_worker: 0,
                        from_target: "host",
                        to_worker: 0,
                        to_target: "nic",
                    },
                ),
                // New placement goes live before the old one is torn down.
                (11, 1, place(7, 0, "nic", 100)),
                (
                    20,
                    1,
                    TraceEvent::Unplace {
                        workload_id: 7,
                        worker: 0,
                        target: "host",
                    },
                ),
                (
                    21,
                    1,
                    TraceEvent::MigrateDone {
                        workload_id: 7,
                        from_worker: 0,
                        from_target: "host",
                        to_worker: 0,
                        to_target: "nic",
                    },
                ),
            ],
        );
        c.on_finish(SimTime::from_nanos(30));
        c.assert_clean();
    }

    #[test]
    fn losing_last_placement_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (0, 1, place(3, 0, "nic", 50)),
                (
                    1,
                    1,
                    TraceEvent::Unplace {
                        workload_id: 3,
                        worker: 0,
                        target: "nic",
                    },
                ),
            ],
        );
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("lost its last live placement"));
    }

    #[test]
    fn capacity_overflow_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    1,
                    TraceEvent::PlacementCapacity {
                        worker: 2,
                        instr_words: 100,
                        mem_bytes: 1024,
                    },
                ),
                (1, 1, place(1, 2, "nic", 60)),
                (2, 1, place(2, 2, "nic", 60)), // 120 > 100 words
            ],
        );
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("exceeds instruction-store/memory capacity"));
    }

    #[test]
    fn host_placements_do_not_count_against_nic_capacity() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    1,
                    TraceEvent::PlacementCapacity {
                        worker: 0,
                        instr_words: 100,
                        mem_bytes: 1024,
                    },
                ),
                (1, 1, place(1, 0, "nic", 90)),
                (2, 1, place(2, 0, "host", 5000)), // huge, but host-side
            ],
        );
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    #[test]
    fn duplicate_place_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (0, 1, place(4, 1, "nic", 10)),
                (1, 1, place(4, 1, "nic", 10)),
            ],
        );
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("placed twice"));
    }

    #[test]
    fn migrate_done_without_start_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[(
                0,
                1,
                TraceEvent::MigrateDone {
                    workload_id: 9,
                    from_worker: 0,
                    from_target: "nic",
                    to_worker: 1,
                    to_target: "host",
                },
            )],
        );
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("without a matching migrate_start"));
    }

    #[test]
    fn placement_lost_by_end_of_run_is_caught() {
        let mut c = InvariantChecker::collecting();
        // Place on two targets, then tear down both (the second Unplace
        // already violates make-before-break; on_finish adds the
        // end-of-run conservation violation on top).
        feed(
            &mut c,
            &[
                (0, 1, place(5, 0, "nic", 10)),
                (1, 1, place(5, 1, "nic", 10)),
                (
                    2,
                    1,
                    TraceEvent::Unplace {
                        workload_id: 5,
                        worker: 0,
                        target: "nic",
                    },
                ),
                (
                    3,
                    1,
                    TraceEvent::Unplace {
                        workload_id: 5,
                        worker: 1,
                        target: "nic",
                    },
                ),
            ],
        );
        c.on_finish(SimTime::from_nanos(10));
        assert!(
            c.violations()
                .iter()
                .any(|v| v.contains("placement conservation violated at end of run")),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn in_flight_migration_at_finish_is_not_flagged() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (0, 1, place(6, 0, "host", 10)),
                (
                    1,
                    1,
                    TraceEvent::MigrateStart {
                        workload_id: 6,
                        from_worker: 0,
                        from_target: "host",
                        to_worker: 0,
                        to_target: "nic",
                    },
                ),
                (2, 1, place(6, 0, "nic", 10)),
                // Run cut off mid-migration: no Unplace, no MigrateDone.
            ],
        );
        c.on_finish(SimTime::from_nanos(10));
        c.assert_clean();
    }

    #[test]
    fn fenced_component_execution_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::WorkerFenced {
                        worker: 0,
                        component: 4,
                        epoch: 3,
                    },
                ),
                // The fenced component (src 4) starts a job: split-brain.
                (
                    5,
                    4,
                    TraceEvent::ExecStart {
                        core: 0,
                        lambda_id: 1,
                        request_id: 7,
                        tenant_id: 0,
                    },
                ),
            ],
        );
        assert_eq!(c.violations().len(), 1, "{:?}", c.violations());
        assert!(c.violations()[0].contains("stale-epoch execution"));
    }

    #[test]
    fn rejoin_lifts_the_fence() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::WorkerFenced {
                        worker: 0,
                        component: 4,
                        epoch: 3,
                    },
                ),
                (
                    5,
                    9,
                    TraceEvent::WorkerRejoin {
                        worker: 0,
                        component: 4,
                        epoch: 4,
                    },
                ),
                (
                    6,
                    4,
                    TraceEvent::ExecStart {
                        core: 0,
                        lambda_id: 1,
                        request_id: 7,
                        tenant_id: 0,
                    },
                ),
            ],
        );
        // The ExecStart half-opens a run-to-completion span; only the
        // fencing rules are under test here.
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    #[test]
    fn epoch_regression_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::LeaseGrant {
                        worker: 2,
                        epoch: 5,
                        until_ns: 100,
                    },
                ),
                (
                    10,
                    9,
                    TraceEvent::LeaseGrant {
                        worker: 2,
                        epoch: 4,
                        until_ns: 200,
                    },
                ),
            ],
        );
        assert_eq!(c.violations().len(), 1, "{:?}", c.violations());
        assert!(c.violations()[0].contains("fencing token regressed"));
    }

    #[test]
    fn rejoin_must_bump_past_fenced_epoch() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::WorkerFenced {
                        worker: 1,
                        component: 5,
                        epoch: 2,
                    },
                ),
                (
                    5,
                    9,
                    TraceEvent::WorkerRejoin {
                        worker: 1,
                        component: 5,
                        epoch: 2,
                    },
                ),
            ],
        );
        assert_eq!(c.violations().len(), 1, "{:?}", c.violations());
        assert!(c.violations()[0].contains("without bumping"));
    }

    #[test]
    fn rejoin_without_fence_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[(
                0,
                9,
                TraceEvent::WorkerRejoin {
                    worker: 1,
                    component: 5,
                    epoch: 2,
                },
            )],
        );
        assert_eq!(c.violations().len(), 1, "{:?}", c.violations());
        assert!(c.violations()[0].contains("without a preceding fence"));
    }

    #[test]
    fn rejecting_a_fresher_token_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[(
                0,
                4,
                TraceEvent::FencedReject {
                    request_id: 11,
                    workload_id: 1,
                    hdr_epoch: 5,
                    worker_epoch: 3,
                },
            )],
        );
        assert_eq!(c.violations().len(), 1, "{:?}", c.violations());
        assert!(c.violations()[0].contains("fence-rejected"));
        // Equal-epoch rejects (lapsed lease) are legitimate.
        let mut ok = InvariantChecker::collecting();
        feed(
            &mut ok,
            &[(
                0,
                4,
                TraceEvent::FencedReject {
                    request_id: 12,
                    workload_id: 1,
                    hdr_epoch: 3,
                    worker_epoch: 3,
                },
            )],
        );
        assert!(ok.violations().is_empty(), "{:?}", ok.violations());
    }

    #[test]
    fn dropping_a_reply_above_the_floor_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[(
                0,
                1,
                TraceEvent::StaleReplyDrop {
                    request_id: 9,
                    reply_epoch: 4,
                    floor_epoch: 4,
                },
            )],
        );
        assert_eq!(c.violations().len(), 1, "{:?}", c.violations());
        assert!(c.violations()[0].contains("despite meeting the fence floor"));
    }

    #[test]
    fn snapshot_seq_regression_and_invented_restore_are_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::SnapshotTaken {
                        seq: 2,
                        workers: 4,
                        placements: 8,
                    },
                ),
                (
                    5,
                    9,
                    TraceEvent::SnapshotTaken {
                        seq: 2,
                        workers: 4,
                        placements: 8,
                    },
                ),
                (
                    10,
                    9,
                    TraceEvent::SnapshotRestored {
                        seq: 3,
                        reconciled: 0,
                    },
                ),
            ],
        );
        assert_eq!(c.violations().len(), 2, "{:?}", c.violations());
        assert!(c.violations()[0].contains("snapshot seq went backwards"));
        assert!(c.violations()[1].contains("never taken"));
    }

    #[test]
    fn restore_of_taken_snapshot_passes() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::SnapshotTaken {
                        seq: 1,
                        workers: 4,
                        placements: 8,
                    },
                ),
                (
                    10,
                    9,
                    TraceEvent::SnapshotRestored {
                        seq: 1,
                        reconciled: 2,
                    },
                ),
            ],
        );
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    #[test]
    fn panicking_mode_panics() {
        let mut c = InvariantChecker::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.on_record(&rec(
                0,
                0,
                1,
                TraceEvent::RequestCompleted {
                    request_id: 3,
                    workload_id: 0,
                    latency_ns: 0,
                    failed: false,
                },
            ));
        }));
        assert!(result.is_err());
    }

    // ---- Invariant 10: linearizability -------------------------------

    fn kv_invoke(request_id: u64, key: u64, write: bool, value: u64) -> TraceEvent {
        TraceEvent::KvInvoke {
            request_id,
            key,
            write,
            value,
        }
    }

    fn kv_response(request_id: u64, ok: bool, found: bool, value: u64) -> TraceEvent {
        TraceEvent::KvResponse {
            request_id,
            ok,
            found,
            value,
        }
    }

    /// The self-test the satellite demands: a recorded history with a
    /// seeded stale read (two acknowledged sequential writes, then a
    /// read returning the overwritten value) must trip the rule — a
    /// checker that silently passes this history is broken.
    #[test]
    fn stale_read_after_two_writes_is_flagged() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (0, 1, kv_invoke(1, 5, true, 10)),
                (1, 1, kv_response(1, true, true, 10)),
                (2, 1, kv_invoke(2, 5, true, 20)),
                (3, 1, kv_response(2, true, true, 20)),
                (4, 1, kv_invoke(3, 5, false, 0)),
                (5, 1, kv_response(3, true, true, 10)),
            ],
        );
        assert_eq!(c.violations().len(), 1, "{:?}", c.violations());
        assert!(
            c.violations()[0].contains("non-linearizable"),
            "{:?}",
            c.violations()
        );
        assert_eq!(c.kv_ops(), 3);
    }

    #[test]
    fn sequential_writes_and_reads_linearize_cleanly() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (0, 1, kv_invoke(1, 5, false, 0)),
                (1, 1, kv_response(1, true, false, 0)), // read of unwritten key: absent
                (2, 1, kv_invoke(2, 5, true, 10)),
                (3, 1, kv_response(2, true, true, 10)),
                (4, 1, kv_invoke(3, 5, false, 0)),
                (5, 1, kv_response(3, true, true, 10)),
                (6, 1, kv_invoke(4, 6, false, 0)), // other key independent
                (7, 1, kv_response(4, true, false, 0)),
            ],
        );
        c.on_finish(SimTime::from_nanos(10));
        c.assert_clean();
        assert_eq!(c.kv_ops(), 4);
    }

    /// A read concurrent with a write may return either the old or the
    /// new value — both interleavings are witness orderings.
    #[test]
    fn concurrent_read_may_see_either_value() {
        for observed in [(true, 10u64), (false, 0)] {
            let mut c = InvariantChecker::collecting();
            feed(
                &mut c,
                &[
                    (0, 1, kv_invoke(1, 5, true, 10)), // write in flight...
                    (1, 1, kv_invoke(2, 5, false, 0)), // ...read overlaps it
                    (2, 1, kv_response(2, true, observed.0, observed.1)),
                    (3, 1, kv_response(1, true, true, 10)),
                ],
            );
            c.assert_clean();
        }
    }

    /// A failed (ghost) write may take effect or not: a later read may
    /// return it once, but after an acknowledged overwrite the ghost
    /// value must not reappear.
    #[test]
    fn ghost_write_value_is_readable_but_cannot_resurrect() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (0, 1, kv_invoke(1, 5, true, 10)),
                (1, 1, kv_response(1, false, true, 0)), // gateway gave up: ghost
                (2, 1, kv_invoke(2, 5, false, 0)),
                (3, 1, kv_response(2, true, true, 10)), // ghost applied after all
            ],
        );
        c.assert_clean();
        feed(
            &mut c,
            &[
                (4, 1, kv_invoke(3, 5, true, 20)),
                (5, 1, kv_response(3, true, true, 20)),
                (6, 1, kv_invoke(4, 5, false, 0)),
                (7, 1, kv_response(4, true, true, 10)), // stale resurrection
            ],
        );
        assert_eq!(c.violations().len(), 1, "{:?}", c.violations());
    }

    #[test]
    fn read_of_never_written_value_is_flagged() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (0, 1, kv_invoke(1, 5, true, 10)),
                (1, 1, kv_response(1, true, true, 10)),
                (2, 1, kv_invoke(2, 5, false, 0)),
                (3, 1, kv_response(2, true, true, 99)),
            ],
        );
        assert_eq!(c.violations().len(), 1, "{:?}", c.violations());
    }

    /// Failed reads have no effect; quiescence compaction keeps the
    /// verdicts identical across the GC boundary.
    #[test]
    fn compaction_preserves_final_values() {
        let mut c = InvariantChecker::collecting();
        // Sequential history; every response quiesces the key, so the
        // window compacts down to {Some(v)} each round.
        let mut evs = Vec::new();
        for i in 0..200u64 {
            evs.push((2 * i, 1usize, kv_invoke(i, 7, true, i)));
            evs.push((2 * i + 1, 1usize, kv_response(i, true, true, i)));
        }
        evs.push((400, 1, kv_invoke(200, 7, false, 0)));
        evs.push((401, 1, kv_response(200, true, true, 199)));
        // A stale read far across compactions must still be caught.
        evs.push((402, 1, kv_invoke(201, 7, false, 0)));
        evs.push((403, 1, kv_response(201, true, true, 0)));
        feed(&mut c, &evs);
        assert_eq!(c.violations().len(), 1, "{:?}", c.violations());
        assert_eq!(c.kv_forced_gc(), 0);
    }

    // ---- Invariants 11–13: tenant isolation --------------------------

    /// Seeded self-test for invariant 11: a request stamped with one
    /// tenant executing under a workload registered to another must be
    /// flagged (the violating history is synthetic — a correct NIC can
    /// never produce it, which is exactly what the rule guards).
    #[test]
    fn cross_tenant_execution_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::TenantAssign {
                        tenant_id: 1,
                        workload_id: 7,
                    },
                ),
                (
                    1,
                    1,
                    TraceEvent::RequestSubmitted {
                        request_id: 42,
                        workload_id: 7,
                    },
                ),
                // The worker runs the request as tenant 2: isolation hole.
                (
                    2,
                    3,
                    TraceEvent::ExecStart {
                        core: 0,
                        lambda_id: 0,
                        request_id: 42,
                        tenant_id: 2,
                    },
                ),
            ],
        );
        assert_eq!(c.violations().len(), 1, "{:?}", c.violations());
        assert!(c.violations()[0].contains("cross-tenant execution"));
    }

    #[test]
    fn matching_tenant_execution_passes() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::TenantAssign {
                        tenant_id: 1,
                        workload_id: 7,
                    },
                ),
                (
                    1,
                    1,
                    TraceEvent::RequestSubmitted {
                        request_id: 42,
                        workload_id: 7,
                    },
                ),
                (
                    2,
                    3,
                    TraceEvent::ExecStart {
                        core: 0,
                        lambda_id: 0,
                        request_id: 42,
                        tenant_id: 1,
                    },
                ),
            ],
        );
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    /// Seeded self-test for invariant 12: a job charged for another
    /// tenant's memory object must be flagged.
    #[test]
    fn cross_tenant_memory_charge_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    3,
                    TraceEvent::ExecStart {
                        core: 0,
                        lambda_id: 0,
                        request_id: 1,
                        tenant_id: 1,
                    },
                ),
                (
                    1,
                    3,
                    TraceEvent::MemCharge {
                        core: 0,
                        lambda_id: 0,
                        request_id: 1,
                        level: "EMEM",
                        latency_cycles: 150,
                        scalar: 1,
                        bulk_ops: 0,
                        bulk_bytes: 0,
                        cycles: 1 + 19, // model-consistent: only the owner is wrong
                        owner_tenant: 2,
                    },
                ),
            ],
        );
        assert_eq!(c.violations().len(), 1, "{:?}", c.violations());
        assert!(c.violations()[0].contains("cross-tenant memory access"));
    }

    /// Seeded self-test for invariant 13: a tenant kept backlogged while
    /// another monopolizes the service slots must trip the tenant-tier
    /// starvation bound even when each lambda, viewed alone, is served
    /// in proportion.
    #[test]
    fn tenant_tier_starvation_is_caught() {
        let mut c = InvariantChecker::collecting();
        let mut events = vec![
            (
                0,
                3usize,
                TraceEvent::WfqEnqueue {
                    lambda_id: 0,
                    weight_milli: 1000,
                    depth: 600,
                    tenant_id: 1,
                    tenant_weight_milli: 1000,
                },
            ),
            (
                0,
                3,
                TraceEvent::WfqEnqueue {
                    lambda_id: 1,
                    weight_milli: 1000,
                    depth: 600,
                    tenant_id: 2,
                    tenant_weight_milli: 1000,
                },
            ),
        ];
        // Serve only tenant 1's lambda while tenant 2 stays backlogged.
        for i in 0..600u64 {
            events.push((
                1 + i,
                3,
                TraceEvent::WfqDequeue {
                    lambda_id: 0,
                    weight_milli: 1000,
                    depth: 600 - 1 - i,
                    tenant_id: 1,
                    tenant_weight_milli: 1000,
                },
            ));
        }
        feed(&mut c, &events);
        assert!(
            c.violations()
                .iter()
                .any(|v| v.contains("starvation") && v.contains("tenant 2")),
            "{:?}",
            c.violations()
        );
    }

    /// Weight-proportional service across tenants passes the tenant
    /// tier: tenants at weights 2:1 served in the 2:1 WRR pattern.
    #[test]
    fn tenant_tier_fair_shares_pass() {
        let mut c = InvariantChecker::collecting();
        let mut events = Vec::new();
        // One lambda per tenant; both tiers weighted 2:1, both backlogged.
        for i in 0..64u64 {
            events.push((
                i,
                3usize,
                TraceEvent::WfqEnqueue {
                    lambda_id: 0,
                    weight_milli: 2000,
                    depth: i + 1,
                    tenant_id: 1,
                    tenant_weight_milli: 2000,
                },
            ));
            events.push((
                i,
                3,
                TraceEvent::WfqEnqueue {
                    lambda_id: 1,
                    weight_milli: 1000,
                    depth: i + 1,
                    tenant_id: 2,
                    tenant_weight_milli: 1000,
                },
            ));
        }
        let mut d0 = 64u64;
        let mut d1 = 64u64;
        for i in 0..45u64 {
            let (l, t, w, depth) = if i % 3 == 2 {
                d1 -= 1;
                (1u32, 2u32, 1000, d1)
            } else {
                d0 -= 1;
                (0u32, 1u32, 2000, d0)
            };
            events.push((
                100 + i,
                3,
                TraceEvent::WfqDequeue {
                    lambda_id: l,
                    weight_milli: w,
                    depth,
                    tenant_id: t,
                    tenant_weight_milli: w,
                },
            ));
        }
        feed(&mut c, &events);
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    /// Unbalanced service across equal-weight tenants trips the
    /// tenant-tier fairness bound (shares must converge to weights).
    #[test]
    fn tenant_tier_unfair_shares_are_caught() {
        let mut c = InvariantChecker::collecting();
        let mut events = Vec::new();
        for i in 0..200u64 {
            events.push((
                i,
                3usize,
                TraceEvent::WfqEnqueue {
                    lambda_id: 0,
                    weight_milli: 1000,
                    depth: i + 1,
                    tenant_id: 1,
                    tenant_weight_milli: 1000,
                },
            ));
            events.push((
                i,
                3,
                TraceEvent::WfqEnqueue {
                    lambda_id: 1,
                    weight_milli: 1000,
                    depth: i + 1,
                    tenant_id: 2,
                    tenant_weight_milli: 1000,
                },
            ));
        }
        // Equal weights, but tenant 1 gets 7 of every 8 service slots.
        let mut d0 = 200u64;
        let mut d1 = 200u64;
        for i in 0..64u64 {
            let (l, t, depth) = if i % 8 == 7 {
                d1 -= 1;
                (1u32, 2u32, d1)
            } else {
                d0 -= 1;
                (0u32, 1u32, d0)
            };
            events.push((
                300 + i,
                3,
                TraceEvent::WfqDequeue {
                    lambda_id: l,
                    weight_milli: 1000,
                    depth,
                    tenant_id: t,
                    tenant_weight_milli: 1000,
                },
            ));
        }
        feed(&mut c, &events);
        assert!(
            c.violations()
                .iter()
                .any(|v| v.contains("normalized tenant service")),
            "{:?}",
            c.violations()
        );
    }

    // ---- invariant 14: gateway-tier exactly-once and epoch rules ----

    #[test]
    fn clean_tier_handoff_passes() {
        let gw1_id = 1u64 << 48;
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 1,
                        shards: 2,
                    },
                ),
                (
                    5,
                    9,
                    TraceEvent::GwClientSubmit {
                        uid: 1,
                        client_id: 77,
                        gateway: 0,
                    },
                ),
                (
                    6,
                    2,
                    TraceEvent::RequestSubmitted {
                        request_id: 1,
                        workload_id: 0,
                    },
                ),
                // Planned drain: gateway 0 hands its in-flight request to
                // gateway 1, which re-submits under its own id space.
                (
                    10,
                    2,
                    TraceEvent::GwHandoff {
                        from_gateway: 0,
                        to_gateway: 1,
                        request_id: 1,
                    },
                ),
                (
                    10,
                    9,
                    TraceEvent::GwDeposed {
                        gateway: 0,
                        epoch: 1,
                    },
                ),
                (
                    11,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 2,
                        shards: 1,
                    },
                ),
                (
                    12,
                    3,
                    TraceEvent::RequestSubmitted {
                        request_id: gw1_id + 1,
                        workload_id: 0,
                    },
                ),
                (
                    20,
                    3,
                    TraceEvent::RequestCompleted {
                        request_id: gw1_id + 1,
                        workload_id: 0,
                        latency_ns: 8,
                        failed: false,
                    },
                ),
                (
                    21,
                    9,
                    TraceEvent::GwClientComplete {
                        uid: 1,
                        gateway: 1,
                        failed: false,
                    },
                ),
                (
                    30,
                    9,
                    TraceEvent::GwRejoin {
                        gateway: 0,
                        epoch: 3,
                    },
                ),
                (
                    31,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 3,
                        shards: 2,
                    },
                ),
            ],
        );
        c.on_finish(SimTime::from_nanos(40));
        c.assert_clean();
        assert_eq!(c.handed_off(), 1);
        assert_eq!(c.clients_delivered(), 1);
        assert_eq!(c.tier_epoch(), 3);
    }

    #[test]
    fn double_client_completion_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 1,
                        shards: 2,
                    },
                ),
                (
                    1,
                    9,
                    TraceEvent::GwClientSubmit {
                        uid: 4,
                        client_id: 9,
                        gateway: 0,
                    },
                ),
                (
                    5,
                    9,
                    TraceEvent::GwClientComplete {
                        uid: 4,
                        gateway: 0,
                        failed: false,
                    },
                ),
                // The old owner's late completion leaks through: the
                // router failed to suppress the duplicate.
                (
                    9,
                    9,
                    TraceEvent::GwClientComplete {
                        uid: 4,
                        gateway: 1,
                        failed: false,
                    },
                ),
            ],
        );
        assert!(
            c.violations().iter().any(|v| v.contains("exactly-once")),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn shard_map_epoch_regression_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 5,
                        shards: 3,
                    },
                ),
                (
                    9,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 5,
                        shards: 2,
                    },
                ),
            ],
        );
        assert!(
            c.violations()
                .iter()
                .any(|v| v.contains("shard-map epoch regressed")),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn tier_snapshot_restore_cycle_is_clean() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 1,
                        shards: 2,
                    },
                ),
                (
                    1,
                    9,
                    TraceEvent::TierSnapshot {
                        seq: 1,
                        epoch: 1,
                        shards: 2,
                        handed_off: 0,
                    },
                ),
                (
                    5,
                    9,
                    TraceEvent::TierSnapshot {
                        seq: 2,
                        epoch: 1,
                        shards: 2,
                        handed_off: 0,
                    },
                ),
                (
                    9,
                    9,
                    TraceEvent::TierRestore {
                        seq: 2,
                        epoch: 1,
                        reconciled: 2,
                        handed_off: 0,
                    },
                ),
                // A cold rebuild reports seq 0 and is always legal.
                (
                    12,
                    9,
                    TraceEvent::TierRestore {
                        seq: 0,
                        epoch: 1,
                        reconciled: 2,
                        handed_off: 0,
                    },
                ),
            ],
        );
        c.on_finish(SimTime::from_nanos(20));
        c.assert_clean();
    }

    #[test]
    fn tier_snapshot_seq_regression_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 1,
                        shards: 2,
                    },
                ),
                (
                    1,
                    9,
                    TraceEvent::TierSnapshot {
                        seq: 3,
                        epoch: 1,
                        shards: 2,
                        handed_off: 0,
                    },
                ),
                (
                    5,
                    9,
                    TraceEvent::TierSnapshot {
                        seq: 2,
                        epoch: 1,
                        shards: 2,
                        handed_off: 0,
                    },
                ),
            ],
        );
        assert!(
            c.violations()
                .iter()
                .any(|v| v.contains("tier snapshot seq went backwards")),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn tier_snapshot_of_unpublished_epoch_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 1,
                        shards: 2,
                    },
                ),
                // Claims an epoch the controller never published.
                (
                    1,
                    9,
                    TraceEvent::TierSnapshot {
                        seq: 1,
                        epoch: 4,
                        shards: 2,
                        handed_off: 0,
                    },
                ),
            ],
        );
        assert!(
            c.violations()
                .iter()
                .any(|v| v.contains("above the published map epoch")),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn tier_snapshot_overstating_handoffs_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 1,
                        shards: 2,
                    },
                ),
                (
                    1,
                    9,
                    TraceEvent::TierSnapshot {
                        seq: 1,
                        epoch: 1,
                        shards: 2,
                        handed_off: 7,
                    },
                ),
            ],
        );
        assert!(
            c.violations()
                .iter()
                .any(|v| v.contains("handoffs but only")),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn tier_restore_from_untaken_snapshot_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 1,
                        shards: 2,
                    },
                ),
                (
                    1,
                    9,
                    TraceEvent::TierRestore {
                        seq: 5,
                        epoch: 1,
                        reconciled: 2,
                        handed_off: 0,
                    },
                ),
            ],
        );
        assert!(
            c.violations()
                .iter()
                .any(|v| v.contains("that was never taken")),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn tier_restore_epoch_regression_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 3,
                        shards: 2,
                    },
                ),
                (
                    1,
                    9,
                    TraceEvent::TierSnapshot {
                        seq: 1,
                        epoch: 3,
                        shards: 2,
                        handed_off: 0,
                    },
                ),
                // The restore reports an epoch below the published map:
                // the controller rolled the tier backwards.
                (
                    5,
                    9,
                    TraceEvent::TierRestore {
                        seq: 1,
                        epoch: 2,
                        reconciled: 2,
                        handed_off: 0,
                    },
                ),
            ],
        );
        assert!(
            c.violations()
                .iter()
                .any(|v| v.contains("regressed the map epoch")),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn deposed_gateway_acceptance_is_caught() {
        let gw2_id = 2u64 << 48;
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 1,
                        shards: 3,
                    },
                ),
                (
                    5,
                    9,
                    TraceEvent::GwDeposed {
                        gateway: 2,
                        epoch: 1,
                    },
                ),
                (
                    6,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 2,
                        shards: 2,
                    },
                ),
                // The deposed shard keeps serving: split-brain.
                (
                    8,
                    4,
                    TraceEvent::RequestSubmitted {
                        request_id: gw2_id + 7,
                        workload_id: 0,
                    },
                ),
            ],
        );
        assert!(
            c.violations()
                .iter()
                .any(|v| v.contains("deposed gateway 2")),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn rejoin_must_bump_past_deposed_epoch() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[
                (
                    0,
                    9,
                    TraceEvent::GwShardMap {
                        epoch: 3,
                        shards: 2,
                    },
                ),
                (
                    1,
                    9,
                    TraceEvent::GwDeposed {
                        gateway: 1,
                        epoch: 3,
                    },
                ),
                (
                    9,
                    9,
                    TraceEvent::GwRejoin {
                        gateway: 1,
                        epoch: 3,
                    },
                ),
            ],
        );
        assert!(
            c.violations()
                .iter()
                .any(|v| v.contains("without bumping past the deposed epoch")),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn handoff_of_unknown_request_is_caught() {
        let mut c = InvariantChecker::collecting();
        feed(
            &mut c,
            &[(
                3,
                2,
                TraceEvent::GwHandoff {
                    from_gateway: 0,
                    to_gateway: 1,
                    request_id: 99,
                },
            )],
        );
        assert!(
            c.violations().iter().any(|v| v.contains("not outstanding")),
            "{:?}",
            c.violations()
        );
    }
}
