//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns a set of [`Component`]s and a time-ordered event
//! queue. Each event delivers one [`AnyMessage`] to one component; handling
//! an event may schedule further events. Runs are fully deterministic given
//! the RNG seed: ties in delivery time are broken by scheduling order.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::message::{AnyMessage, Message};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceSink, Tracer};

/// Identifies a component registered with a [`Simulation`].
///
/// Ids are dense indices assigned in registration order, so they are stable
/// across runs of the same setup code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(usize);

impl ComponentId {
    /// Returns the raw index of this component.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index, for tests that fabricate trace
    /// records without a full [`Simulation`]. Real ids come from
    /// [`Simulation::add`].
    #[doc(hidden)]
    pub fn from_index_for_tests(index: usize) -> Self {
        ComponentId(index)
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cid#{}", self.0)
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cid#{}", self.0)
    }
}

/// An active entity in the simulation: a NIC, a host, a switch port, a load
/// generator, and so on.
///
/// Components receive messages through [`Component::handle`] and interact
/// with the world exclusively through the passed [`Ctx`].
pub trait Component: Any {
    /// Handles one message delivered at the current virtual time.
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage);

    /// A short human-readable name used in traces.
    fn name(&self) -> &str {
        "component"
    }
}

/// One scheduled delivery.
struct Scheduled {
    at: SimTime,
    seq: u64,
    dst: ComponentId,
    msg: AnyMessage,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The execution context handed to a component while it handles a message.
///
/// # Examples
///
/// ```
/// use lnic_sim::prelude::*;
///
/// #[derive(Debug)]
/// struct Tick;
///
/// struct Clock {
///     ticks: u32,
/// }
///
/// impl Component for Clock {
///     fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
///         self.ticks += 1;
///         if self.ticks < 3 {
///             ctx.send_self(SimDuration::from_micros(10), Tick);
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(42);
/// let clock = sim.add(Clock { ticks: 0 });
/// sim.post(clock, SimDuration::ZERO, Tick);
/// sim.run();
/// assert_eq!(sim.get::<Clock>(clock).unwrap().ticks, 3);
/// ```
pub struct Ctx<'a> {
    now: SimTime,
    self_id: ComponentId,
    queue: &'a mut BinaryHeap<Reverse<Scheduled>>,
    seq: &'a mut u64,
    rng: &'a mut SmallRng,
    stop: &'a mut bool,
    trace: Option<&'a mut Vec<(SimTime, String)>>,
    tracer: Option<&'a mut Tracer>,
}

impl<'a> Ctx<'a> {
    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the id of the component currently handling the message.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedules `msg` for delivery to `dst` after `delay`.
    pub fn send<M: Message>(&mut self, dst: ComponentId, delay: SimDuration, msg: M) {
        self.send_boxed(dst, delay, Box::new(msg));
    }

    /// Schedules an already-boxed message for delivery to `dst` after
    /// `delay`.
    pub fn send_boxed(&mut self, dst: ComponentId, delay: SimDuration, msg: AnyMessage) {
        let seq = *self.seq;
        *self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at: self.now + delay,
            seq,
            dst,
            msg,
        }));
    }

    /// Schedules `msg` back to the current component after `delay` (a timer).
    pub fn send_self<M: Message>(&mut self, delay: SimDuration, msg: M) {
        self.send(self.self_id, delay, msg);
    }

    /// Returns the simulation-wide deterministic random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Requests that the run loop stop after the current event.
    pub fn stop(&mut self) {
        *self.stop = true;
    }

    /// Records a trace line when tracing is enabled; a no-op otherwise.
    pub fn trace(&mut self, line: impl FnOnce() -> String) {
        let now = self.now;
        if let Some(buf) = self.trace.as_deref_mut() {
            buf.push((now, line()));
        }
    }

    /// Emits a structured [`TraceEvent`] when a tracer is attached; a no-op
    /// otherwise. The closure runs only when at least one sink is listening,
    /// so hot paths pay one branch when tracing is off.
    pub fn emit(&mut self, event: impl FnOnce() -> TraceEvent) {
        let (now, src) = (self.now, self.self_id);
        if let Some(tracer) = self.tracer.as_deref_mut() {
            tracer.record(now, src, event());
        }
    }
}

/// A deterministic discrete-event simulation.
///
/// See [`Ctx`] for a complete usage example.
pub struct Simulation {
    components: Vec<Option<Box<dyn Component>>>,
    names: Vec<String>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    now: SimTime,
    seq: u64,
    rng: SmallRng,
    processed: u64,
    trace: Option<Vec<(SimTime, String)>>,
    tracer: Option<Tracer>,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("components", &self.components.len())
            .field("pending_events", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl Simulation {
    /// Creates an empty simulation whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Simulation {
            components: Vec::new(),
            names: Vec::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: SmallRng::seed_from_u64(seed),
            processed: 0,
            trace: None,
            tracer: None,
        }
    }

    /// Registers a component and returns its id.
    pub fn add<C: Component>(&mut self, component: C) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.names.push(component.name().to_owned());
        self.components.push(Some(Box::new(component)));
        id
    }

    /// Enables or disables trace capture (see [`Ctx::trace`]).
    pub fn set_tracing(&mut self, on: bool) {
        if on && self.trace.is_none() {
            self.trace = Some(Vec::new());
        } else if !on {
            self.trace = None;
        }
    }

    /// Returns the captured trace lines, if tracing is enabled.
    pub fn trace_lines(&self) -> &[(SimTime, String)] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Attaches a structured-trace sink; components emit to it through
    /// [`Ctx::emit`]. Multiple sinks may be attached and each sees every
    /// record.
    pub fn add_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.get_or_insert_with(Tracer::new).add_sink(sink);
    }

    /// Borrows an attached sink by concrete type, if one is present.
    pub fn trace_sink<S: TraceSink>(&self) -> Option<&S> {
        self.tracer.as_ref()?.sink::<S>()
    }

    /// Mutably borrows an attached sink by concrete type, if one is present.
    pub fn trace_sink_mut<S: TraceSink>(&mut self) -> Option<&mut S> {
        self.tracer.as_mut()?.sink_mut::<S>()
    }

    /// Signals end-of-run to every attached sink (flush files, run final
    /// conservation checks). Idempotent per sink implementation; safe to
    /// call when no tracer is attached.
    pub fn finish_tracing(&mut self) {
        let now = self.now;
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.finish(now);
        }
    }

    /// Total structured trace records emitted so far.
    pub fn trace_records(&self) -> u64 {
        self.tracer.as_ref().map_or(0, Tracer::emitted)
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Returns the number of events still pending delivery.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules a message from outside any component (e.g. test or
    /// experiment setup code).
    pub fn post<M: Message>(&mut self, dst: ComponentId, delay: SimDuration, msg: M) {
        self.post_boxed(dst, delay, Box::new(msg));
    }

    /// Schedules an already-boxed message from outside any component.
    pub fn post_boxed(&mut self, dst: ComponentId, delay: SimDuration, msg: AnyMessage) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at: self.now + delay,
            seq,
            dst,
            msg,
        }));
    }

    /// Borrows a registered component, downcast to its concrete type.
    ///
    /// Returns `None` when `id` is out of range or the type does not match.
    pub fn get<C: Component>(&self, id: ComponentId) -> Option<&C> {
        let slot = self.components.get(id.0)?.as_deref()?;
        (slot as &dyn Any).downcast_ref::<C>()
    }

    /// Mutably borrows a registered component, downcast to its concrete type.
    pub fn get_mut<C: Component>(&mut self, id: ComponentId) -> Option<&mut C> {
        let slot = self.components.get_mut(id.0)?.as_deref_mut()?;
        (slot as &mut dyn Any).downcast_mut::<C>()
    }

    /// Delivers the next pending event, if any. Returns `false` when the
    /// queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if an event addresses an unknown component (a wiring bug).
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.processed += 1;

        let slot = self
            .components
            .get_mut(ev.dst.0)
            .unwrap_or_else(|| panic!("event addressed to unknown component {}", ev.dst));
        let mut component = slot.take().expect("component re-entered during dispatch");

        let mut stop = false;
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: ev.dst,
                queue: &mut self.queue,
                seq: &mut self.seq,
                rng: &mut self.rng,
                stop: &mut stop,
                trace: self.trace.as_mut(),
                tracer: self.tracer.as_mut(),
            };
            component.handle(&mut ctx, ev.msg);
        }
        self.components[ev.dst.0] = Some(component);
        !stop
    }

    /// Runs until the event queue drains or a component calls [`Ctx::stop`].
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until virtual time reaches `deadline` (events at exactly
    /// `deadline` are delivered), the queue drains, or a component stops the
    /// run.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            if !self.step() {
                return;
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Runs until the queue drains, panicking after `limit` events as a
    /// guard against livelock in tests.
    ///
    /// # Panics
    ///
    /// Panics when more than `limit` events are processed.
    pub fn run_with_limit(&mut self, limit: u64) {
        let start = self.processed;
        while self.step() {
            assert!(
                self.processed - start <= limit,
                "simulation exceeded {limit} events; possible livelock"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Ping(u32);

    /// Forwards each `Ping` to a peer after a fixed delay, recording arrival
    /// times.
    struct Relay {
        peer: Option<ComponentId>,
        delay: SimDuration,
        seen: Vec<(SimTime, u32)>,
    }

    impl Component for Relay {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
            let ping = msg.downcast::<Ping>().expect("relay only accepts Ping");
            self.seen.push((ctx.now(), ping.0));
            if let Some(peer) = self.peer {
                if ping.0 > 0 {
                    ctx.send(peer, self.delay, Ping(ping.0 - 1));
                }
            }
        }
    }

    fn relay(delay_ns: u64) -> Relay {
        Relay {
            peer: None,
            delay: SimDuration::from_nanos(delay_ns),
            seen: Vec::new(),
        }
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut sim = Simulation::new(1);
        let a = sim.add(relay(10));
        let b = sim.add(relay(5));
        sim.get_mut::<Relay>(a).unwrap().peer = Some(b);
        sim.get_mut::<Relay>(b).unwrap().peer = Some(a);

        sim.post(a, SimDuration::ZERO, Ping(4));
        sim.run();

        // a sees 4 (t=0) then 2 (t=15); b sees 3 (t=10) then 1 (t=25).
        let a_seen = &sim.get::<Relay>(a).unwrap().seen;
        let b_seen = &sim.get::<Relay>(b).unwrap().seen;
        assert_eq!(
            a_seen,
            &vec![
                (SimTime::from_nanos(0), 4),
                (SimTime::from_nanos(15), 2),
                (SimTime::from_nanos(30), 0)
            ]
        );
        assert_eq!(
            b_seen,
            &vec![(SimTime::from_nanos(10), 3), (SimTime::from_nanos(25), 1)]
        );
        assert_eq!(sim.now(), SimTime::from_nanos(30));
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        struct Collector {
            order: Vec<u32>,
        }
        impl Component for Collector {
            fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: AnyMessage) {
                self.order.push(msg.downcast::<Ping>().unwrap().0);
            }
        }
        let mut sim = Simulation::new(7);
        let c = sim.add(Collector { order: Vec::new() });
        for i in 0..10 {
            sim.post(c, SimDuration::from_nanos(100), Ping(i));
        }
        sim.run();
        assert_eq!(
            sim.get::<Collector>(c).unwrap().order,
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Simulation::new(1);
        let a = sim.add(relay(1_000));
        let b = sim.add(relay(1_000));
        sim.get_mut::<Relay>(a).unwrap().peer = Some(b);
        sim.get_mut::<Relay>(b).unwrap().peer = Some(a);
        sim.post(a, SimDuration::ZERO, Ping(100));

        sim.run_until(SimTime::from_nanos(3_500));
        assert_eq!(sim.now(), SimTime::from_nanos(3_500));
        // Events at t=0,1000,2000,3000 delivered; rest pending.
        assert_eq!(sim.events_processed(), 4);
        assert!(sim.events_pending() > 0);

        // Idle run_until advances the clock even with a far deadline.
        let mut idle = Simulation::new(1);
        idle.run_until(SimTime::from_nanos(42));
        assert_eq!(idle.now(), SimTime::from_nanos(42));
    }

    #[test]
    fn stop_halts_the_run() {
        struct Stopper;
        impl Component for Stopper {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
                ctx.stop();
            }
        }
        let mut sim = Simulation::new(1);
        let s = sim.add(Stopper);
        sim.post(s, SimDuration::ZERO, Ping(0));
        sim.post(s, SimDuration::from_nanos(5), Ping(1));
        sim.run();
        assert_eq!(sim.events_processed(), 1);
        assert_eq!(sim.events_pending(), 1);
    }

    #[test]
    fn identical_seeds_are_deterministic() {
        fn run_once(seed: u64) -> Vec<(SimTime, u32)> {
            use rand::Rng;
            struct Jitter {
                seen: Vec<(SimTime, u32)>,
            }
            impl Component for Jitter {
                fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
                    let p = msg.downcast::<Ping>().unwrap();
                    self.seen.push((ctx.now(), p.0));
                    if p.0 > 0 {
                        let jitter = ctx.rng().gen_range(1..100);
                        ctx.send_self(SimDuration::from_nanos(jitter), Ping(p.0 - 1));
                    }
                }
            }
            let mut sim = Simulation::new(seed);
            let j = sim.add(Jitter { seen: Vec::new() });
            sim.post(j, SimDuration::ZERO, Ping(20));
            sim.run();
            sim.get::<Jitter>(j).unwrap().seen.clone()
        }
        assert_eq!(run_once(99), run_once(99));
        assert_ne!(run_once(99), run_once(100));
    }

    #[test]
    fn get_rejects_wrong_type() {
        let mut sim = Simulation::new(1);
        let a = sim.add(relay(1));
        struct Other;
        impl Component for Other {
            fn handle(&mut self, _ctx: &mut Ctx<'_>, _msg: AnyMessage) {}
        }
        assert!(sim.get::<Relay>(a).is_some());
        assert!(sim.get::<Other>(a).is_none());
    }

    #[test]
    fn tracing_captures_lines() {
        struct Tracer;
        impl Component for Tracer {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
                ctx.trace(|| "handled".to_owned());
            }
        }
        let mut sim = Simulation::new(1);
        sim.set_tracing(true);
        let t = sim.add(Tracer);
        sim.post(t, SimDuration::from_nanos(3), Ping(0));
        sim.run();
        assert_eq!(
            sim.trace_lines(),
            &[(SimTime::from_nanos(3), "handled".to_owned())]
        );
    }

    #[test]
    fn run_with_limit_panics_on_livelock() {
        struct Loop;
        impl Component for Loop {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
                ctx.send_self(SimDuration::from_nanos(1), Ping(0));
            }
        }
        let mut sim = Simulation::new(1);
        let l = sim.add(Loop);
        sim.post(l, SimDuration::ZERO, Ping(0));
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run_with_limit(1_000)));
        assert!(result.is_err());
    }
}
