//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns a set of [`Component`]s and a time-ordered event
//! queue. Each event delivers one [`AnyMessage`] to one component; handling
//! an event may schedule further events. Runs are fully deterministic given
//! the RNG seed: ties in delivery time are broken by scheduling order.
//!
//! # Sharded parallel execution
//!
//! By default a simulation runs as a single serialized event loop. A
//! [`ShardPlan`] partitions the components into *shards* — per-rack or
//! per-worker islands — each with its own event heap, its own send-sequence
//! counter, and its own `SmallRng` stream derived from the master seed.
//! Shards advance together in conservative rounds (classic null-message-free
//! barrier PDES): every round processes the window `[T, T + lookahead)`
//! where `T` is the global minimum next-event time and the lookahead is the
//! minimum cross-shard propagation delay. A message crossing shards is
//! floored to at least one lookahead of delay, so nothing generated inside a
//! window can land inside that same window — shards never observe each
//! other mid-round and no rollback is ever needed.
//!
//! Determinism is a function of the *shard plan*, not the thread count:
//!
//! * Events are ordered by `(time, origin shard, origin sequence)`. With a
//!   single shard this is exactly the legacy `(time, sequence)` order, so an
//!   unsharded run and a one-shard run are bit-identical.
//! * Round inputs are fixed at the barrier and each shard is processed by
//!   exactly one thread, so running the same plan on 1, 2, 4, or 8 threads
//!   yields byte-identical event orders, RNG draws, and trace hashes.
//! * Trace records are buffered per shard and merged once per round in
//!   `(time, shard, emission index)` order before the global sequence stamp
//!   is applied, so every [`crate::trace::TraceSink`] — including the
//!   [`crate::check::InvariantChecker`] — observes one monotone stream and
//!   runs unmodified.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::message::{AnyMessage, Message};
use crate::time::{SimDuration, SimTime};
use crate::trace::{PendingRecord, TraceEvent, TraceSink, Tracer};

/// Identifies a component registered with a [`Simulation`].
///
/// Ids are dense indices assigned in registration order, so they are stable
/// across runs of the same setup code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(usize);

impl ComponentId {
    /// Returns the raw index of this component.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index, for tests that fabricate trace
    /// records without a full [`Simulation`]. Real ids come from
    /// [`Simulation::add`].
    #[doc(hidden)]
    pub fn from_index_for_tests(index: usize) -> Self {
        ComponentId(index)
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cid#{}", self.0)
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cid#{}", self.0)
    }
}

/// An active entity in the simulation: a NIC, a host, a switch port, a load
/// generator, and so on.
///
/// Components receive messages through [`Component::handle`] and interact
/// with the world exclusively through the passed [`Ctx`]. Components must be
/// `Send` so a [`ShardPlan`] can hand whole shards to worker threads; they
/// are never shared (`Sync` is not required) — exactly one thread touches a
/// shard at any instant.
pub trait Component: Any + Send {
    /// Handles one message delivered at the current virtual time.
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage);

    /// A short human-readable name used in traces.
    fn name(&self) -> &str {
        "component"
    }
}

/// One scheduled delivery.
///
/// Orders by `(at, src, seq)`: `src` is the shard that issued the send and
/// `seq` that shard's monotone counter, so keys are unique and the order is
/// independent of heap insertion interleaving. Unsharded simulations stamp
/// `src = 0`, which reduces the key to the legacy `(at, seq)` order.
struct Scheduled {
    at: SimTime,
    src: u32,
    seq: u64,
    dst: ComponentId,
    msg: AnyMessage,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.src == other.src && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.src, self.seq).cmp(&(other.at, other.src, other.seq))
    }
}

/// Where [`Ctx::emit`] records go: straight to the tracer (serialized
/// engine) or into the shard's round buffer (sharded engine), to be merged
/// and sequence-stamped at the round barrier.
enum EmitDest<'a> {
    Tracer(&'a mut Tracer),
    Buffer(&'a mut Vec<PendingRecord>),
}

/// Cross-shard routing state handed to a [`Ctx`] in sharded mode.
struct RouteCtx<'a> {
    shard_of: &'a [u32],
    lookahead: SimDuration,
    outbox: &'a mut Vec<Scheduled>,
}

/// The execution context handed to a component while it handles a message.
///
/// # Examples
///
/// ```
/// use lnic_sim::prelude::*;
///
/// #[derive(Debug)]
/// struct Tick;
///
/// struct Clock {
///     ticks: u32,
/// }
///
/// impl Component for Clock {
///     fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
///         self.ticks += 1;
///         if self.ticks < 3 {
///             ctx.send_self(SimDuration::from_micros(10), Tick);
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(42);
/// let clock = sim.add(Clock { ticks: 0 });
/// sim.post(clock, SimDuration::ZERO, Tick);
/// sim.run();
/// assert_eq!(sim.get::<Clock>(clock).unwrap().ticks, 3);
/// ```
pub struct Ctx<'a> {
    now: SimTime,
    self_id: ComponentId,
    shard: u32,
    queue: &'a mut BinaryHeap<Reverse<Scheduled>>,
    seq: &'a mut u64,
    rng: &'a mut SmallRng,
    stop: &'a mut bool,
    trace: Option<&'a mut Vec<(SimTime, String)>>,
    emit: Option<EmitDest<'a>>,
    route: Option<RouteCtx<'a>>,
}

impl Ctx<'_> {
    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the id of the component currently handling the message.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Returns the shard executing this component (0 when unsharded).
    pub fn shard(&self) -> usize {
        self.shard as usize
    }

    /// Schedules `msg` for delivery to `dst` after `delay`.
    pub fn send<M: Message>(&mut self, dst: ComponentId, delay: SimDuration, msg: M) {
        self.send_boxed(dst, delay, Box::new(msg));
    }

    /// Schedules an already-boxed message for delivery to `dst` after
    /// `delay`.
    ///
    /// In sharded mode a message bound for another shard is floored to at
    /// least one lookahead of delay — the conservative horizon below which
    /// no cross-shard signal can travel. Intra-shard sends (including all
    /// sends in an unsharded simulation) are delivered verbatim.
    pub fn send_boxed(&mut self, dst: ComponentId, delay: SimDuration, msg: AnyMessage) {
        let seq = *self.seq;
        *self.seq += 1;
        let src = self.shard;
        match self.route.as_mut() {
            None => self.queue.push(Reverse(Scheduled {
                at: self.now + delay,
                src,
                seq,
                dst,
                msg,
            })),
            Some(route) => {
                let dshard = *route
                    .shard_of
                    .get(dst.0)
                    .unwrap_or_else(|| panic!("message addressed to unknown component {dst}"));
                if dshard == src {
                    self.queue.push(Reverse(Scheduled {
                        at: self.now + delay,
                        src,
                        seq,
                        dst,
                        msg,
                    }));
                } else {
                    let eff = if delay < route.lookahead {
                        route.lookahead
                    } else {
                        delay
                    };
                    route.outbox.push(Scheduled {
                        at: self.now + eff,
                        src,
                        seq,
                        dst,
                        msg,
                    });
                }
            }
        }
    }

    /// Schedules `msg` back to the current component after `delay` (a timer).
    pub fn send_self<M: Message>(&mut self, delay: SimDuration, msg: M) {
        self.send(self.self_id, delay, msg);
    }

    /// Returns the deterministic random number generator for this shard
    /// (the simulation-wide stream when unsharded).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Requests that the run loop stop after the current event. In sharded
    /// mode the calling shard halts its window immediately and the run ends
    /// once the other shards finish the current round.
    pub fn stop(&mut self) {
        *self.stop = true;
    }

    /// Records a trace line when tracing is enabled; a no-op otherwise.
    pub fn trace(&mut self, line: impl FnOnce() -> String) {
        let now = self.now;
        if let Some(buf) = self.trace.as_deref_mut() {
            buf.push((now, line()));
        }
    }

    /// Emits a structured [`TraceEvent`] when a tracer is attached; a no-op
    /// otherwise. The closure runs only when at least one sink is listening,
    /// so hot paths pay one branch when tracing is off.
    pub fn emit(&mut self, event: impl FnOnce() -> TraceEvent) {
        let (now, src) = (self.now, self.self_id);
        match self.emit.as_mut() {
            None => {}
            Some(EmitDest::Tracer(tracer)) => tracer.record(now, src, event()),
            Some(EmitDest::Buffer(buf)) => buf.push(PendingRecord {
                at: now,
                src,
                event: event(),
            }),
        }
    }
}

/// A partition of a simulation's components into parallel shards.
///
/// Build the plan after registering every component, assign each component
/// to a shard (unassigned components land on shard 0, the conventional
/// "hub"), and install it with [`Simulation::set_shard_plan`]. The plan
/// freezes when the first event is processed.
///
/// `lookahead` must be a lower bound on the delay of every message that
/// crosses a shard boundary; the engine *enforces* the bound by flooring
/// faster cross-shard sends up to it, so picking the minimum physical
/// propagation delay of any cross-shard link keeps the model exact.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: usize,
    lookahead: SimDuration,
    assignment: Vec<(ComponentId, usize)>,
}

impl ShardPlan {
    /// Creates a plan with `shards` shards and the given conservative
    /// lookahead.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero, or when `shards > 1` and the lookahead
    /// is zero (a zero horizon admits no parallelism and would livelock the
    /// round loop).
    pub fn new(shards: usize, lookahead: SimDuration) -> Self {
        assert!(shards > 0, "a shard plan needs at least one shard");
        assert!(
            shards == 1 || !lookahead.is_zero(),
            "multi-shard plans require a positive lookahead"
        );
        ShardPlan {
            shards,
            lookahead,
            assignment: Vec::new(),
        }
    }

    /// Assigns `id` to `shard`.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn assign(&mut self, id: ComponentId, shard: usize) {
        assert!(shard < self.shards, "shard {shard} out of range");
        self.assignment.push((id, shard));
    }

    /// Number of shards in this plan.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The conservative lookahead window.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }
}

/// One shard: an island of components with a private heap, RNG stream, and
/// send-sequence counter.
struct Shard {
    id: u32,
    /// Sparse, full-length component table: `components[i]` is `Some` iff
    /// component `i` lives on this shard.
    components: Vec<Option<Box<dyn Component>>>,
    heap: BinaryHeap<Reverse<Scheduled>>,
    rng: SmallRng,
    seq: u64,
    now: SimTime,
    processed: u64,
    stopped: bool,
    outbox: Vec<Scheduled>,
    tbuf: Vec<PendingRecord>,
    lbuf: Vec<(SimTime, String)>,
}

impl Shard {
    /// Processes every event with `at < end` in `(at, src, seq)` order,
    /// including events generated intra-shard inside the window. Cross-shard
    /// sends accumulate in the outbox for the coordinator to route at the
    /// round barrier.
    fn run_window(
        &mut self,
        end: SimTime,
        shard_of: &[u32],
        lookahead: SimDuration,
        trace_on: bool,
        emit_on: bool,
    ) {
        while !self.stopped {
            match self.heap.peek() {
                Some(Reverse(head)) if head.at < end => {}
                _ => break,
            }
            let Some(Reverse(ev)) = self.heap.pop() else {
                break;
            };
            debug_assert!(ev.at >= self.now, "shard event queue went backwards");
            self.now = ev.at;
            self.processed += 1;

            let slot = self
                .components
                .get_mut(ev.dst.0)
                .unwrap_or_else(|| panic!("event addressed to unknown component {}", ev.dst));
            let mut component = slot
                .take()
                .expect("component re-entered during dispatch or routed to the wrong shard");

            let mut stop = false;
            {
                let mut ctx = Ctx {
                    now: self.now,
                    self_id: ev.dst,
                    shard: self.id,
                    queue: &mut self.heap,
                    seq: &mut self.seq,
                    rng: &mut self.rng,
                    stop: &mut stop,
                    trace: trace_on.then_some(&mut self.lbuf),
                    emit: emit_on.then_some(EmitDest::Buffer(&mut self.tbuf)),
                    route: Some(RouteCtx {
                        shard_of,
                        lookahead,
                        outbox: &mut self.outbox,
                    }),
                };
                component.handle(&mut ctx, ev.msg);
            }
            self.components[ev.dst.0] = Some(component);
            if stop {
                self.stopped = true;
            }
        }
    }

    /// Earliest pending event time, as nanoseconds (`u64::MAX` when idle).
    fn next_ns(&self) -> u64 {
        self.heap
            .peek()
            .map_or(u64::MAX, |Reverse(e)| e.at.as_nanos())
    }
}

/// The frozen sharded state of a [`Simulation`].
struct Sharded {
    lookahead: SimDuration,
    shard_of: Vec<u32>,
    shards: Vec<Shard>,
}

impl Sharded {
    fn min_next(&self) -> Option<SimTime> {
        let ns = self.shards.iter().map(Shard::next_ns).min()?;
        (ns != u64::MAX).then(|| SimTime::from_nanos(ns))
    }
}

/// Outcome of one conservative round.
enum Round {
    /// The round processed a window; more work may remain.
    Ran,
    /// Every shard heap is empty.
    Drained,
    /// The next event lies beyond the caller's deadline.
    Deadline,
    /// A component called [`Ctx::stop`] during the round.
    Stopped,
}

/// Mixes a shard index into the master seed (SplitMix64 increment), so each
/// shard draws from an independent deterministic stream. Shard 0 keeps the
/// master seed verbatim: a one-shard plan reproduces the unsharded RNG
/// stream bit for bit.
fn shard_seed(master: u64, shard: usize) -> u64 {
    master ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Exclusive end of the round window starting at `t`: one lookahead wide
/// (at least 1 ns so zero-lookahead single-shard plans still make
/// progress), clipped so no event beyond `cap` is delivered.
fn window_end(t: SimTime, lookahead: SimDuration, cap: Option<SimTime>) -> SimTime {
    let span = if lookahead.is_zero() {
        SimDuration::from_nanos(1)
    } else {
        lookahead
    };
    let end = t.saturating_add(span);
    match cap {
        Some(d) => end.min(d.saturating_add(SimDuration::from_nanos(1))),
        None => end,
    }
}

/// `done`-flag sentinel published by a worker lane whose round panicked.
const LANE_POISONED: u64 = u64::MAX;

/// Per-worker-lane synchronization block for the parallel round loop.
struct LaneSync {
    /// Round number the lane should execute (coordinator-written).
    epoch: AtomicU64,
    /// Exclusive window end for that round, in nanoseconds.
    end_ns: AtomicU64,
    /// Last round the lane completed, or [`LANE_POISONED`].
    done: AtomicU64,
    /// Earliest pending event across the lane's shards after its round.
    next_ns: AtomicU64,
    /// Latched when any of the lane's shards called [`Ctx::stop`].
    stopped: AtomicBool,
    mail: Mutex<LaneMail>,
    /// Parking lot for the spin-then-park handshake: on oversubscribed
    /// hosts (more lanes than cores) pure spinning burns the very
    /// quantum the other side needs, so both sides fall back to a
    /// condvar after a short spin. The predicate is always the atomic
    /// (`epoch`/`done`), re-checked under `park` before sleeping, and
    /// waits carry a timeout so a missed wakeup can only cost a
    /// millisecond, never liveness.
    park: Mutex<()>,
    /// Worker-side wakeup: a new round was opened, or shutdown.
    work_cv: Condvar,
    /// Coordinator-side wakeup: the lane finished its round.
    done_cv: Condvar,
}

/// The coordinator⇄worker exchange buffer; locked only while the owning
/// side holds the round (never contended).
#[derive(Default)]
struct LaneMail {
    /// Cross-shard events routed *to* this lane's shards.
    inbound: Vec<Scheduled>,
    /// Cross-shard events leaving this lane's shards this round.
    outbox: Vec<Scheduled>,
    /// Shard-buffered structured trace records: `(shard, emission index,
    /// record)`.
    tbuf: Vec<(u32, u32, PendingRecord)>,
    /// Shard-buffered string trace lines.
    lbuf: Vec<(u32, u32, SimTime, String)>,
}

impl LaneSync {
    fn new(next_ns: u64) -> Self {
        LaneSync {
            epoch: AtomicU64::new(0),
            end_ns: AtomicU64::new(0),
            done: AtomicU64::new(0),
            next_ns: AtomicU64::new(next_ns),
            stopped: AtomicBool::new(false),
            mail: Mutex::new(LaneMail::default()),
            park: Mutex::new(()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }

    /// Wakes the lane's worker thread (new round opened, or shutdown).
    fn wake_worker(&self) {
        let _g = self.park.lock().unwrap();
        self.work_cv.notify_all();
    }

    /// Wakes the coordinator (the lane published its round results).
    fn wake_coordinator(&self) {
        let _g = self.park.lock().unwrap();
        self.done_cv.notify_all();
    }

    /// Parks on `cv` unless `pred` already holds under the lock. The
    /// 1 ms timeout bounds the cost of any missed wakeup.
    fn park_unless(&self, cv: &Condvar, pred: impl Fn() -> bool) {
        let guard = self.park.lock().unwrap();
        if !pred() {
            let _ = cv
                .wait_timeout(guard, std::time::Duration::from_millis(1))
                .unwrap();
        }
    }
}

/// How long each side spins before parking on the condvar. Spins
/// resolve in nanoseconds when a core is free; parking is the
/// oversubscription path.
const SPIN_LIMIT: u32 = 256;

/// Spin-waits with escalating politeness; returns `false` once the
/// caller should park instead.
fn relax(spins: &mut u32) -> bool {
    *spins += 1;
    if *spins < SPIN_LIMIT {
        std::hint::spin_loop();
        true
    } else if *spins < SPIN_LIMIT + 16 {
        std::thread::yield_now();
        true
    } else {
        *spins = SPIN_LIMIT;
        false
    }
}

/// Body of one worker lane: waits for the coordinator to open a round,
/// drains inbound cross-shard events, runs each owned shard's window, and
/// publishes results. Returns the shards at shutdown.
#[allow(clippy::too_many_arguments)]
fn lane_loop(
    sync: &LaneSync,
    mut shards: Vec<Shard>,
    shard_of: &[u32],
    lookahead: SimDuration,
    trace_on: bool,
    emit_on: bool,
    shutdown: &AtomicBool,
) -> Vec<Shard> {
    let mut epoch = 0u64;
    loop {
        let mut spins = 0u32;
        loop {
            let e = sync.epoch.load(Ordering::Acquire);
            if e != epoch {
                epoch = e;
                break;
            }
            if shutdown.load(Ordering::Acquire) && sync.epoch.load(Ordering::Acquire) == epoch {
                // Deliver any events routed here after our last round so the
                // heaps are complete when ownership returns to the
                // coordinator.
                let mut mail = sync.mail.lock().unwrap();
                for ev in mail.inbound.drain(..) {
                    let sid = shard_of[ev.dst.0];
                    shards
                        .iter_mut()
                        .find(|s| s.id == sid)
                        .expect("event routed to a shard outside its lane")
                        .heap
                        .push(Reverse(ev));
                }
                return shards;
            }
            if !relax(&mut spins) {
                sync.park_unless(&sync.work_cv, || {
                    sync.epoch.load(Ordering::Acquire) != epoch || shutdown.load(Ordering::Acquire)
                });
            }
        }

        let end = SimTime::from_nanos(sync.end_ns.load(Ordering::Acquire));
        let mut mail = sync.mail.lock().unwrap();
        for ev in mail.inbound.drain(..) {
            let sid = shard_of[ev.dst.0];
            shards
                .iter_mut()
                .find(|s| s.id == sid)
                .expect("event routed to a shard outside its lane")
                .heap
                .push(Reverse(ev));
        }
        for shard in shards.iter_mut() {
            if shard.heap.peek().is_some_and(|Reverse(e)| e.at < end) {
                shard.run_window(end, shard_of, lookahead, trace_on, emit_on);
            }
            mail.outbox.append(&mut shard.outbox);
            let sid = shard.id;
            for (i, rec) in shard.tbuf.drain(..).enumerate() {
                mail.tbuf.push((sid, i as u32, rec));
            }
            for (i, (at, line)) in shard.lbuf.drain(..).enumerate() {
                mail.lbuf.push((sid, i as u32, at, line));
            }
        }
        let next = shards.iter().map(Shard::next_ns).min().unwrap_or(u64::MAX);
        sync.next_ns.store(next, Ordering::Relaxed);
        if shards.iter().any(|s| s.stopped) {
            sync.stopped.store(true, Ordering::Relaxed);
        }
        drop(mail);
        sync.done.store(epoch, Ordering::Release);
        sync.wake_coordinator();
    }
}

/// A deterministic discrete-event simulation.
///
/// See [`Ctx`] for a complete usage example and the module docs for the
/// sharded parallel execution model.
pub struct Simulation {
    components: Vec<Option<Box<dyn Component>>>,
    names: Vec<String>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    now: SimTime,
    seq: u64,
    seed: u64,
    rng: SmallRng,
    processed: u64,
    trace: Option<Vec<(SimTime, String)>>,
    tracer: Option<Tracer>,
    threads: usize,
    pending_plan: Option<ShardPlan>,
    sharded: Option<Sharded>,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("components", &self.names.len())
            .field("pending_events", &self.events_pending())
            .field("processed", &self.processed)
            .field("shards", &self.shard_count())
            .finish()
    }
}

impl Simulation {
    /// Creates an empty simulation whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Simulation {
            components: Vec::new(),
            names: Vec::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            seed,
            rng: SmallRng::seed_from_u64(seed),
            processed: 0,
            trace: None,
            tracer: None,
            threads: 1,
            pending_plan: None,
            sharded: None,
        }
    }

    /// Registers a component and returns its id.
    ///
    /// # Panics
    ///
    /// Panics once a shard plan has frozen (components must be registered —
    /// and assigned — before the first sharded event is processed).
    pub fn add<C: Component>(&mut self, component: C) -> ComponentId {
        assert!(
            self.sharded.is_none(),
            "components must be registered before the shard plan freezes"
        );
        let id = ComponentId(self.components.len());
        self.names.push(component.name().to_owned());
        self.components.push(Some(Box::new(component)));
        id
    }

    /// Installs a shard plan. The plan freezes — components migrate onto
    /// their shards and the pending queue is distributed — when the first
    /// event is processed.
    ///
    /// # Panics
    ///
    /// Panics when events have already been processed or a plan is already
    /// installed.
    pub fn set_shard_plan(&mut self, plan: ShardPlan) {
        assert!(
            self.processed == 0,
            "a shard plan must be installed before the first event"
        );
        assert!(
            self.pending_plan.is_none() && self.sharded.is_none(),
            "a shard plan is already installed"
        );
        self.pending_plan = Some(plan);
    }

    /// Assigns a late-registered component to a shard of the pending plan.
    ///
    /// # Panics
    ///
    /// Panics when no plan is pending (either none was installed or it has
    /// already frozen) or `shard` is out of range.
    pub fn assign_shard(&mut self, id: ComponentId, shard: usize) {
        let plan = self
            .pending_plan
            .as_mut()
            .expect("assign_shard requires a pending (unfrozen) shard plan");
        plan.assign(id, shard);
    }

    /// Sets the number of OS threads used by sharded runs (ignored by the
    /// serialized engine; values are clamped to at least 1). The thread
    /// count never affects results — only wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Number of OS threads sharded runs will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether a shard plan is installed (pending or frozen).
    pub fn is_sharded(&self) -> bool {
        self.pending_plan.is_some() || self.sharded.is_some()
    }

    /// Number of shards (1 for the serialized engine).
    pub fn shard_count(&self) -> usize {
        if let Some(sh) = &self.sharded {
            sh.shards.len()
        } else if let Some(plan) = &self.pending_plan {
            plan.shards
        } else {
            1
        }
    }

    /// The shard a component is assigned to (0 when unsharded).
    pub fn shard_of(&self, id: ComponentId) -> usize {
        if let Some(sh) = &self.sharded {
            sh.shard_of.get(id.0).map_or(0, |&s| s as usize)
        } else if let Some(plan) = &self.pending_plan {
            plan.assignment
                .iter()
                .rev()
                .find(|(c, _)| *c == id)
                .map_or(0, |&(_, s)| s)
        } else {
            0
        }
    }

    /// Enables or disables trace capture (see [`Ctx::trace`]).
    pub fn set_tracing(&mut self, on: bool) {
        if on && self.trace.is_none() {
            self.trace = Some(Vec::new());
        } else if !on {
            self.trace = None;
        }
    }

    /// Returns the captured trace lines, if tracing is enabled.
    pub fn trace_lines(&self) -> &[(SimTime, String)] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Attaches a structured-trace sink; components emit to it through
    /// [`Ctx::emit`]. Multiple sinks may be attached and each sees every
    /// record.
    pub fn add_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.get_or_insert_with(Tracer::new).add_sink(sink);
    }

    /// Borrows an attached sink by concrete type, if one is present.
    pub fn trace_sink<S: TraceSink>(&self) -> Option<&S> {
        self.tracer.as_ref()?.sink::<S>()
    }

    /// Mutably borrows an attached sink by concrete type, if one is present.
    pub fn trace_sink_mut<S: TraceSink>(&mut self) -> Option<&mut S> {
        self.tracer.as_mut()?.sink_mut::<S>()
    }

    /// Signals end-of-run to every attached sink (flush files, run final
    /// conservation checks). Idempotent per sink implementation; safe to
    /// call when no tracer is attached.
    pub fn finish_tracing(&mut self) {
        let now = self.now;
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.finish(now);
        }
    }

    /// Total structured trace records emitted so far.
    pub fn trace_records(&self) -> u64 {
        self.tracer.as_ref().map_or(0, Tracer::emitted)
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Returns the number of events still pending delivery.
    pub fn events_pending(&self) -> usize {
        match &self.sharded {
            Some(sh) => sh.shards.iter().map(|s| s.heap.len()).sum(),
            None => self.queue.len(),
        }
    }

    /// Schedules a message from outside any component (e.g. test or
    /// experiment setup code).
    pub fn post<M: Message>(&mut self, dst: ComponentId, delay: SimDuration, msg: M) {
        self.post_boxed(dst, delay, Box::new(msg));
    }

    /// Schedules an already-boxed message from outside any component.
    pub fn post_boxed(&mut self, dst: ComponentId, delay: SimDuration, msg: AnyMessage) {
        let at = self.now + delay;
        match self.sharded.as_mut() {
            Some(sh) => {
                let sid = *sh
                    .shard_of
                    .get(dst.0)
                    .unwrap_or_else(|| panic!("message posted to unknown component {dst}"));
                let shard = &mut sh.shards[sid as usize];
                let seq = shard.seq;
                shard.seq += 1;
                shard.heap.push(Reverse(Scheduled {
                    at,
                    src: sid,
                    seq,
                    dst,
                    msg,
                }));
            }
            None => {
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(Reverse(Scheduled {
                    at,
                    src: 0,
                    seq,
                    dst,
                    msg,
                }));
            }
        }
    }

    /// Borrows a registered component, downcast to its concrete type.
    ///
    /// Returns `None` when `id` is out of range or the type does not match.
    pub fn get<C: Component>(&self, id: ComponentId) -> Option<&C> {
        let slot = match &self.sharded {
            Some(sh) => {
                let sid = *sh.shard_of.get(id.0)?;
                sh.shards[sid as usize].components.get(id.0)?.as_deref()?
            }
            None => self.components.get(id.0)?.as_deref()?,
        };
        (slot as &dyn Any).downcast_ref::<C>()
    }

    /// Mutably borrows a registered component, downcast to its concrete type.
    pub fn get_mut<C: Component>(&mut self, id: ComponentId) -> Option<&mut C> {
        let slot = match &mut self.sharded {
            Some(sh) => {
                let sid = *sh.shard_of.get(id.0)?;
                sh.shards[sid as usize]
                    .components
                    .get_mut(id.0)?
                    .as_deref_mut()?
            }
            None => self.components.get_mut(id.0)?.as_deref_mut()?,
        };
        (slot as &mut dyn Any).downcast_mut::<C>()
    }

    /// Freezes a pending shard plan: moves components onto their shards,
    /// derives per-shard RNG streams from the master seed, and distributes
    /// the pending event queue.
    fn maybe_freeze(&mut self) {
        let Some(plan) = self.pending_plan.take() else {
            return;
        };
        let nshards = plan.shards;
        let mut shard_of = vec![0u32; self.components.len()];
        for (id, shard) in &plan.assignment {
            let slot = shard_of
                .get_mut(id.0)
                .unwrap_or_else(|| panic!("shard plan names unknown component {id}"));
            *slot = *shard as u32;
        }
        let mut shards: Vec<Shard> = (0..nshards)
            .map(|k| Shard {
                id: k as u32,
                components: (0..self.components.len()).map(|_| None).collect(),
                heap: BinaryHeap::new(),
                rng: SmallRng::seed_from_u64(shard_seed(self.seed, k)),
                // Continue from the pre-freeze counter so keys never collide
                // with already-queued `(src = 0, seq)` events.
                seq: self.seq,
                now: self.now,
                processed: 0,
                stopped: false,
                outbox: Vec::new(),
                tbuf: Vec::new(),
                lbuf: Vec::new(),
            })
            .collect();
        for (idx, slot) in self.components.iter_mut().enumerate() {
            if let Some(component) = slot.take() {
                shards[shard_of[idx] as usize].components[idx] = Some(component);
            }
        }
        for Reverse(ev) in self.queue.drain() {
            let sid = shard_of[ev.dst.0] as usize;
            shards[sid].heap.push(Reverse(ev));
        }
        self.sharded = Some(Sharded {
            lookahead: plan.lookahead,
            shard_of,
            shards,
        });
    }

    /// Delivers the next pending event, if any. Returns `false` when the
    /// queue is empty.
    ///
    /// With a shard plan installed, one "step" is one conservative round
    /// (a full `[T, T + lookahead)` window across every shard), executed
    /// sequentially.
    ///
    /// # Panics
    ///
    /// Panics if an event addresses an unknown component (a wiring bug).
    pub fn step(&mut self) -> bool {
        self.maybe_freeze();
        if self.sharded.is_some() {
            matches!(self.round(None), Round::Ran)
        } else {
            self.step_serial()
        }
    }

    /// The serialized (unsharded) engine: pop, dispatch, reinsert.
    fn step_serial(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.processed += 1;

        let slot = self
            .components
            .get_mut(ev.dst.0)
            .unwrap_or_else(|| panic!("event addressed to unknown component {}", ev.dst));
        let mut component = slot.take().expect("component re-entered during dispatch");

        let mut stop = false;
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: ev.dst,
                shard: 0,
                queue: &mut self.queue,
                seq: &mut self.seq,
                rng: &mut self.rng,
                stop: &mut stop,
                trace: self.trace.as_mut(),
                emit: self.tracer.as_mut().map(EmitDest::Tracer),
                route: None,
            };
            component.handle(&mut ctx, ev.msg);
        }
        self.components[ev.dst.0] = Some(component);
        !stop
    }

    /// Executes one conservative round sequentially: picks the global
    /// window, runs every active shard's slice of it, then merges outboxes
    /// and trace buffers at the barrier.
    fn round(&mut self, cap: Option<SimTime>) -> Round {
        let trace_on = self.trace.is_some();
        let emit_on = self.tracer.is_some();
        let sh = self.sharded.as_mut().expect("round requires a shard plan");
        let lookahead = sh.lookahead;
        let Some(t) = sh.min_next() else {
            return Round::Drained;
        };
        if let Some(d) = cap {
            if t > d {
                return Round::Deadline;
            }
        }
        let end = window_end(t, lookahead, cap);
        let shard_of = std::mem::take(&mut sh.shard_of);
        for shard in sh.shards.iter_mut() {
            shard.stopped = false;
            if shard.heap.peek().is_some_and(|Reverse(e)| e.at < end) {
                shard.run_window(end, &shard_of, lookahead, trace_on, emit_on);
            }
        }
        // Barrier: route cross-shard events. Arrivals below the window end
        // would mean a shard already ran past them — the exact causality
        // violation the lookahead floor makes impossible.
        let mut moved: Vec<Scheduled> = Vec::new();
        for shard in sh.shards.iter_mut() {
            moved.append(&mut shard.outbox);
        }
        for ev in moved {
            assert!(
                ev.at >= end,
                "conservative sync violated: cross-shard event at {} inside window ending {}",
                ev.at,
                end
            );
            let sid = shard_of[ev.dst.0] as usize;
            sh.shards[sid].heap.push(Reverse(ev));
        }
        // Merge shard-buffered trace output in (at, shard, index) order.
        let mut tbuf: Vec<(u32, u32, PendingRecord)> = Vec::new();
        let mut lbuf: Vec<(u32, u32, SimTime, String)> = Vec::new();
        for shard in sh.shards.iter_mut() {
            let sid = shard.id;
            for (i, rec) in shard.tbuf.drain(..).enumerate() {
                tbuf.push((sid, i as u32, rec));
            }
            for (i, (at, line)) in shard.lbuf.drain(..).enumerate() {
                lbuf.push((sid, i as u32, at, line));
            }
        }
        sh.shard_of = shard_of;
        self.processed = sh.shards.iter().map(|s| s.processed).sum();
        let max_now = sh.shards.iter().map(|s| s.now).max().unwrap_or(self.now);
        let stopped = sh.shards.iter().any(|s| s.stopped);
        if max_now > self.now {
            self.now = max_now;
        }
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.record_merged(tbuf);
        }
        if let Some(lines) = self.trace.as_mut() {
            lbuf.sort_by_key(|&(sid, idx, at, _)| (at, sid, idx));
            lines.extend(lbuf.into_iter().map(|(_, _, at, line)| (at, line)));
        }
        if stopped {
            Round::Stopped
        } else {
            Round::Ran
        }
    }

    /// Runs conservative rounds on a pool of worker lanes until the heaps
    /// drain, a shard stops the run, or the next window would start past
    /// `cap`. Shard → lane assignment is round-robin by shard id; results
    /// are identical to [`Simulation::round`] by construction.
    fn run_rounds_parallel(&mut self, cap: Option<SimTime>) {
        let trace_on = self.trace.is_some();
        let emit_on = self.tracer.is_some();
        let mut sharded = self.sharded.take().expect("parallel run requires shards");
        let lookahead = sharded.lookahead;
        let shard_of = std::mem::take(&mut sharded.shard_of);
        let nlanes = self.threads.min(sharded.shards.len()).max(1);

        // Partition shards across lanes; lane 0 is the coordinator itself.
        let mut lane_shards: Vec<Vec<Shard>> = (0..nlanes).map(|_| Vec::new()).collect();
        let mut lane_of_shard: Vec<usize> = Vec::with_capacity(sharded.shards.len());
        for (i, shard) in sharded.shards.drain(..).enumerate() {
            lane_of_shard.push(i % nlanes);
            lane_shards[i % nlanes].push(shard);
        }
        let mut lane_next: Vec<u64> = lane_shards
            .iter()
            .map(|shards| shards.iter().map(Shard::next_ns).min().unwrap_or(u64::MAX))
            .collect();
        let mut own = lane_shards.remove(0);
        for shard in own.iter_mut() {
            shard.stopped = false;
        }
        for shard in lane_shards.iter_mut().flatten() {
            shard.stopped = false;
        }

        let lanes: Vec<LaneSync> = lane_next[1..]
            .iter()
            .map(|&next| LaneSync::new(next))
            .collect();
        let shutdown = AtomicBool::new(false);
        let so: &[u32] = &shard_of;
        let lanes_ref: &[LaneSync] = &lanes;
        let shutdown_ref = &shutdown;

        std::thread::scope(|scope| {
            let handles: Vec<_> = lanes_ref
                .iter()
                .zip(lane_shards)
                .map(|(sync, shards)| {
                    scope.spawn(move || {
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            lane_loop(sync, shards, so, lookahead, trace_on, emit_on, shutdown_ref)
                        }));
                        match out {
                            Ok(shards) => shards,
                            Err(payload) => {
                                sync.done.store(LANE_POISONED, Ordering::Release);
                                std::panic::resume_unwind(payload);
                            }
                        }
                    })
                })
                .collect();

            let tracer = self.tracer.as_mut();
            let lines = self.trace.as_mut();
            let mut tracer = tracer;
            let mut lines = lines;
            let mut epoch = 0u64;
            let mut stopped = false;
            loop {
                let t_ns = lane_next.iter().copied().min().unwrap_or(u64::MAX);
                if t_ns == u64::MAX || stopped {
                    break;
                }
                let t = SimTime::from_nanos(t_ns);
                if let Some(d) = cap {
                    if t > d {
                        break;
                    }
                }
                let end = window_end(t, lookahead, cap);
                let end_ns = end.as_nanos();
                epoch += 1;
                let mut active: Vec<usize> = Vec::new();
                for (w, sync) in lanes_ref.iter().enumerate() {
                    if lane_next[w + 1] < end_ns {
                        sync.end_ns.store(end_ns, Ordering::Relaxed);
                        sync.epoch.store(epoch, Ordering::Release);
                        sync.wake_worker();
                        active.push(w);
                    }
                }

                let mut round_out: Vec<Scheduled> = Vec::new();
                let mut tbuf: Vec<(u32, u32, PendingRecord)> = Vec::new();
                let mut lbuf: Vec<(u32, u32, SimTime, String)> = Vec::new();
                if lane_next[0] < end_ns {
                    for shard in own.iter_mut() {
                        if shard.heap.peek().is_some_and(|Reverse(e)| e.at < end) {
                            shard.run_window(end, so, lookahead, trace_on, emit_on);
                        }
                        round_out.append(&mut shard.outbox);
                        let sid = shard.id;
                        for (i, rec) in shard.tbuf.drain(..).enumerate() {
                            tbuf.push((sid, i as u32, rec));
                        }
                        for (i, (at, line)) in shard.lbuf.drain(..).enumerate() {
                            lbuf.push((sid, i as u32, at, line));
                        }
                        if shard.stopped {
                            stopped = true;
                            shard.stopped = false;
                        }
                    }
                    lane_next[0] = own.iter().map(Shard::next_ns).min().unwrap_or(u64::MAX);
                }

                let mut poisoned = false;
                for &w in &active {
                    let sync = &lanes_ref[w];
                    let mut spins = 0u32;
                    loop {
                        let d = sync.done.load(Ordering::Acquire);
                        if d == epoch {
                            break;
                        }
                        if d == LANE_POISONED {
                            poisoned = true;
                            break;
                        }
                        if !relax(&mut spins) {
                            sync.park_unless(&sync.done_cv, || {
                                sync.done.load(Ordering::Acquire) >= epoch
                            });
                        }
                    }
                    if poisoned {
                        break;
                    }
                    let mut mail = sync.mail.lock().unwrap();
                    round_out.append(&mut mail.outbox);
                    tbuf.append(&mut mail.tbuf);
                    lbuf.append(&mut mail.lbuf);
                    drop(mail);
                    lane_next[w + 1] = sync.next_ns.load(Ordering::Relaxed);
                    if sync.stopped.swap(false, Ordering::Relaxed) {
                        stopped = true;
                    }
                }
                if poisoned {
                    shutdown.store(true, Ordering::Release);
                    for sync in lanes_ref {
                        sync.wake_worker();
                    }
                    panic!("a simulation worker lane panicked; original panic above");
                }

                for ev in round_out {
                    assert!(
                        ev.at >= end,
                        "conservative sync violated: cross-shard event at {} inside window \
                         ending {}",
                        ev.at,
                        end
                    );
                    let sid = shard_of[ev.dst.0] as usize;
                    let lane = lane_of_shard[sid];
                    let at_ns = ev.at.as_nanos();
                    if lane == 0 {
                        own.iter_mut()
                            .find(|s| s.id as usize == sid)
                            .expect("event routed to a shard outside its lane")
                            .heap
                            .push(Reverse(ev));
                    } else {
                        lanes_ref[lane - 1].mail.lock().unwrap().inbound.push(ev);
                    }
                    if at_ns < lane_next[lane] {
                        lane_next[lane] = at_ns;
                    }
                }
                if let Some(tracer) = tracer.as_deref_mut() {
                    tracer.record_merged(tbuf);
                }
                if let Some(lines) = lines.as_deref_mut() {
                    lbuf.sort_by_key(|&(sid, idx, at, _)| (at, sid, idx));
                    lines.extend(lbuf.into_iter().map(|(_, _, at, line)| (at, line)));
                }
            }

            shutdown.store(true, Ordering::Release);
            for sync in lanes_ref {
                sync.wake_worker();
            }
            let mut shards: Vec<Shard> = own;
            for handle in handles {
                match handle.join() {
                    Ok(lane) => shards.extend(lane),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            shards.sort_by_key(|s| s.id);
            sharded.shards = shards;
        });

        self.processed = sharded.shards.iter().map(|s| s.processed).sum();
        let max_now = sharded
            .shards
            .iter()
            .map(|s| s.now)
            .max()
            .unwrap_or(self.now);
        if max_now > self.now {
            self.now = max_now;
        }
        sharded.shard_of = shard_of;
        self.sharded = Some(sharded);
    }

    /// Runs sharded rounds to completion under `cap`, choosing the parallel
    /// executor when more than one thread and shard are available.
    fn run_rounds(&mut self, cap: Option<SimTime>) {
        let multi = self.threads > 1 && self.sharded.as_ref().is_some_and(|sh| sh.shards.len() > 1);
        if multi {
            self.run_rounds_parallel(cap);
        } else {
            while matches!(self.round(cap), Round::Ran) {}
        }
    }

    /// Runs until the event queue drains or a component calls [`Ctx::stop`].
    pub fn run(&mut self) {
        self.maybe_freeze();
        if self.sharded.is_some() {
            self.run_rounds(None);
        } else {
            while self.step_serial() {}
        }
    }

    /// Runs until virtual time reaches `deadline` (events at exactly
    /// `deadline` are delivered), the queue drains, or a component stops the
    /// run.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.maybe_freeze();
        if self.sharded.is_some() {
            self.run_rounds(Some(deadline));
        } else {
            while let Some(Reverse(head)) = self.queue.peek() {
                if head.at > deadline {
                    break;
                }
                if !self.step_serial() {
                    return;
                }
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Runs until the queue drains, panicking after `limit` events as a
    /// guard against livelock in tests. Sharded simulations execute rounds
    /// sequentially here so the limit is checked at round granularity.
    ///
    /// # Panics
    ///
    /// Panics when more than `limit` events are processed.
    pub fn run_with_limit(&mut self, limit: u64) {
        self.maybe_freeze();
        let start = self.processed;
        if self.sharded.is_some() {
            while matches!(self.round(None), Round::Ran) {
                assert!(
                    self.processed - start <= limit,
                    "simulation exceeded {limit} events; possible livelock"
                );
            }
        } else {
            while self.step_serial() {
                assert!(
                    self.processed - start <= limit,
                    "simulation exceeded {limit} events; possible livelock"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Ping(u32);

    /// Forwards each `Ping` to a peer after a fixed delay, recording arrival
    /// times.
    struct Relay {
        peer: Option<ComponentId>,
        delay: SimDuration,
        seen: Vec<(SimTime, u32)>,
    }

    impl Component for Relay {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
            let ping = msg.downcast::<Ping>().expect("relay only accepts Ping");
            self.seen.push((ctx.now(), ping.0));
            if let Some(peer) = self.peer {
                if ping.0 > 0 {
                    ctx.send(peer, self.delay, Ping(ping.0 - 1));
                }
            }
        }
    }

    fn relay(delay_ns: u64) -> Relay {
        Relay {
            peer: None,
            delay: SimDuration::from_nanos(delay_ns),
            seen: Vec::new(),
        }
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut sim = Simulation::new(1);
        let a = sim.add(relay(10));
        let b = sim.add(relay(5));
        sim.get_mut::<Relay>(a).unwrap().peer = Some(b);
        sim.get_mut::<Relay>(b).unwrap().peer = Some(a);

        sim.post(a, SimDuration::ZERO, Ping(4));
        sim.run();

        // a sees 4 (t=0) then 2 (t=15); b sees 3 (t=10) then 1 (t=25).
        let a_seen = &sim.get::<Relay>(a).unwrap().seen;
        let b_seen = &sim.get::<Relay>(b).unwrap().seen;
        assert_eq!(
            a_seen,
            &vec![
                (SimTime::from_nanos(0), 4),
                (SimTime::from_nanos(15), 2),
                (SimTime::from_nanos(30), 0)
            ]
        );
        assert_eq!(
            b_seen,
            &vec![(SimTime::from_nanos(10), 3), (SimTime::from_nanos(25), 1)]
        );
        assert_eq!(sim.now(), SimTime::from_nanos(30));
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        struct Collector {
            order: Vec<u32>,
        }
        impl Component for Collector {
            fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: AnyMessage) {
                self.order.push(msg.downcast::<Ping>().unwrap().0);
            }
        }
        let mut sim = Simulation::new(7);
        let c = sim.add(Collector { order: Vec::new() });
        for i in 0..10 {
            sim.post(c, SimDuration::from_nanos(100), Ping(i));
        }
        sim.run();
        assert_eq!(
            sim.get::<Collector>(c).unwrap().order,
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Simulation::new(1);
        let a = sim.add(relay(1_000));
        let b = sim.add(relay(1_000));
        sim.get_mut::<Relay>(a).unwrap().peer = Some(b);
        sim.get_mut::<Relay>(b).unwrap().peer = Some(a);
        sim.post(a, SimDuration::ZERO, Ping(100));

        sim.run_until(SimTime::from_nanos(3_500));
        assert_eq!(sim.now(), SimTime::from_nanos(3_500));
        // Events at t=0,1000,2000,3000 delivered; rest pending.
        assert_eq!(sim.events_processed(), 4);
        assert!(sim.events_pending() > 0);

        // Idle run_until advances the clock even with a far deadline.
        let mut idle = Simulation::new(1);
        idle.run_until(SimTime::from_nanos(42));
        assert_eq!(idle.now(), SimTime::from_nanos(42));
    }

    #[test]
    fn stop_halts_the_run() {
        struct Stopper;
        impl Component for Stopper {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
                ctx.stop();
            }
        }
        let mut sim = Simulation::new(1);
        let s = sim.add(Stopper);
        sim.post(s, SimDuration::ZERO, Ping(0));
        sim.post(s, SimDuration::from_nanos(5), Ping(1));
        sim.run();
        assert_eq!(sim.events_processed(), 1);
        assert_eq!(sim.events_pending(), 1);
    }

    #[test]
    fn identical_seeds_are_deterministic() {
        fn run_once(seed: u64) -> Vec<(SimTime, u32)> {
            use rand::Rng;
            struct Jitter {
                seen: Vec<(SimTime, u32)>,
            }
            impl Component for Jitter {
                fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
                    let p = msg.downcast::<Ping>().unwrap();
                    self.seen.push((ctx.now(), p.0));
                    if p.0 > 0 {
                        let jitter = ctx.rng().gen_range(1..100);
                        ctx.send_self(SimDuration::from_nanos(jitter), Ping(p.0 - 1));
                    }
                }
            }
            let mut sim = Simulation::new(seed);
            let j = sim.add(Jitter { seen: Vec::new() });
            sim.post(j, SimDuration::ZERO, Ping(20));
            sim.run();
            sim.get::<Jitter>(j).unwrap().seen.clone()
        }
        assert_eq!(run_once(99), run_once(99));
        assert_ne!(run_once(99), run_once(100));
    }

    #[test]
    fn get_rejects_wrong_type() {
        let mut sim = Simulation::new(1);
        let a = sim.add(relay(1));
        struct Other;
        impl Component for Other {
            fn handle(&mut self, _ctx: &mut Ctx<'_>, _msg: AnyMessage) {}
        }
        assert!(sim.get::<Relay>(a).is_some());
        assert!(sim.get::<Other>(a).is_none());
    }

    #[test]
    fn tracing_captures_lines() {
        struct Tracer;
        impl Component for Tracer {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
                ctx.trace(|| "handled".to_owned());
            }
        }
        let mut sim = Simulation::new(1);
        sim.set_tracing(true);
        let t = sim.add(Tracer);
        sim.post(t, SimDuration::from_nanos(3), Ping(0));
        sim.run();
        assert_eq!(
            sim.trace_lines(),
            &[(SimTime::from_nanos(3), "handled".to_owned())]
        );
    }

    #[test]
    fn run_with_limit_panics_on_livelock() {
        struct Loop;
        impl Component for Loop {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
                ctx.send_self(SimDuration::from_nanos(1), Ping(0));
            }
        }
        let mut sim = Simulation::new(1);
        let l = sim.add(Loop);
        sim.post(l, SimDuration::ZERO, Ping(0));
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run_with_limit(1_000)));
        assert!(result.is_err());
    }

    // ------------------------------------------------------------------
    // Sharded engine tests.
    // ------------------------------------------------------------------

    use rand::Rng;

    /// A relay that also draws RNG jitter, exercising per-shard streams.
    struct JitterRelay {
        peer: Option<ComponentId>,
        delay: SimDuration,
        hops: u32,
        seen: Vec<(SimTime, u32, u64)>,
    }

    impl Component for JitterRelay {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
            let ping = msg.downcast::<Ping>().unwrap();
            let draw = ctx.rng().gen_range(0..1_000_000u64);
            self.seen.push((ctx.now(), ping.0, draw));
            self.hops += 1;
            if let Some(peer) = self.peer {
                if ping.0 > 0 {
                    ctx.send(peer, self.delay, Ping(ping.0 - 1));
                }
            }
        }
    }

    /// Builds a ring of `n` jitter relays, one per shard, with `delay_ns`
    /// hop latency, and runs `rounds` pings around the ring.
    fn ring_trace(seed: u64, n: usize, delay_ns: u64, threads: usize, shards: usize) -> String {
        let mut sim = Simulation::new(seed);
        let ids: Vec<ComponentId> = (0..n)
            .map(|_| {
                sim.add(JitterRelay {
                    peer: None,
                    delay: SimDuration::from_nanos(delay_ns),
                    hops: 0,
                    seen: Vec::new(),
                })
            })
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            sim.get_mut::<JitterRelay>(id).unwrap().peer = Some(ids[(i + 1) % n]);
        }
        let mut plan = ShardPlan::new(shards, SimDuration::from_nanos(delay_ns));
        for (i, &id) in ids.iter().enumerate() {
            plan.assign(id, i % shards);
        }
        sim.set_shard_plan(plan);
        sim.set_threads(threads);
        for (i, &id) in ids.iter().enumerate() {
            sim.post(id, SimDuration::from_nanos(i as u64), Ping(200));
        }
        sim.run();
        let mut out = String::new();
        for &id in &ids {
            let r = sim.get::<JitterRelay>(id).unwrap();
            out.push_str(&format!("{:?}\n", r.seen));
        }
        out.push_str(&format!(
            "processed={} now={}",
            sim.events_processed(),
            sim.now()
        ));
        out
    }

    #[test]
    fn one_shard_plan_matches_unsharded_run() {
        // The same workload, unsharded vs a one-shard plan: identical event
        // order, RNG draws, clock, and counts.
        fn workload(plan: bool, threads: usize) -> String {
            let mut sim = Simulation::new(42);
            let a = sim.add(JitterRelay {
                peer: None,
                delay: SimDuration::from_nanos(7),
                hops: 0,
                seen: Vec::new(),
            });
            let b = sim.add(JitterRelay {
                peer: Some(a),
                delay: SimDuration::from_nanos(3),
                hops: 0,
                seen: Vec::new(),
            });
            sim.get_mut::<JitterRelay>(a).unwrap().peer = Some(b);
            if plan {
                sim.set_shard_plan(ShardPlan::new(1, SimDuration::ZERO));
                sim.set_threads(threads);
            }
            sim.post(a, SimDuration::ZERO, Ping(50));
            sim.run();
            format!(
                "{:?} {:?} {} {}",
                sim.get::<JitterRelay>(a).unwrap().seen,
                sim.get::<JitterRelay>(b).unwrap().seen,
                sim.events_processed(),
                sim.now()
            )
        }
        let serial = workload(false, 1);
        assert_eq!(serial, workload(true, 1));
        assert_eq!(serial, workload(true, 4));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let reference = ring_trace(7, 6, 40, 1, 3);
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                reference,
                ring_trace(7, 6, 40, threads, 3),
                "divergence at {threads} threads"
            );
        }
        // Repeated runs at the same thread count are also identical.
        assert_eq!(ring_trace(7, 6, 40, 4, 3), ring_trace(7, 6, 40, 4, 3));
    }

    #[test]
    fn cross_shard_sends_are_floored_to_lookahead() {
        struct Echo {
            got: Vec<SimTime>,
        }
        impl Component for Echo {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
                self.got.push(ctx.now());
            }
        }
        struct Sender {
            peer: ComponentId,
        }
        impl Component for Sender {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
                // Zero-delay cross-shard send: must arrive one lookahead out.
                ctx.send(self.peer, SimDuration::ZERO, Ping(0));
            }
        }
        let mut sim = Simulation::new(1);
        let echo = sim.add(Echo { got: Vec::new() });
        let sender = sim.add(Sender { peer: echo });
        let mut plan = ShardPlan::new(2, SimDuration::from_nanos(100));
        plan.assign(sender, 0);
        plan.assign(echo, 1);
        sim.set_shard_plan(plan);
        sim.post(sender, SimDuration::from_nanos(10), Ping(0));
        sim.run();
        assert_eq!(
            sim.get::<Echo>(echo).unwrap().got,
            vec![SimTime::from_nanos(110)]
        );
    }

    #[test]
    fn sharded_stop_ends_run_at_round_boundary() {
        struct Stopper;
        impl Component for Stopper {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
                ctx.stop();
            }
        }
        let mut sim = Simulation::new(1);
        let s = sim.add(Stopper);
        sim.set_shard_plan(ShardPlan::new(1, SimDuration::ZERO));
        sim.post(s, SimDuration::ZERO, Ping(0));
        sim.post(s, SimDuration::from_nanos(5), Ping(1));
        sim.run();
        assert_eq!(sim.events_processed(), 1);
        assert_eq!(sim.events_pending(), 1);
    }

    #[test]
    fn sharded_run_until_caps_the_window() {
        let mut sim = Simulation::new(1);
        let a = sim.add(relay(1_000));
        let b = sim.add(relay(1_000));
        sim.get_mut::<Relay>(a).unwrap().peer = Some(b);
        sim.get_mut::<Relay>(b).unwrap().peer = Some(a);
        let mut plan = ShardPlan::new(2, SimDuration::from_nanos(500));
        plan.assign(a, 0);
        plan.assign(b, 1);
        sim.set_shard_plan(plan);
        sim.post(a, SimDuration::ZERO, Ping(100));

        // Rounds advance in 500 ns windows; the deadline must still stop
        // delivery at exactly 3.5 µs and advance the clock there.
        sim.run_until(SimTime::from_nanos(3_500));
        assert_eq!(sim.now(), SimTime::from_nanos(3_500));
        assert_eq!(sim.events_processed(), 4);
        assert!(sim.events_pending() > 0);
    }

    #[test]
    fn sharded_trace_lines_merge_in_time_order() {
        struct Talker {
            tag: &'static str,
        }
        impl Component for Talker {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
                let tag = self.tag;
                ctx.trace(|| tag.to_owned());
            }
        }
        let mut sim = Simulation::new(1);
        sim.set_tracing(true);
        let a = sim.add(Talker { tag: "a" });
        let b = sim.add(Talker { tag: "b" });
        let mut plan = ShardPlan::new(2, SimDuration::from_nanos(50));
        plan.assign(a, 0);
        plan.assign(b, 1);
        sim.set_shard_plan(plan);
        // b fires before a within one window; merge must order by time.
        sim.post(a, SimDuration::from_nanos(30), Ping(0));
        sim.post(b, SimDuration::from_nanos(10), Ping(0));
        sim.run();
        assert_eq!(
            sim.trace_lines(),
            &[
                (SimTime::from_nanos(10), "b".to_owned()),
                (SimTime::from_nanos(30), "a".to_owned())
            ]
        );
    }

    #[test]
    fn per_shard_rng_streams_are_independent_of_foreign_draws() {
        // Shard 1's draws must not shift when shard 0 draws more: streams
        // are per-shard, not interleaved through a global RNG.
        fn shard1_draws(extra_shard0_events: u32) -> Vec<u64> {
            struct Drawer {
                draws: Vec<u64>,
            }
            impl Component for Drawer {
                fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
                    self.draws.push(ctx.rng().gen_range(0..1_000_000u64));
                }
            }
            let mut sim = Simulation::new(5);
            let d0 = sim.add(Drawer { draws: Vec::new() });
            let d1 = sim.add(Drawer { draws: Vec::new() });
            let mut plan = ShardPlan::new(2, SimDuration::from_nanos(10));
            plan.assign(d0, 0);
            plan.assign(d1, 1);
            sim.set_shard_plan(plan);
            for i in 0..extra_shard0_events {
                sim.post(d0, SimDuration::from_nanos(i as u64), Ping(0));
            }
            for i in 0..4 {
                sim.post(d1, SimDuration::from_nanos(i), Ping(0));
            }
            sim.run();
            sim.get::<Drawer>(d1).unwrap().draws.clone()
        }
        assert_eq!(shard1_draws(1), shard1_draws(9));
    }
}
