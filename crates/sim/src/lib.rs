//! # lnic-sim: deterministic discrete-event simulation engine
//!
//! The foundation of the λ-NIC reproduction. Every other crate in the
//! workspace models its hardware or software component on top of this
//! engine: a nanosecond-resolution virtual clock, a time-ordered event
//! queue with deterministic tie-breaking, dynamically-typed messages, and
//! measurement utilities (series, summaries, ECDFs, histograms).
//!
//! ## Example
//!
//! ```
//! use lnic_sim::prelude::*;
//!
//! #[derive(Debug)]
//! struct Request(u64);
//!
//! /// A fixed-service-time server that records per-request latency.
//! struct Server {
//!     service: SimDuration,
//!     latencies: Series,
//! }
//!
//! impl Component for Server {
//!     fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
//!         let req = msg.downcast::<Request>().expect("server takes Request");
//!         let sent_at = SimTime::from_nanos(req.0);
//!         let done = ctx.now() + self.service;
//!         self.latencies.record(done - sent_at);
//!     }
//! }
//!
//! let mut sim = Simulation::new(7);
//! let server = sim.add(Server {
//!     service: SimDuration::from_micros(5),
//!     latencies: Series::new("latency"),
//! });
//! for i in 0..10 {
//!     let at = SimDuration::from_micros(i * 100);
//!     sim.post(server, at, Request((SimTime::ZERO + at).as_nanos()));
//! }
//! sim.run();
//! let summary = sim.get::<Server>(server).unwrap().latencies.summary();
//! assert_eq!(summary.count, 10);
//! assert_eq!(summary.mean_ns, 5_000.0);
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod engine;
pub mod fault;
pub mod message;
pub mod metrics;
pub mod time;
pub mod trace;

pub use check::InvariantChecker;
pub use engine::{Component, ComponentId, Ctx, ShardPlan, Simulation};
pub use fault::{FaultEvent, FaultPlan, TimedFault};
pub use message::{AnyMessage, Message};
pub use metrics::{Counter, Ecdf, LogHistogram, Series, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::{HashSink, JsonlSink, RingSink, TraceEvent, TraceRecord, TraceSink, Tracer};

/// Convenience re-exports for component authors.
pub mod prelude {
    pub use crate::check::InvariantChecker;
    pub use crate::engine::{Component, ComponentId, Ctx, ShardPlan, Simulation};
    pub use crate::fault::{FaultEvent, FaultPlan, TimedFault};
    pub use crate::message::{AnyMessage, Message};
    pub use crate::metrics::{Counter, Ecdf, LogHistogram, Series, Summary};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{
        HashSink, JsonlSink, RingSink, TraceEvent, TraceRecord, TraceSink, Tracer,
    };
}
