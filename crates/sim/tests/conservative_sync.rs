//! Property tests for the sharded engine's conservative synchronization.
//!
//! Random shard topologies, link delays, and event schedules are thrown
//! at the engine, and three properties must hold for every one of them:
//!
//! 1. **Causality** — no cross-shard event is ever delivered below the
//!    sender's clock plus the lookahead, and every delivery lands at
//!    exactly the time the sender computed under the flooring rule
//!    (cross-shard delays below the lookahead are raised to it).
//! 2. **Per-component monotonicity** — each component observes a
//!    non-decreasing clock across its deliveries.
//! 3. **Thread-count invariance** — the same topology and seed produce
//!    byte-identical trace lines, delivery logs, and final clocks at
//!    1, 2, and 4 executor threads.
//!
//! The engine additionally self-checks (`conservative sync violated`
//! assertions at both merge points); any violation panics the run and
//! fails the property.

use lnic_sim::prelude::*;
use proptest::prelude::*;
use rand::Rng;

/// A hop through the random relay mesh. The sender pre-computes the
/// exact delivery time the engine's flooring rule implies; the receiver
/// asserts it.
#[derive(Debug)]
struct Hop {
    expected_at: SimTime,
    ttl: u32,
}

/// Relay node on a random mesh: verifies its delivery times, then
/// forwards to an RNG-chosen peer.
struct Node {
    shard: usize,
    lookahead: SimDuration,
    /// `(peer, peer's shard, requested delay)` — delays may be below the
    /// lookahead on purpose; the engine must floor cross-shard ones.
    peers: Vec<(ComponentId, usize, SimDuration)>,
    seen: Vec<(u64, u32)>,
    last_now: SimTime,
}

impl Component for Node {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
        let hop = msg.downcast::<Hop>().expect("mesh only carries Hop");
        let now = ctx.now();
        assert!(
            now >= self.last_now,
            "component clock went backwards: {now:?} after {:?}",
            self.last_now
        );
        self.last_now = now;
        assert_eq!(
            now, hop.expected_at,
            "delivery at {now:?}, sender computed {:?}",
            hop.expected_at
        );
        assert_eq!(ctx.shard(), self.shard, "component ran on a foreign shard");
        self.seen.push((now.as_nanos(), hop.ttl));
        ctx.trace(|| format!("hop ttl={} shard={}", hop.ttl, self.shard));
        if hop.ttl == 0 || self.peers.is_empty() {
            return;
        }
        let pick = ctx.rng().gen_range(0..self.peers.len());
        let (peer, peer_shard, delay) = self.peers[pick];
        let effective = if peer_shard != self.shard && delay < self.lookahead {
            self.lookahead
        } else {
            delay
        };
        ctx.send(
            peer,
            delay,
            Hop {
                expected_at: now + effective,
                ttl: hop.ttl - 1,
            },
        );
    }
}

/// Cheap deterministic mixer for deriving topology choices from the
/// proptest-drawn topology seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct RunLog {
    trace: Vec<(SimTime, String)>,
    seen: Vec<Vec<(u64, u32)>>,
    processed: u64,
    end: SimTime,
}

/// Builds the random mesh drawn from the scalar inputs and runs it on
/// `threads` executor threads.
#[allow(clippy::too_many_arguments)]
fn run_mesh(
    seed: u64,
    topo_seed: u64,
    shards: usize,
    nodes_per_shard: usize,
    lookahead_ns: u64,
    fanout: usize,
    starts: usize,
    ttl: u32,
    threads: usize,
) -> RunLog {
    let lookahead = SimDuration::from_nanos(lookahead_ns);
    let mut sim = Simulation::new(seed);
    sim.set_tracing(true);
    sim.set_threads(threads);

    let mut plan = ShardPlan::new(shards, lookahead);
    let mut ids = Vec::new();
    let mut shard_of = Vec::new();
    for shard in 0..shards {
        for _ in 0..nodes_per_shard {
            let id = sim.add(Node {
                shard,
                lookahead,
                peers: Vec::new(),
                seen: Vec::new(),
                last_now: SimTime::ZERO,
            });
            plan.assign(id, shard);
            ids.push(id);
            shard_of.push(shard);
        }
    }

    // Random peer lists: `fanout` edges per node, random targets and
    // delays (0..2·lookahead, so roughly half the cross-shard edges
    // exercise the flooring rule).
    let mut state = topo_seed;
    for i in 0..ids.len() {
        let mut peers = Vec::with_capacity(fanout);
        for _ in 0..fanout {
            let j = (mix(&mut state) as usize) % ids.len();
            let delay = SimDuration::from_nanos(mix(&mut state) % (2 * lookahead_ns));
            peers.push((ids[j], shard_of[j], delay));
        }
        sim.get_mut::<Node>(ids[i]).expect("node").peers = peers;
    }
    sim.set_shard_plan(plan);

    // Random initial schedule: `starts` seed events at random times on
    // random nodes.
    for _ in 0..starts {
        let i = (mix(&mut state) as usize) % ids.len();
        let at = SimDuration::from_nanos(mix(&mut state) % (4 * lookahead_ns));
        sim.post(
            ids[i],
            at,
            Hop {
                expected_at: SimTime::ZERO + at,
                ttl,
            },
        );
    }
    sim.run();

    RunLog {
        trace: sim.trace_lines().to_vec(),
        seen: ids
            .iter()
            .map(|&id| sim.get::<Node>(id).expect("node").seen.clone())
            .collect(),
        processed: sim.events_processed(),
        end: sim.now(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_topologies_never_violate_conservative_sync(
        seed in 0u64..1_000,
        topo_seed in 0u64..1_000,
        shards in 2usize..6,
        nodes_per_shard in 1usize..4,
        lookahead_ns in 50u64..800,
        fanout in 1usize..4,
        starts in 1usize..6,
        ttl in 1u32..12,
    ) {
        // Causality and monotonicity are asserted inside every handler
        // (plus the engine's own merge-point assertions); the run
        // completing is the property.
        let base = run_mesh(seed, topo_seed, shards, nodes_per_shard,
                            lookahead_ns, fanout, starts, ttl, 1);
        prop_assert!(base.processed > 0, "mesh must actually run");

        // The identical schedule must replay bit-for-bit on parallel
        // executors.
        for threads in [2usize, 4] {
            let run = run_mesh(seed, topo_seed, shards, nodes_per_shard,
                               lookahead_ns, fanout, starts, ttl, threads);
            prop_assert_eq!(run.processed, base.processed, "event count at {} threads", threads);
            prop_assert_eq!(run.end, base.end, "final clock at {} threads", threads);
            prop_assert_eq!(&run.trace, &base.trace, "trace lines at {} threads", threads);
            prop_assert_eq!(&run.seen, &base.seen, "delivery logs at {} threads", threads);
        }
    }
}
