//! Weighted fair queueing across lambdas (§4.2-D1: "λ-NIC implements
//! weighted-fair-queuing (WFQ) to route requests between these threads").
//!
//! When every thread is busy, pending requests wait in per-lambda queues;
//! a credit-based weighted round-robin decides which lambda's request is
//! served next, giving each lambda throughput proportional to its weight
//! under contention while staying work-conserving.

use std::collections::VecDeque;

/// A weighted fair queue over items tagged by lambda index.
///
/// # Examples
///
/// ```
/// use lnic_nic::wfq::WeightedFairQueue;
///
/// let mut q: WeightedFairQueue<&str> = WeightedFairQueue::new();
/// q.set_weight(0, 2.0);
/// q.set_weight(1, 1.0);
/// for _ in 0..3 {
///     q.push(0, "a");
///     q.push(1, "b");
/// }
/// // Lambda 0 gets ~2x the service of lambda 1.
/// let first_three: Vec<usize> = (0..3).map(|_| q.pop().unwrap().0).collect();
/// assert_eq!(first_three.iter().filter(|&&l| l == 0).count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedFairQueue<T> {
    queues: Vec<VecDeque<T>>,
    weights: Vec<f64>,
    credits: Vec<f64>,
    len: usize,
    /// Round-robin scan position for tie-breaking.
    cursor: usize,
}

impl<T> Default for WeightedFairQueue<T> {
    fn default() -> Self {
        WeightedFairQueue {
            queues: Vec::new(),
            weights: Vec::new(),
            credits: Vec::new(),
            len: 0,
            cursor: 0,
        }
    }
}

impl<T> WeightedFairQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, lambda: usize) {
        while self.queues.len() <= lambda {
            self.queues.push(VecDeque::new());
            self.weights.push(1.0);
            self.credits.push(0.0);
        }
    }

    /// Sets a lambda's service weight (default 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive.
    pub fn set_weight(&mut self, lambda: usize, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weights must be positive"
        );
        self.ensure(lambda);
        self.weights[lambda] = weight;
    }

    /// Enqueues an item for `lambda`.
    pub fn push(&mut self, lambda: usize, item: T) {
        self.ensure(lambda);
        self.queues[lambda].push_back(item);
        self.len += 1;
    }

    /// Total queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items for one lambda.
    pub fn len_for(&self, lambda: usize) -> usize {
        self.queues.get(lambda).map_or(0, |q| q.len())
    }

    /// A lambda's service weight (1.0 when never configured).
    pub fn weight_of(&self, lambda: usize) -> f64 {
        self.weights.get(lambda).copied().unwrap_or(1.0)
    }

    /// Dequeues the next item under weighted fairness. Returns the lambda
    /// index alongside the item.
    pub fn pop(&mut self) -> Option<(usize, T)> {
        if self.len == 0 {
            return None;
        }
        // Credit-based WRR: grant every backlogged lambda credit
        // proportional to its weight until one can afford a send, then
        // serve the highest-credit backlogged lambda.
        loop {
            let mut best: Option<usize> = None;
            for off in 0..self.queues.len() {
                let i = (self.cursor + off) % self.queues.len();
                if self.queues[i].is_empty() {
                    continue;
                }
                if self.credits[i] >= 1.0 {
                    best = Some(i);
                    break;
                }
            }
            if let Some(i) = best {
                self.credits[i] -= 1.0;
                self.cursor = (i + 1) % self.queues.len();
                let item = self.queues[i].pop_front().expect("non-empty checked");
                self.len -= 1;
                // Idle lambdas must not hoard credit.
                for (j, q) in self.queues.iter().enumerate() {
                    if q.is_empty() {
                        self.credits[j] = 0.0;
                    }
                }
                return Some((i, item));
            }
            // Nobody can afford a send: top up backlogged lambdas.
            for (i, q) in self.queues.iter().enumerate() {
                if !q.is_empty() {
                    self.credits[i] += self.weights[i];
                }
            }
        }
    }
}

/// One tenant's slot in the hierarchical queue: its own lambda-level
/// [`WeightedFairQueue`] plus the tenant-tier WRR bookkeeping.
#[derive(Debug, Clone)]
struct TenantSlot<T> {
    tenant: u32,
    queue: WeightedFairQueue<T>,
    weight: f64,
    credit: f64,
}

/// Two-level weighted fair queue: a tenant tier of credit-based WRR
/// above per-tenant lambda queues.
///
/// Capacity is first divided across *tenants* in proportion to their
/// tenant weights; within each tenant, its lambdas share that slice in
/// proportion to their lambda weights. Both tiers use the same
/// credit-WRR discipline as [`WeightedFairQueue`], so a single-tenant
/// hierarchy degenerates to the flat queue exactly.
///
/// [`pop_where`](Self::pop_where) takes an eligibility filter so the
/// scheduler can skip quota-blocked tenants without dequeueing their
/// work; ineligible tenants neither accrue nor hoard credit.
///
/// # Examples
///
/// ```
/// use lnic_nic::wfq::HierarchicalWfq;
///
/// let mut q: HierarchicalWfq<&str> = HierarchicalWfq::new();
/// q.set_tenant_weight(1, 2.0);
/// q.set_tenant_weight(2, 1.0);
/// for _ in 0..3 {
///     q.push(1, 0, "a");
///     q.push(2, 0, "b");
/// }
/// // Tenant 1 gets ~2x the service of tenant 2.
/// let first_three: Vec<u32> = (0..3).map(|_| q.pop().unwrap().0).collect();
/// assert_eq!(first_three.iter().filter(|&&t| t == 1).count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HierarchicalWfq<T> {
    slots: Vec<TenantSlot<T>>,
    len: usize,
    /// Round-robin scan position for tie-breaking at the tenant tier.
    cursor: usize,
}

impl<T> HierarchicalWfq<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HierarchicalWfq {
            slots: Vec::new(),
            len: 0,
            cursor: 0,
        }
    }

    fn slot_mut(&mut self, tenant: u32) -> &mut TenantSlot<T> {
        if let Some(i) = self.slots.iter().position(|s| s.tenant == tenant) {
            return &mut self.slots[i];
        }
        self.slots.push(TenantSlot {
            tenant,
            queue: WeightedFairQueue::new(),
            weight: 1.0,
            credit: 0.0,
        });
        self.slots.last_mut().expect("just pushed")
    }

    fn slot(&self, tenant: u32) -> Option<&TenantSlot<T>> {
        self.slots.iter().find(|s| s.tenant == tenant)
    }

    /// Sets a tenant's service weight (default 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive.
    pub fn set_tenant_weight(&mut self, tenant: u32, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weights must be positive"
        );
        self.slot_mut(tenant).weight = weight;
    }

    /// Sets one lambda's weight within its tenant's slice (default 1.0).
    pub fn set_lambda_weight(&mut self, tenant: u32, lambda: usize, weight: f64) {
        self.slot_mut(tenant).queue.set_weight(lambda, weight);
    }

    /// Enqueues an item for `lambda` under `tenant`.
    pub fn push(&mut self, tenant: u32, lambda: usize, item: T) {
        self.slot_mut(tenant).queue.push(lambda, item);
        self.len += 1;
    }

    /// Total queued items across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items for one tenant.
    pub fn len_for_tenant(&self, tenant: u32) -> usize {
        self.slot(tenant).map_or(0, |s| s.queue.len())
    }

    /// Queued items for one lambda of one tenant.
    pub fn len_for(&self, tenant: u32, lambda: usize) -> usize {
        self.slot(tenant).map_or(0, |s| s.queue.len_for(lambda))
    }

    /// A tenant's service weight (1.0 when never configured).
    pub fn tenant_weight_of(&self, tenant: u32) -> f64 {
        self.slot(tenant).map_or(1.0, |s| s.weight)
    }

    /// A lambda's weight within its tenant (1.0 when never configured).
    pub fn lambda_weight_of(&self, tenant: u32, lambda: usize) -> f64 {
        self.slot(tenant).map_or(1.0, |s| s.queue.weight_of(lambda))
    }

    /// Dequeues under two-level weighted fairness. Returns the tenant id
    /// and lambda index alongside the item.
    pub fn pop(&mut self) -> Option<(u32, usize, T)> {
        self.pop_where(|_| true)
    }

    /// Dequeues under two-level weighted fairness, considering only
    /// tenants for which `eligible` returns true (e.g. tenants whose
    /// thread quota is not exhausted). Returns `None` when no eligible
    /// tenant has backlog, even if ineligible backlog remains.
    pub fn pop_where(&mut self, eligible: impl Fn(u32) -> bool) -> Option<(u32, usize, T)> {
        if !self
            .slots
            .iter()
            .any(|s| !s.queue.is_empty() && eligible(s.tenant))
        {
            return None;
        }
        // Tenant-tier credit WRR, mirroring the flat queue: serve the
        // first eligible backlogged tenant at >= 1 credit from the
        // cursor, topping up only eligible backlogged tenants when
        // nobody can afford a send.
        loop {
            let n = self.slots.len();
            let mut best: Option<usize> = None;
            for off in 0..n {
                let i = (self.cursor + off) % n;
                let s = &self.slots[i];
                if s.queue.is_empty() || !eligible(s.tenant) {
                    continue;
                }
                if s.credit >= 1.0 {
                    best = Some(i);
                    break;
                }
            }
            if let Some(i) = best {
                self.slots[i].credit -= 1.0;
                self.cursor = (i + 1) % n;
                let tenant = self.slots[i].tenant;
                let (lambda, item) = self.slots[i].queue.pop().expect("non-empty checked");
                self.len -= 1;
                // Idle or quota-blocked tenants must not hoard credit.
                for s in &mut self.slots {
                    if s.queue.is_empty() || !eligible(s.tenant) {
                        s.credit = 0.0;
                    }
                }
                return Some((tenant, lambda, item));
            }
            for s in &mut self.slots {
                if !s.queue.is_empty() && eligible(s.tenant) {
                    s.credit += s.weight;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_within_a_single_lambda() {
        let mut q = WeightedFairQueue::new();
        for i in 0..5 {
            q.push(0, i);
        }
        let order: Vec<i32> = (0..5).map(|_| q.pop().unwrap().1).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_weights_interleave() {
        let mut q = WeightedFairQueue::new();
        for i in 0..4 {
            q.push(0, i);
            q.push(1, i);
        }
        let lambdas: Vec<usize> = (0..8).map(|_| q.pop().unwrap().0).collect();
        // Within any window of 4, both lambdas appear exactly twice.
        for w in lambdas.windows(4) {
            let zeros = w.iter().filter(|&&l| l == 0).count();
            assert!((1..=3).contains(&zeros), "unfair window {w:?}");
        }
    }

    #[test]
    fn weights_shape_service_ratio() {
        let mut q = WeightedFairQueue::new();
        q.set_weight(0, 3.0);
        q.set_weight(1, 1.0);
        for i in 0..40 {
            q.push(0, i);
            q.push(1, i);
        }
        let first_20: Vec<usize> = (0..20).map(|_| q.pop().unwrap().0).collect();
        let zeros = first_20.iter().filter(|&&l| l == 0).count();
        // ~3:1 service ratio => about 15 of the first 20.
        assert!((13..=17).contains(&zeros), "got {zeros} of 20");
    }

    #[test]
    fn work_conserving_when_one_lambda_idle() {
        let mut q = WeightedFairQueue::new();
        q.set_weight(0, 1.0);
        q.set_weight(1, 100.0);
        // Only lambda 0 has work; it must be served immediately.
        q.push(0, "only");
        assert_eq!(q.pop(), Some((0, "only")));
    }

    #[test]
    fn idle_lambda_does_not_hoard_credit() {
        let mut q = WeightedFairQueue::new();
        q.set_weight(0, 1.0);
        q.set_weight(1, 1.0);
        // Serve a burst from lambda 0 alone.
        for i in 0..10 {
            q.push(0, i);
        }
        for _ in 0..10 {
            q.pop();
        }
        // Now both arrive; lambda 1 must not get a 10-item head start.
        for i in 0..6 {
            q.push(0, i);
            q.push(1, i);
        }
        let first_6: Vec<usize> = (0..6).map(|_| q.pop().unwrap().0).collect();
        let ones = first_6.iter().filter(|&&l| l == 1).count();
        assert!((2..=4).contains(&ones), "hoarded credit: {first_6:?}");
    }

    proptest! {
        /// Under a continuous backlog, each lambda's service share
        /// converges to its weight share (within rounding).
        #[test]
        fn service_shares_follow_weights(
            weights in proptest::collection::vec(1u32..8, 2..5),
            rounds in 100usize..400,
        ) {
            let mut q = WeightedFairQueue::new();
            for (i, &w) in weights.iter().enumerate() {
                q.set_weight(i, w as f64);
                for _ in 0..rounds {
                    q.push(i, ());
                }
            }
            let total_weight: u32 = weights.iter().sum();
            // Serve at most `rounds` items so even a lambda receiving
            // 100% of service could not drain its backlog (otherwise
            // work conservation shifts share to the others).
            let serve = rounds;
            let mut served = vec![0usize; weights.len()];
            for _ in 0..serve {
                let (l, _) = q.pop().expect("backlogged");
                served[l] += 1;
            }
            for (i, &w) in weights.iter().enumerate() {
                let expect = serve as f64 * w as f64 / total_weight as f64;
                let got = served[i] as f64;
                prop_assert!(
                    (got - expect).abs() <= expect * 0.25 + 2.0,
                    "lambda {} served {} expected ~{:.0} (weights {:?})",
                    i, got, expect, weights
                );
            }
        }

        /// No continuously-backlogged lambda starves: the gap between two
        /// consecutive services of lambda j is bounded by a constant factor
        /// of total_weight / w_j dequeues.
        #[test]
        fn no_backlogged_lambda_starves(
            weights in proptest::collection::vec(1u32..8, 2..5),
            rounds in 50usize..200,
        ) {
            let mut q = WeightedFairQueue::new();
            for (i, &w) in weights.iter().enumerate() {
                q.set_weight(i, w as f64);
                for _ in 0..rounds {
                    q.push(i, ());
                }
            }
            let total_weight: u32 = weights.iter().sum();
            let mut waited = vec![0u32; weights.len()];
            for _ in 0..rounds {
                let (served, _) = q.pop().expect("backlogged");
                waited[served] = 0;
                for (j, &w) in weights.iter().enumerate() {
                    if j != served && q.len_for(j) > 0 {
                        waited[j] += 1;
                        let bound = 4 * total_weight.div_ceil(w) + 8;
                        prop_assert!(
                            waited[j] <= bound,
                            "lambda {} (weight {}) starved for {} dequeues \
                             (bound {}, weights {:?})",
                            j, w, waited[j], bound, weights
                        );
                    }
                }
            }
        }

        /// Weight-normalized service stays tightly clustered across all
        /// continuously-backlogged lambdas (the per-window bound the online
        /// InvariantChecker enforces).
        #[test]
        fn normalized_service_spread_is_bounded(
            weights in proptest::collection::vec(1u32..8, 2..5),
            rounds in 100usize..300,
        ) {
            let mut q = WeightedFairQueue::new();
            for (i, &w) in weights.iter().enumerate() {
                q.set_weight(i, w as f64);
                for _ in 0..rounds {
                    q.push(i, ());
                }
            }
            let mut served = vec![0usize; weights.len()];
            for _ in 0..rounds {
                let (l, _) = q.pop().expect("backlogged");
                served[l] += 1;
            }
            let norms: Vec<f64> = weights
                .iter()
                .zip(&served)
                .map(|(&w, &s)| s as f64 / w as f64)
                .collect();
            let max = norms.iter().cloned().fold(f64::MIN, f64::max);
            let min = norms.iter().cloned().fold(f64::MAX, f64::min);
            prop_assert!(
                max - min <= 4.0,
                "normalized service spread {:.2} (served {:?}, weights {:?})",
                max - min, served, weights
            );
        }

        /// Pop never loses or invents items.
        #[test]
        fn conservation(
            pushes in proptest::collection::vec(0usize..4, 0..200),
        ) {
            let mut q = WeightedFairQueue::new();
            for (seq, &l) in pushes.iter().enumerate() {
                q.push(l, seq);
            }
            let mut seen = Vec::new();
            while let Some((_, item)) = q.pop() {
                seen.push(item);
            }
            prop_assert_eq!(seen.len(), pushes.len());
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..pushes.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn len_tracking() {
        let mut q = WeightedFairQueue::new();
        assert!(q.is_empty());
        q.push(2, 'x');
        q.push(0, 'y');
        assert_eq!(q.len(), 2);
        assert_eq!(q.len_for(2), 1);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn hierarchical_single_tenant_degenerates_to_flat() {
        let mut h = HierarchicalWfq::new();
        let mut f = WeightedFairQueue::new();
        h.set_lambda_weight(7, 0, 3.0);
        f.set_weight(0, 3.0);
        h.set_lambda_weight(7, 1, 1.0);
        f.set_weight(1, 1.0);
        for i in 0..20 {
            h.push(7, 0, i);
            f.push(0, i);
            h.push(7, 1, i);
            f.push(1, i);
        }
        for _ in 0..40 {
            let (t, hl, hi) = h.pop().unwrap();
            let (fl, fi) = f.pop().unwrap();
            assert_eq!(t, 7);
            assert_eq!((hl, hi), (fl, fi));
        }
    }

    #[test]
    fn tenant_weights_dominate_lambda_weights() {
        // Tenant 1 has one heavy lambda, tenant 2 four light ones; the
        // tenant tier still splits service by tenant weight (1:1), not
        // by lambda count or lambda weight.
        let mut q = HierarchicalWfq::new();
        q.set_tenant_weight(1, 1.0);
        q.set_tenant_weight(2, 1.0);
        q.set_lambda_weight(1, 0, 8.0);
        for i in 0..64 {
            q.push(1, 0, i);
            q.push(2, (i % 4) as usize, i);
        }
        let mut served = [0usize; 2];
        for _ in 0..64 {
            let (t, _, _) = q.pop().unwrap();
            served[(t - 1) as usize] += 1;
        }
        assert!(
            (28..=36).contains(&served[0]),
            "tenant split {served:?} not ~1:1"
        );
    }

    #[test]
    fn tenant_shares_follow_tenant_weights() {
        let mut q = HierarchicalWfq::new();
        q.set_tenant_weight(1, 3.0);
        q.set_tenant_weight(2, 1.0);
        for i in 0..40 {
            q.push(1, 0, i);
            q.push(2, 0, i);
        }
        let first_20: Vec<u32> = (0..20).map(|_| q.pop().unwrap().0).collect();
        let t1 = first_20.iter().filter(|&&t| t == 1).count();
        assert!((13..=17).contains(&t1), "got {t1} of 20");
    }

    #[test]
    fn pop_where_skips_ineligible_tenants() {
        let mut q = HierarchicalWfq::new();
        q.set_tenant_weight(1, 100.0);
        q.set_tenant_weight(2, 1.0);
        for i in 0..4 {
            q.push(1, 0, i);
            q.push(2, 0, i);
        }
        // Tenant 1 is quota-blocked: only tenant 2 may be served.
        for _ in 0..4 {
            let (t, _, _) = q.pop_where(|t| t != 1).unwrap();
            assert_eq!(t, 2);
        }
        assert_eq!(q.pop_where(|t| t != 1), None, "only blocked backlog left");
        assert_eq!(q.len(), 4);
        // Unblocking resumes service without a hoarded-credit burst
        // penalty against tenant 2 later.
        assert_eq!(q.pop().map(|(t, _, _)| t), Some(1));
    }

    #[test]
    fn hierarchical_work_conserving_when_tenant_idle() {
        let mut q = HierarchicalWfq::new();
        q.set_tenant_weight(1, 1.0);
        q.set_tenant_weight(2, 100.0);
        q.push(1, 3, "only");
        assert_eq!(q.pop(), Some((1, 3, "only")));
        assert!(q.is_empty());
    }

    proptest! {
        /// Under continuous backlog, tenant-tier service shares converge
        /// to tenant weights regardless of per-tenant lambda fan-out.
        #[test]
        fn hierarchical_tenant_shares_follow_weights(
            weights in proptest::collection::vec(1u32..8, 2..5),
            fanout in proptest::collection::vec(1usize..4, 2..5),
            rounds in 100usize..300,
        ) {
            let mut q = HierarchicalWfq::new();
            let n = weights.len().min(fanout.len());
            for t in 0..n {
                q.set_tenant_weight(t as u32, weights[t] as f64);
                for _ in 0..rounds {
                    for l in 0..fanout[t] {
                        q.push(t as u32, l, ());
                    }
                }
            }
            let total_weight: u32 = weights[..n].iter().sum();
            let mut served = vec![0usize; n];
            for _ in 0..rounds {
                let (t, _, _) = q.pop().expect("backlogged");
                served[t as usize] += 1;
            }
            for t in 0..n {
                let expect = rounds as f64 * weights[t] as f64 / total_weight as f64;
                let got = served[t] as f64;
                prop_assert!(
                    (got - expect).abs() <= expect * 0.25 + 2.0,
                    "tenant {} served {} expected ~{:.0} (weights {:?})",
                    t, got, expect, &weights[..n]
                );
            }
        }

        /// Pop never loses or invents items across the hierarchy.
        #[test]
        fn hierarchical_conservation(
            pushes in proptest::collection::vec((0u32..3, 0usize..3), 0..200),
        ) {
            let mut q = HierarchicalWfq::new();
            for (seq, &(t, l)) in pushes.iter().enumerate() {
                q.push(t, l, seq);
            }
            let mut seen = Vec::new();
            while let Some((_, _, item)) = q.pop() {
                seen.push(item);
            }
            prop_assert_eq!(seen.len(), pushes.len());
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..pushes.len()).collect::<Vec<_>>());
        }
    }
}
