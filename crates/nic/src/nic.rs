//! The SmartNIC component: scheduler, NPU thread pool, RDMA engine, and
//! firmware management.
//!
//! Implements §5's execution model: every core runs the same
//! Match+Lambda image; the hardware scheduler uniformly distributes
//! single-packet requests to threads; lambdas run to completion on their
//! thread (§4.2-D1); multi-packet messages are committed to NIC memory
//! over RDMA and dispatched once reassembled (§4.2-D3); packets that match
//! no lambda are punted to the host OS across PCIe.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use rand::Rng;

use lnic_mlambda::compile::Firmware;
use lnic_mlambda::cost::{exec_cycles, mem_charge_cycles};
use lnic_mlambda::interp::{Execution, HeaderValues, ObjectMemory, RequestCtx, StepOutcome};
use lnic_mlambda::ir::retcode;
use lnic_mlambda::program::{DispatchCtx, DispatchResult, Program};
use lnic_net::frag::Reassembler;
use lnic_net::packet::{LambdaHdr, LambdaKind, Packet};
use lnic_net::{Ipv4Addr, MacAddr, SocketAddr};
use lnic_sim::prelude::*;

use lnic_tenant::cache::{Access, FirmwareCache};
use lnic_tenant::{TenancyConfig, TenantDirectory, TenantId, DEFAULT_TENANT};

use crate::params::{ExecMode, NicParams};
use crate::wfq::HierarchicalWfq;

/// How the scheduler picks a thread for an incoming request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// The Netronome scheduler: work-conserving, uniformly random over
    /// idle threads (§5).
    #[default]
    UniformRandom,
    /// Deterministic round-robin (ablation).
    RoundRobin,
}

/// A remote service a lambda can call with [`lnic_mlambda::ir::Instr::NetRpc`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceEndpoint {
    /// L2 address of (the NIC in front of) the service.
    pub mac: MacAddr,
    /// UDP endpoint of the service.
    pub addr: SocketAddr,
}

/// Control message: load (swap) the NIC firmware. Incurs
/// [`NicParams::firmware_swap_time`] of downtime (§7).
#[derive(Debug)]
pub struct LoadFirmware {
    /// The compiled image.
    pub firmware: Arc<Firmware>,
    /// Fencing token of the deploy (0 = fencing disabled). A worker
    /// holding a higher epoch refuses the image: it was cut for a
    /// placement decision that has since been superseded.
    pub epoch: u64,
}

impl LoadFirmware {
    /// A deploy outside any fencing regime (epoch 0).
    pub fn unfenced(firmware: Arc<Firmware>) -> Self {
        LoadFirmware { firmware, epoch: 0 }
    }
}

pub use lnic_net::transport::UpdateService;

/// NIC → resident service: a single-packet `Request` for a workload
/// registered with [`Nic::register_resident`], intercepted ahead of the
/// firmware dispatch path. The resident answers with [`ResidentDone`].
#[derive(Debug)]
pub struct ResidentCall {
    /// Correlates the eventual [`ResidentDone`] with the reply state the
    /// NIC keeps (headers of the request packet).
    pub token: u64,
    /// The request's λ-NIC header.
    pub hdr: LambdaHdr,
    /// The request payload.
    pub payload: Bytes,
}

/// Resident service → NIC: completes the call `token`; the NIC builds
/// and transmits the response packet, stamping queue depth and epoch
/// exactly like a lambda response.
#[derive(Debug)]
pub struct ResidentDone {
    /// The [`ResidentCall`] token being answered.
    pub token: u64,
    /// Response return code (`RC_OK`, `RC_REDIRECT`, ...).
    pub return_code: u16,
    /// Response payload.
    pub payload: Bytes,
}

/// NIC → resident service: a raw `RdmaWrite` frame addressed to a
/// resident workload (replication traffic). The resident runs its own
/// reassembler; the NIC does not interpret these.
#[derive(Debug)]
pub struct ResidentFrame {
    /// The undecoded frame.
    pub packet: Packet,
}

/// Resident service → NIC: transmit a fully-built packet on the wire
/// (replica-to-replica replication traffic originates here).
#[derive(Debug)]
pub struct ResidentTx {
    /// The packet to transmit.
    pub packet: Packet,
}

/// NIC → resident service: the worker's fencing epoch rose (lease grant
/// after a partition rejoin). Residents derive leadership fences from
/// this: a replica whose worker was fenced must step down.
#[derive(Debug)]
pub struct ResidentEpoch {
    /// The new epoch.
    pub epoch: u64,
}

/// Reply state for one outstanding [`ResidentCall`].
#[derive(Debug)]
struct ResidentReply {
    /// The request packet (headers only) used to construct the reply.
    reply_template: Packet,
    req_hdr: LambdaHdr,
}

/// Counters exposed for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NicCounters {
    /// Lambda requests accepted.
    pub requests: u64,
    /// Responses sent.
    pub responses: u64,
    /// Packets punted to the host OS.
    pub punted_to_host: u64,
    /// Packets dropped because no firmware is loaded or a swap is in
    /// progress.
    pub dropped_downtime: u64,
    /// Lambda executions that faulted (bounds, fuel, RPC failure).
    pub faults: u64,
    /// Firmware swaps completed.
    pub swaps: u64,
    /// RDMA fragments committed.
    pub rdma_fragments: u64,
    /// Requests that waited in the WFQ (all threads busy).
    pub queued: u64,
    /// Crashes injected.
    pub crashes: u64,
    /// Packets blackholed while the NIC was crashed.
    pub dropped_crashed: u64,
    /// In-flight jobs (running or queued) lost to crashes.
    pub jobs_lost: u64,
    /// Requests refused at dequeue because their propagated deadline had
    /// already expired (answered with `RC_EXPIRED`, not executed).
    pub deadline_drops: u64,
    /// Requests or deploys refused because they carried a stale fencing
    /// token, or because the worker's own lease had lapsed (answered
    /// with `RC_FENCED`, not executed).
    pub fenced_rejects: u64,
    /// Firmware faults: requests whose lambda's instruction-store page
    /// was not resident and had to page in (tenancy enabled only).
    pub firmware_faults: u64,
    /// Firmware pages evicted to make room for fault-ins.
    pub firmware_evictions: u64,
    /// Requests queued because their tenant's NPU-thread quota was
    /// exhausted even though idle threads existed.
    pub quota_deferrals: u64,
}

/// Per-worker multi-tenant runtime state: the shared directory, the
/// virtualized instruction store, and the thread-quota accounting.
struct TenantRuntime {
    dir: Arc<TenantDirectory>,
    cfg: TenancyConfig,
    /// The LRU firmware cache virtualizing the instruction store:
    /// resident lambdas execute immediately, cold ones pay a paging
    /// charge (the per-lambda analogue of a whole-image swap).
    cache: FirmwareCache,
    /// Lambda threads currently executing each tenant's work.
    busy: HashMap<TenantId, usize>,
}

#[derive(Debug)]
enum Phase {
    /// Emit the response and free the thread.
    Finish { response: Bytes, code: u16 },
    /// Send the pending lambda RPC.
    SendRpc { service: u16, payload: Bytes },
}

struct Job {
    lambda_idx: usize,
    /// The tenant whose thread-quota slot this job occupies.
    tenant_id: TenantId,
    exec: Execution,
    /// The request packet (headers only) used to construct the reply.
    reply_template: Packet,
    /// The request's λ-NIC header.
    req_hdr: LambdaHdr,
    /// Cycles already converted into virtual time.
    charged_cycles: u64,
    /// Fixed cycles charged before execution (parse/match, reorder).
    overhead_cycles: u64,
    /// Next action once the current compute delay elapses.
    phase: Option<Phase>,
    /// Monotonic sequence for RPC attempts (invalidates stale timeouts).
    rpc_seq: u64,
    /// Attempts used for the current RPC.
    rpc_attempt: u32,
}

enum ThreadState {
    Idle,
    /// Computing until the scheduled `ThreadPhase` fires.
    Computing(Job),
    /// Suspended on a lambda RPC.
    AwaitingRpc(Job),
}

struct Thread {
    state: ThreadState,
    epoch: u64,
}

/// One request ready for dispatch to a thread.
#[derive(Debug)]
struct PendingRequest {
    lambda_idx: usize,
    /// The owning tenant per the directory (scheduling identity).
    tenant_id: TenantId,
    ctx: RequestCtx,
    reply_template: Packet,
    req_hdr: LambdaHdr,
    extra_cycles: u64,
}

#[derive(Debug)]
struct ThreadPhase {
    thread: usize,
    epoch: u64,
}

#[derive(Debug)]
struct RpcTimeout {
    thread: usize,
    epoch: u64,
    rpc_seq: u64,
}

#[derive(Debug)]
struct SwapDone {
    firmware: Arc<Firmware>,
    /// Guards against swaps started before a crash landing afterwards.
    swap_epoch: u64,
}

/// Pipelined mode: the parse/match stage finished for this request.
#[derive(Debug)]
struct StageDone {
    pending: PendingRequest,
}

/// The simulated SmartNIC.
///
/// Wire it to a switch via a simplex uplink [`lnic_net::link::Link`], load
/// a [`Firmware`], and send it [`Packet`]s.
pub struct Nic {
    params: NicParams,
    mac: MacAddr,
    ip: Ipv4Addr,
    uplink: ComponentId,
    host: Option<ComponentId>,
    services: HashMap<u16, ServiceEndpoint>,
    dispatch_policy: DispatchPolicy,

    firmware: Option<Arc<Firmware>>,
    program: Option<Arc<Program>>,
    deployed_mem: Vec<ObjectMemory>,
    swapping: bool,
    /// Power/fault state: a crashed NIC blackholes everything until a
    /// [`lnic_sim::fault::Restart`] re-enters through the swap path.
    crashed: bool,
    /// Last installed image, reloaded on restart (the controller's copy
    /// of record survives the crash; the NIC's running state does not).
    last_firmware: Option<Arc<Firmware>>,
    /// Bumped on crash so in-flight [`SwapDone`] events become stale.
    swap_epoch: u64,
    /// The control processor defers all work until this instant.
    stalled_until: SimTime,
    /// Gray failure: compute runs `slow_factor`× slower until
    /// `slow_until` (the NIC still answers health pings — only
    /// latency-based fail-slow detection can see this).
    slow_until: SimTime,
    slow_factor: f64,
    /// Membership: the fencing token this worker currently serves under.
    /// Only ever increases; survives crashes (modeled as stable storage,
    /// as a production epoch would be).
    lease_epoch: u64,
    /// Lease expiry. `None` until the first grant arrives (no fencing
    /// regime: legacy heartbeat-free testbeds keep working); once
    /// leased, the worker self-fences when the clock passes this.
    lease_until: Option<SimTime>,
    /// Partition windows: direct control messages from these component
    /// indices are blackholed until the stored instant.
    cut_from: HashMap<usize, SimTime>,
    /// NIC-resident services by workload id: intercepted ahead of the
    /// firmware dispatch path and delegated to a co-located component
    /// (the replicated KV replica).
    resident: HashMap<u32, ComponentId>,
    /// Outstanding [`ResidentCall`]s awaiting their [`ResidentDone`].
    resident_pending: HashMap<u64, ResidentReply>,
    resident_next_token: u64,

    threads: Vec<Thread>,
    idle: Vec<usize>,
    rr_next: usize,
    /// Two-level wait queue: tenants share capacity by tenant weight,
    /// lambdas within a tenant by lambda weight. With tenancy disabled
    /// every request lands under [`DEFAULT_TENANT`] and the hierarchy
    /// degenerates to the flat per-lambda WFQ exactly.
    queue: HierarchicalWfq<PendingRequest>,
    /// Lambda WFQ weights by index, applied lazily to whichever tenant
    /// slice the lambda's requests arrive under.
    lambda_weights: HashMap<usize, f64>,
    /// Multi-tenant runtime; `None` keeps the single-tenant behavior.
    tenancy: Option<TenantRuntime>,
    reassembler: Reassembler,

    counters: NicCounters,
    /// Per-request NIC-side service time (arrival to response emission).
    service_time: Series,
    arrival_times: HashMap<(usize, u64), SimTime>,
    /// Pipelined mode: next-free times of the parse/match stage threads.
    stage_free_at: Vec<SimTime>,
}

impl Nic {
    /// Creates a NIC with the given identity and uplink.
    pub fn new(params: NicParams, mac: MacAddr, ip: Ipv4Addr, uplink: ComponentId) -> Self {
        // In pipelined mode, stage threads are carved out of the pool.
        let (lambda_threads, stage_threads) = match params.exec_mode {
            ExecMode::RunToCompletion => (params.threads(), 0),
            ExecMode::Pipelined { stage_threads, .. } => {
                assert!(
                    stage_threads > 0 && stage_threads < params.threads(),
                    "pipelined mode needs stage threads and lambda threads"
                );
                (params.threads() - stage_threads, stage_threads)
            }
        };
        let threads = (0..lambda_threads)
            .map(|_| Thread {
                state: ThreadState::Idle,
                epoch: 0,
            })
            .collect::<Vec<_>>();
        let idle = (0..lambda_threads).rev().collect();
        let stage_free_at = vec![SimTime::ZERO; stage_threads];
        Nic {
            params,
            mac,
            ip,
            uplink,
            host: None,
            services: HashMap::new(),
            dispatch_policy: DispatchPolicy::default(),
            firmware: None,
            program: None,
            deployed_mem: Vec::new(),
            swapping: false,
            crashed: false,
            last_firmware: None,
            swap_epoch: 0,
            stalled_until: SimTime::ZERO,
            slow_until: SimTime::ZERO,
            slow_factor: 1.0,
            lease_epoch: 0,
            lease_until: None,
            cut_from: HashMap::new(),
            resident: HashMap::new(),
            resident_pending: HashMap::new(),
            resident_next_token: 0,
            threads,
            idle,
            rr_next: 0,
            queue: HierarchicalWfq::new(),
            lambda_weights: HashMap::new(),
            tenancy: None,
            reassembler: Reassembler::new(),
            counters: NicCounters::default(),
            service_time: Series::new("nic_service_time"),
            arrival_times: HashMap::new(),
            stage_free_at,
        }
    }

    /// Sets the host component packets are punted to.
    pub fn with_host(mut self, host: ComponentId) -> Self {
        self.host = Some(host);
        self
    }

    /// Registers a callable service endpoint.
    pub fn with_service(mut self, id: u16, endpoint: ServiceEndpoint) -> Self {
        self.services.insert(id, endpoint);
        self
    }

    /// The endpoint this worker currently resolves `service` to.
    pub fn service(&self, id: u16) -> Option<ServiceEndpoint> {
        self.services.get(&id).copied()
    }

    /// Registers a NIC-resident service: packets for `workload_id` are
    /// intercepted ahead of the firmware dispatch path and delegated to
    /// `component` (which must be co-located with this NIC — it speaks
    /// [`ResidentCall`]/[`ResidentDone`] and shares the NIC's fate on
    /// crash and fencing).
    pub fn register_resident(&mut self, workload_id: u32, component: ComponentId) {
        self.resident.insert(workload_id, component);
    }

    /// Overrides the dispatch policy (ablation).
    pub fn with_dispatch_policy(mut self, policy: DispatchPolicy) -> Self {
        self.dispatch_policy = policy;
        self
    }

    /// Changes the dispatch policy on a constructed NIC (ablation).
    pub fn set_dispatch_policy(&mut self, policy: DispatchPolicy) {
        self.dispatch_policy = policy;
    }

    /// Installs firmware immediately (no swap downtime); for experiment
    /// setup where the image is in place before traffic starts.
    pub fn preload(mut self, firmware: Arc<Firmware>) -> Self {
        self.install(firmware);
        self
    }

    /// Installs firmware immediately on an already-constructed NIC (no
    /// swap downtime); the post-construction form of [`Nic::preload`].
    ///
    /// An out-of-band image push supersedes any in-flight swap: the
    /// pending swap completion is invalidated and the NIC serves the
    /// new image at once (disaster drills re-image a recovered rack
    /// this way instead of waiting out the self-reload swap).
    pub fn install_now(&mut self, firmware: Arc<Firmware>) {
        if self.swapping {
            self.swapping = false;
            self.swap_epoch += 1;
        }
        self.install(firmware);
    }

    /// Sets a lambda's WFQ weight (within its tenant's slice).
    pub fn set_weight(&mut self, lambda_idx: usize, weight: f64) {
        self.lambda_weights.insert(lambda_idx, weight);
        self.queue
            .set_lambda_weight(DEFAULT_TENANT, lambda_idx, weight);
    }

    /// Turns on multi-tenant virtualization: requests are scheduled
    /// under their workload's owning tenant (hierarchical WFQ weighted
    /// by the directory), NPU-thread quotas gate dispatch, and the
    /// instruction store is virtualized behind an LRU firmware cache —
    /// cold lambdas fault their page in, charged as execution overhead
    /// on the faulting request.
    pub fn enable_tenancy(&mut self, dir: Arc<TenantDirectory>, cfg: TenancyConfig) {
        for t in dir.tenants() {
            self.queue.set_tenant_weight(t, dir.weight_of(t));
        }
        self.tenancy = Some(TenantRuntime {
            cache: FirmwareCache::new(cfg.cache_words),
            busy: HashMap::new(),
            dir,
            cfg,
        });
    }

    /// The tenant a workload is scheduled under: its owner per the
    /// directory, or [`DEFAULT_TENANT`] when tenancy is disabled.
    fn sched_tenant(&self, workload_id: u32) -> TenantId {
        self.tenancy
            .as_ref()
            .map_or(DEFAULT_TENANT, |t| t.dir.tenant_of(workload_id))
    }

    /// Whether `tenant` may occupy another lambda thread right now.
    fn thread_budget_ok(&self, tenant: TenantId) -> bool {
        let Some(rt) = &self.tenancy else { return true };
        let quota = rt.dir.spec_of(tenant).thread_quota;
        quota == 0 || rt.busy.get(&tenant).copied().unwrap_or(0) < quota
    }

    /// Instruction-store words of one lambda's firmware page.
    fn page_words(program: &Program, lambda_idx: usize) -> u64 {
        program.lambdas[lambda_idx].instrs().count() as u64
    }

    /// The NIC's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// The NIC's IP address.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// Experiment counters.
    pub fn counters(&self) -> NicCounters {
        self.counters
    }

    /// NIC-side service-time samples (arrival to response emission).
    pub fn service_time(&self) -> &Series {
        &self.service_time
    }

    /// Bytes of NIC memory the current deployment occupies (Table 3):
    /// the image plus the runtime's resident allocations.
    pub fn memory_in_use_bytes(&self) -> u64 {
        self.firmware
            .as_ref()
            .map_or(0, |f| f.size_bytes() + self.params.runtime_resident_bytes)
    }

    /// Number of lambda threads currently busy (excludes dedicated
    /// parse/match stage threads in pipelined mode).
    pub fn busy_threads(&self) -> usize {
        self.threads.len() - self.idle.len()
    }

    /// Requests waiting for a thread.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the NIC is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// The fencing token this worker currently serves under.
    pub fn lease_epoch(&self) -> u64 {
        self.lease_epoch
    }

    /// Whether the worker holds a live lease at `now` (vacuously true
    /// when no lease regime has ever been established).
    pub fn lease_live(&self, now: SimTime) -> bool {
        self.lease_until.is_none_or(|until| now < until)
    }

    /// Whether a direct control message from `peer` is inside an active
    /// partition cut.
    fn is_cut_from(&self, now: SimTime, peer: ComponentId) -> bool {
        self.cut_from
            .get(&peer.index())
            .is_some_and(|&until| now < until)
    }

    /// Returns the worker's epoch when the given header must be fenced:
    /// either the worker's own lease lapsed (self-fence until rejoin),
    /// or the work carries a token older than the current epoch. Epoch
    /// 0 marks unfenced traffic (worker-to-worker RPCs, testbeds
    /// without a lease regime) and bypasses the staleness comparison —
    /// it is still refused once the lease lapses.
    fn fence_check(&self, hdr: &LambdaHdr, now: SimTime) -> Option<u64> {
        self.lease_until?;
        if !self.lease_live(now) || (hdr.epoch != 0 && hdr.epoch < self.lease_epoch) {
            return Some(self.lease_epoch);
        }
        None
    }

    /// Refuses fenced work with a typed `RC_FENCED` reply so the sender
    /// re-resolves the placement instead of waiting out its timer.
    fn reject_fenced(&mut self, ctx: &mut Ctx<'_>, pending: &PendingRequest, worker_epoch: u64) {
        self.counters.fenced_rejects += 1;
        let hdr = pending.req_hdr;
        ctx.emit(|| TraceEvent::FencedReject {
            request_id: hdr.request_id,
            workload_id: hdr.workload_id,
            hdr_epoch: hdr.epoch,
            worker_epoch,
        });
        let mut resp_hdr = hdr.response_to(lnic_net::packet::RC_FENCED);
        resp_hdr.queue_depth = self.queue.len().min(u16::MAX as usize) as u16;
        resp_hdr.epoch = self.lease_epoch;
        let packet = pending
            .reply_template
            .reply_to()
            .lambda(resp_hdr)
            .payload(Bytes::new())
            .build();
        ctx.send(self.uplink, SimDuration::ZERO, packet);
        self.arrival_times
            .remove(&(pending.lambda_idx, hdr.request_id));
    }

    fn install(&mut self, firmware: Arc<Firmware>) {
        let program = Arc::new(firmware.program.clone());
        self.deployed_mem = program
            .lambdas
            .iter()
            .map(ObjectMemory::for_lambda)
            .collect();
        self.program = Some(program);
        self.last_firmware = Some(Arc::clone(&firmware));
        self.firmware = Some(firmware);
    }

    /// Fails the NIC: every in-flight job (running or queued) is lost,
    /// per-lambda state is wiped, and arrivals blackhole until restart.
    fn crash(&mut self, ctx: &mut Ctx<'_>) {
        if self.crashed {
            return;
        }
        self.crashed = true;
        self.counters.crashes += 1;
        let in_flight = self.busy_threads() + self.queue.len();
        self.counters.jobs_lost += in_flight as u64;
        ctx.trace(|| format!("nic crash, {in_flight} jobs lost"));
        ctx.emit(|| TraceEvent::Fault {
            kind: "crash",
            detail: in_flight as u64,
        });
        for t in &mut self.threads {
            t.epoch += 1; // invalidate every pending phase/RPC timer
            t.state = ThreadState::Idle;
        }
        self.idle = (0..self.threads.len()).rev().collect();
        self.rr_next = 0;
        while self.queue.pop().is_some() {}
        // The instruction store and quota accounting are volatile.
        if let Some(rt) = &mut self.tenancy {
            rt.busy.clear();
            rt.cache = FirmwareCache::new(rt.cfg.cache_words);
        }
        self.reassembler = Reassembler::new();
        self.arrival_times.clear();
        self.resident_pending.clear();
        for slot in &mut self.stage_free_at {
            *slot = SimTime::ZERO;
        }
        // Volatile deployment state is gone; any in-progress swap dies
        // with the NIC.
        self.firmware = None;
        self.program = None;
        self.deployed_mem = Vec::new();
        self.swapping = false;
        self.swap_epoch += 1;
        // A lease does not survive a crash: the restarted worker must
        // not serve until the controller renews it (the epoch itself is
        // stable storage and persists).
        if self.lease_until.is_some() {
            self.lease_until = Some(SimTime::ZERO);
        }
    }

    /// Recovers a crashed NIC: power back on and re-enter service by
    /// reloading the last installed image through the firmware-swap
    /// path, paying [`NicParams::firmware_swap_time`] of downtime.
    fn restart(&mut self, ctx: &mut Ctx<'_>) {
        if !self.crashed {
            return;
        }
        self.crashed = false;
        ctx.emit(|| TraceEvent::Fault {
            kind: "restart",
            detail: 0,
        });
        if let Some(firmware) = self.last_firmware.clone() {
            self.swapping = true;
            ctx.send_self(
                self.params.firmware_swap_time,
                SwapDone {
                    firmware,
                    swap_epoch: self.swap_epoch,
                },
            );
        }
    }

    fn alloc_thread(&mut self, rng: &mut impl Rng) -> Option<usize> {
        if self.idle.is_empty() {
            return None;
        }
        let pick = match self.dispatch_policy {
            DispatchPolicy::UniformRandom => rng.gen_range(0..self.idle.len()),
            DispatchPolicy::RoundRobin => {
                self.rr_next = (self.rr_next + 1) % self.idle.len();
                self.rr_next
            }
        };
        Some(self.idle.swap_remove(pick))
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        if self.crashed {
            self.counters.dropped_crashed += 1;
            return;
        }
        // Lambda RPC responses come back on the per-thread port range.
        if packet.lambda.is_none() {
            let port = packet.udp.dst_port;
            let base = self.params.rpc_port_base;
            let nthreads = self.threads.len() as u16;
            if port >= base && port < base + nthreads {
                self.on_rpc_response(ctx, (port - base) as usize, packet.payload);
                return;
            }
            self.punt_to_host(ctx, packet);
            return;
        }

        // Resident services bypass the firmware path entirely: they are
        // live across swaps and do not need an image loaded.
        if let Some(hdr) = packet.lambda {
            if let Some(&svc) = self.resident.get(&hdr.workload_id) {
                self.on_resident_packet(ctx, svc, packet, hdr);
                return;
            }
        }

        if self.swapping || self.firmware.is_none() {
            self.counters.dropped_downtime += 1;
            return;
        }

        let hdr = packet.lambda.expect("checked above");
        match hdr.kind {
            LambdaKind::Request => {
                if hdr.frag_count <= 1 {
                    self.dispatch_request(ctx, packet, hdr, Bytes::new(), 0);
                } else {
                    // Multi-packet requests must arrive as RDMA writes.
                    self.counters.punted_to_host += 1;
                }
            }
            LambdaKind::RdmaWrite => {
                self.counters.rdma_fragments += 1;
                let payload = packet.payload.clone();
                if let Some(done) = self.reassembler.accept(hdr, payload) {
                    // Reordering cost is charged as extra NPU cycles; the
                    // RDMA commit itself delayed the trigger event.
                    let commit_ns = self.params.rdma_commit_ns_per_kb
                        * (done.payload.len() as u64).div_ceil(1024);
                    let extra = done.reorder_instrs;
                    let assembled = done.payload;
                    // The completion event (RdmaComplete) fires after the
                    // commit delay; model by delaying dispatch.
                    let pkt = packet;
                    let hdr_full = LambdaHdr {
                        frag_index: 0,
                        frag_count: 1,
                        ..hdr
                    };
                    ctx.send_self(
                        SimDuration::from_nanos(commit_ns),
                        RdmaDispatch {
                            packet: pkt,
                            hdr: hdr_full,
                            payload: assembled,
                            extra_cycles: extra,
                        },
                    );
                }
            }
            LambdaKind::Response | LambdaKind::RdmaComplete => {
                self.punt_to_host(ctx, packet);
            }
        }
    }

    /// Hands an intercepted packet to a co-located resident service.
    /// Requests pass the same fencing and deadline gates as dispatched
    /// lambda work; replication frames (`RdmaWrite`) pass through raw —
    /// the resident runs its own reassembler, and the raft layer above
    /// it carries its own epoch discipline.
    fn on_resident_packet(
        &mut self,
        ctx: &mut Ctx<'_>,
        svc: ComponentId,
        packet: Packet,
        hdr: LambdaHdr,
    ) {
        match hdr.kind {
            LambdaKind::Request => {
                self.counters.requests += 1;
                let refuse = |nic: &mut Nic, ctx: &mut Ctx<'_>, code: u16| {
                    let mut resp_hdr = hdr.response_to(code);
                    resp_hdr.queue_depth = nic.queue.len().min(u16::MAX as usize) as u16;
                    resp_hdr.epoch = nic.lease_epoch;
                    let reply = packet
                        .reply_to()
                        .lambda(resp_hdr)
                        .payload(Bytes::new())
                        .build();
                    ctx.send(nic.uplink, SimDuration::ZERO, reply);
                };
                if let Some(worker_epoch) = self.fence_check(&hdr, ctx.now()) {
                    self.counters.fenced_rejects += 1;
                    ctx.emit(|| TraceEvent::FencedReject {
                        request_id: hdr.request_id,
                        workload_id: hdr.workload_id,
                        hdr_epoch: hdr.epoch,
                        worker_epoch,
                    });
                    refuse(self, ctx, lnic_net::packet::RC_FENCED);
                    return;
                }
                if hdr.expired_at(ctx.now().as_nanos()) {
                    self.counters.deadline_drops += 1;
                    let overdue_ns = ctx.now().as_nanos().saturating_sub(hdr.deadline_ns);
                    ctx.emit(|| TraceEvent::DeadlineDrop {
                        request_id: hdr.request_id,
                        workload_id: hdr.workload_id,
                        overdue_ns,
                    });
                    refuse(self, ctx, lnic_net::packet::RC_EXPIRED);
                    return;
                }
                let token = self.resident_next_token;
                self.resident_next_token += 1;
                let payload = packet.payload.clone();
                let mut reply_template = packet;
                reply_template.payload = Bytes::new();
                self.resident_pending.insert(
                    token,
                    ResidentReply {
                        reply_template,
                        req_hdr: hdr,
                    },
                );
                ctx.send(
                    svc,
                    SimDuration::ZERO,
                    ResidentCall {
                        token,
                        hdr,
                        payload,
                    },
                );
            }
            LambdaKind::RdmaWrite => {
                self.counters.rdma_fragments += 1;
                ctx.send(svc, SimDuration::ZERO, ResidentFrame { packet });
            }
            LambdaKind::Response | LambdaKind::RdmaComplete => self.punt_to_host(ctx, packet),
        }
    }

    fn dispatch_request(
        &mut self,
        ctx: &mut Ctx<'_>,
        packet: Packet,
        hdr: LambdaHdr,
        assembled_payload: Bytes,
        extra_cycles: u64,
    ) {
        let program = self.program.as_ref().expect("firmware installed").clone();
        let dctx = DispatchCtx {
            workload_id: hdr.workload_id,
            dst_port: packet.udp.dst_port,
            dst_ip: packet.ipv4.dst.to_bits(),
            has_lambda_hdr: true,
        };
        match program.dispatch(&dctx) {
            DispatchResult::ToHost => self.punt_to_host(ctx, packet),
            DispatchResult::Invoke { lambda, params } => {
                self.counters.requests += 1;
                let payload = if assembled_payload.is_empty() {
                    packet.payload.clone()
                } else {
                    assembled_payload
                };
                let req = RequestCtx {
                    headers: HeaderValues {
                        workload_id: hdr.workload_id,
                        request_id: hdr.request_id,
                        frag_index: hdr.frag_index,
                        frag_count: hdr.frag_count,
                        return_code: hdr.return_code,
                        src_ip: packet.ipv4.src.to_bits(),
                        dst_ip: packet.ipv4.dst.to_bits(),
                        src_port: packet.udp.src_port,
                        dst_port: packet.udp.dst_port,
                    },
                    payload,
                    match_data: params,
                };
                let mut reply_template = packet;
                reply_template.payload = Bytes::new();
                let pending = PendingRequest {
                    lambda_idx: lambda,
                    tenant_id: self.sched_tenant(hdr.workload_id),
                    ctx: req,
                    reply_template,
                    req_hdr: hdr,
                    extra_cycles,
                };
                self.arrival_times
                    .insert((lambda, hdr.request_id), ctx.now());
                match self.params.exec_mode {
                    ExecMode::RunToCompletion => self.admit_to_thread(ctx, pending),
                    ExecMode::Pipelined { handoff_cycles, .. } => {
                        // The parse/match stage serializes over its own
                        // thread pool, then hands off across cores.
                        let firmware = self.firmware.as_ref().expect("firmware installed");
                        let service = self
                            .params
                            .cycles_to_time(firmware.parse_match_cycles() + handoff_cycles);
                        let slot = self
                            .stage_free_at
                            .iter_mut()
                            .min()
                            .expect("stage pool is non-empty");
                        let start = (*slot).max(ctx.now());
                        *slot = start + service;
                        let done_in = *slot - ctx.now();
                        ctx.send_self(done_in, StageDone { pending });
                    }
                }
            }
        }
    }

    /// Refuses an expired request at dequeue: answer `RC_EXPIRED` so the
    /// sender resolves the request promptly instead of waiting out its
    /// retransmission timer, and spend no NPU cycles on it.
    fn reject_expired(&mut self, ctx: &mut Ctx<'_>, pending: &PendingRequest) {
        self.counters.deadline_drops += 1;
        let hdr = pending.req_hdr;
        let overdue_ns = ctx.now().as_nanos().saturating_sub(hdr.deadline_ns);
        ctx.emit(|| TraceEvent::DeadlineDrop {
            request_id: hdr.request_id,
            workload_id: hdr.workload_id,
            overdue_ns,
        });
        let mut resp_hdr = hdr.response_to(lnic_net::packet::RC_EXPIRED);
        resp_hdr.queue_depth = self.queue.len().min(u16::MAX as usize) as u16;
        resp_hdr.epoch = self.lease_epoch;
        let packet = pending
            .reply_template
            .reply_to()
            .lambda(resp_hdr)
            .payload(Bytes::new())
            .build();
        ctx.send(self.uplink, SimDuration::ZERO, packet);
        self.arrival_times
            .remove(&(pending.lambda_idx, hdr.request_id));
    }

    /// Assigns the request to an idle lambda thread or queues it.
    fn admit_to_thread(&mut self, ctx: &mut Ctx<'_>, pending: PendingRequest) {
        if let Some(epoch) = self.fence_check(&pending.req_hdr, ctx.now()) {
            self.reject_fenced(ctx, &pending, epoch);
            return;
        }
        if pending.req_hdr.expired_at(ctx.now().as_nanos()) {
            self.reject_expired(ctx, &pending);
            return;
        }
        let lambda = pending.lambda_idx;
        let tenant = pending.tenant_id;
        let budget_ok = self.thread_budget_ok(tenant);
        let slot = if budget_ok {
            self.alloc_thread(ctx.rng())
        } else {
            if !self.idle.is_empty() {
                self.counters.quota_deferrals += 1;
            }
            None
        };
        match slot {
            Some(t) => self.start_job(ctx, t, pending),
            None => {
                self.counters.queued += 1;
                if let Some(&w) = self.lambda_weights.get(&lambda) {
                    self.queue.set_lambda_weight(tenant, lambda, w);
                }
                self.queue.push(tenant, lambda, pending);
                let weight_milli =
                    (self.queue.lambda_weight_of(tenant, lambda) * 1000.0).round() as u64;
                let tenant_weight_milli =
                    (self.queue.tenant_weight_of(tenant) * 1000.0).round() as u64;
                let depth = self.queue.len_for(tenant, lambda) as u64;
                ctx.emit(|| TraceEvent::WfqEnqueue {
                    lambda_id: lambda as u32,
                    weight_milli,
                    depth,
                    tenant_id: tenant,
                    tenant_weight_milli,
                });
            }
        }
    }

    fn start_job(&mut self, ctx: &mut Ctx<'_>, thread: usize, pending: PendingRequest) {
        ctx.emit(|| TraceEvent::ExecStart {
            core: thread as u32,
            lambda_id: pending.lambda_idx as u32,
            request_id: pending.req_hdr.request_id,
            tenant_id: pending.req_hdr.tenant_id,
        });
        let program = self.program.as_ref().expect("firmware installed").clone();
        let firmware = self.firmware.as_ref().expect("firmware installed").clone();
        // Virtualized instruction store: a non-resident lambda pages its
        // firmware in first, charged as overhead on this request — the
        // per-lambda analogue of the whole-image swap downtime.
        let mut paging_cycles = 0;
        if let Some(rt) = &mut self.tenancy {
            let words = Self::page_words(&program, pending.lambda_idx);
            let workload_id = pending.req_hdr.workload_id;
            let tenant_id = pending.tenant_id;
            if let Access::Fault { evicted } = rt.cache.access(workload_id, words) {
                paging_cycles = rt.cfg.page_cycles_per_word * words;
                self.counters.firmware_faults += 1;
                self.counters.firmware_evictions += evicted.len() as u64;
                let evictions = evicted.len() as u64;
                ctx.emit(|| TraceEvent::FirmwareFault {
                    tenant_id,
                    workload_id,
                    words,
                    evictions,
                });
                for e in evicted {
                    let owner = rt.dir.tenant_of(e.workload_id);
                    ctx.emit(|| TraceEvent::FirmwareEvict {
                        tenant_id: owner,
                        workload_id: e.workload_id,
                        words: e.words,
                    });
                }
            }
            *rt.busy.entry(tenant_id).or_insert(0) += 1;
        }
        let exec = Execution::start(
            Arc::clone(&program),
            pending.lambda_idx,
            pending.ctx,
            self.params.lambda_fuel,
        );
        let overhead = paging_cycles
            + match self.params.exec_mode {
                // Pipelined: parse/match already ran on the stage threads.
                ExecMode::Pipelined { .. } => pending.extra_cycles,
                ExecMode::RunToCompletion => firmware.parse_match_cycles() + pending.extra_cycles,
            };
        let mut job = Job {
            lambda_idx: pending.lambda_idx,
            tenant_id: pending.tenant_id,
            exec,
            reply_template: pending.reply_template,
            req_hdr: pending.req_hdr,
            charged_cycles: 0,
            overhead_cycles: overhead,
            phase: None,
            rpc_seq: 0,
            rpc_attempt: 0,
        };
        self.advance_job(&mut job);
        self.schedule_phase(ctx, thread, job);
    }

    /// Runs (or resumes) the execution until it finishes or suspends, and
    /// records the next phase.
    fn advance_job(&mut self, job: &mut Job) {
        debug_assert!(!job.exec.is_awaiting(), "advance_job while awaiting rpc");
        let mem = &mut self.deployed_mem[job.lambda_idx];
        let outcome = job.exec.run(mem);
        job.phase = Some(Self::phase_of(&mut self.counters, outcome));
    }

    fn phase_of(
        counters: &mut NicCounters,
        outcome: Result<StepOutcome, lnic_mlambda::interp::ExecError>,
    ) -> Phase {
        match outcome {
            Ok(StepOutcome::Done(done)) => Phase::Finish {
                response: done.response,
                code: done.return_code as u16,
            },
            Ok(StepOutcome::NetCall { service, payload }) => Phase::SendRpc { service, payload },
            Err(_) => {
                counters.faults += 1;
                Phase::Finish {
                    response: Bytes::new(),
                    code: retcode::ERROR as u16,
                }
            }
        }
    }

    /// Charges the cycles accumulated since the last charge and schedules
    /// the phase transition.
    fn schedule_phase(&mut self, ctx: &mut Ctx<'_>, thread: usize, mut job: Job) {
        let firmware = self.firmware.as_ref().expect("firmware installed");
        let total = job.overhead_cycles
            + exec_cycles(
                job.exec.stats(),
                &firmware.placements[job.lambda_idx],
                &self.params.memory,
            );
        let delta = total.saturating_sub(job.charged_cycles);
        job.charged_cycles = total;
        let mut delay = self.params.cycles_to_time(delta);
        if ctx.now() < self.slow_until {
            delay = delay.mul_f64(self.slow_factor);
        }
        let epoch = self.threads[thread].epoch;
        self.threads[thread].state = ThreadState::Computing(job);
        ctx.send_self(delay, ThreadPhase { thread, epoch });
    }

    fn on_thread_phase(&mut self, ctx: &mut Ctx<'_>, thread: usize, epoch: u64) {
        if self.threads[thread].epoch != epoch {
            return; // stale timer from a previous job
        }
        let state = std::mem::replace(&mut self.threads[thread].state, ThreadState::Idle);
        let ThreadState::Computing(mut job) = state else {
            // Phase timers only fire for computing threads.
            self.threads[thread].state = state;
            return;
        };
        match job.phase.take().expect("computing job has a phase") {
            Phase::Finish { response, code } => {
                self.emit_exec_finish(ctx, thread, &job);
                self.emit_response(ctx, &job, response, code);
                self.free_thread(ctx, thread, job.tenant_id);
            }
            Phase::SendRpc { service, payload } => {
                job.rpc_seq += 1;
                job.rpc_attempt = 1;
                ctx.emit(|| TraceEvent::ExecSuspend {
                    core: thread as u32,
                    lambda_id: job.lambda_idx as u32,
                    request_id: job.req_hdr.request_id,
                });
                self.send_rpc(ctx, thread, &job, service, &payload);
                let seq = job.rpc_seq;
                job.phase = Some(Phase::SendRpc { service, payload });
                self.threads[thread].state = ThreadState::AwaitingRpc(job);
                let epoch = self.threads[thread].epoch;
                ctx.send_self(
                    self.params.rpc_timeout,
                    RpcTimeout {
                        thread,
                        epoch,
                        rpc_seq: seq,
                    },
                );
            }
        }
    }

    fn send_rpc(
        &mut self,
        ctx: &mut Ctx<'_>,
        thread: usize,
        _job: &Job,
        service: u16,
        payload: &Bytes,
    ) {
        let Some(endpoint) = self.services.get(&service).copied() else {
            // Unknown service: the RPC can never complete; it will time
            // out and the job will fail.
            return;
        };
        let src = SocketAddr::new(self.ip, self.params.rpc_port_base + thread as u16);
        let packet = Packet::builder()
            .eth(self.mac, endpoint.mac)
            .udp(src, endpoint.addr)
            .payload(payload.clone())
            .build();
        ctx.send(self.uplink, SimDuration::ZERO, packet);
    }

    fn on_rpc_response(&mut self, ctx: &mut Ctx<'_>, thread: usize, payload: Bytes) {
        if thread >= self.threads.len() {
            return;
        }
        let state = std::mem::replace(&mut self.threads[thread].state, ThreadState::Idle);
        let ThreadState::AwaitingRpc(mut job) = state else {
            // Duplicate or stale response: ignore.
            self.threads[thread].state = state;
            return;
        };
        job.rpc_seq += 1; // invalidate the pending timeout
        ctx.emit(|| TraceEvent::ExecResume {
            core: thread as u32,
            lambda_id: job.lambda_idx as u32,
            request_id: job.req_hdr.request_id,
        });
        let mem = &mut self.deployed_mem[job.lambda_idx];
        let outcome = job.exec.resume(mem, &payload);
        job.phase = Some(Self::phase_of(&mut self.counters, outcome));
        self.schedule_phase(ctx, thread, job);
    }

    fn on_rpc_timeout(&mut self, ctx: &mut Ctx<'_>, thread: usize, epoch: u64, rpc_seq: u64) {
        if self.threads[thread].epoch != epoch {
            return;
        }
        let state = std::mem::replace(&mut self.threads[thread].state, ThreadState::Idle);
        let ThreadState::AwaitingRpc(mut job) = state else {
            self.threads[thread].state = state;
            return;
        };
        if job.rpc_seq != rpc_seq {
            // The RPC already completed; put the job back untouched.
            self.threads[thread].state = ThreadState::AwaitingRpc(job);
            return;
        }
        let Some(Phase::SendRpc { service, payload }) = job.phase.take() else {
            unreachable!("awaiting thread always holds a SendRpc phase");
        };
        if lnic_net::transport::retries_exhausted(job.rpc_attempt, self.params.rpc_attempts) {
            // Give up: fail the lambda (weakly-consistent transport
            // reports the failure to the sender, §4.2-D3).
            self.counters.faults += 1;
            ctx.emit(|| TraceEvent::ExecResume {
                core: thread as u32,
                lambda_id: job.lambda_idx as u32,
                request_id: job.req_hdr.request_id,
            });
            self.emit_exec_finish(ctx, thread, &job);
            self.emit_response(ctx, &job, Bytes::new(), retcode::ERROR as u16);
            self.free_thread(ctx, thread, job.tenant_id);
            return;
        }
        job.rpc_attempt += 1;
        job.rpc_seq += 1;
        self.send_rpc(ctx, thread, &job, service, &payload);
        let seq = job.rpc_seq;
        job.phase = Some(Phase::SendRpc { service, payload });
        self.threads[thread].state = ThreadState::AwaitingRpc(job);
        ctx.send_self(
            self.params.rpc_timeout,
            RpcTimeout {
                thread,
                epoch,
                rpc_seq: seq,
            },
        );
    }

    fn emit_response(&mut self, ctx: &mut Ctx<'_>, job: &Job, response: Bytes, code: u16) {
        let mut resp_hdr = job.req_hdr.response_to(code);
        // Advertise the wait-queue depth so the gateway can route and
        // shed against backpressure.
        resp_hdr.queue_depth = self.queue.len().min(u16::MAX as usize) as u16;
        // Stamp the epoch the work was served under, so the gateway can
        // discard late replies from fenced epochs.
        resp_hdr.epoch = self.lease_epoch;
        let packet = job
            .reply_template
            .reply_to()
            .lambda(resp_hdr)
            .payload(response)
            .build();
        ctx.send(self.uplink, SimDuration::ZERO, packet);
        self.counters.responses += 1;
        if let Some(arrived) = self
            .arrival_times
            .remove(&(job.lambda_idx, job.req_hdr.request_id))
        {
            self.service_time.record(ctx.now() - arrived);
        }
    }

    fn free_thread(&mut self, ctx: &mut Ctx<'_>, thread: usize, finished_tenant: TenantId) {
        self.threads[thread].epoch += 1;
        self.threads[thread].state = ThreadState::Idle;
        if let Some(rt) = &mut self.tenancy {
            if let Some(n) = rt.busy.get_mut(&finished_tenant) {
                *n = n.saturating_sub(1);
            }
        }
        // Quota-blocked tenants are skipped, not dequeued: their work
        // keeps its place while eligible tenants use the thread.
        let budget = self.tenancy.as_ref().map(|rt| {
            let busy = rt.busy.clone();
            let dir = Arc::clone(&rt.dir);
            move |t: TenantId| {
                let quota = dir.spec_of(t).thread_quota;
                quota == 0 || busy.get(&t).copied().unwrap_or(0) < quota
            }
        });
        let eligible = |t: TenantId| budget.as_ref().is_none_or(|f| f(t));
        // Skip over requests whose deadline expired while they waited:
        // answering them late helps nobody, and the cycles go to work
        // someone is still waiting for.
        while let Some((tenant, lambda, pending)) = self.queue.pop_where(eligible) {
            let weight_milli =
                (self.queue.lambda_weight_of(tenant, lambda) * 1000.0).round() as u64;
            let tenant_weight_milli = (self.queue.tenant_weight_of(tenant) * 1000.0).round() as u64;
            let depth = self.queue.len_for(tenant, lambda) as u64;
            ctx.emit(|| TraceEvent::WfqDequeue {
                lambda_id: lambda as u32,
                weight_milli,
                depth,
                tenant_id: tenant,
                tenant_weight_milli,
            });
            if let Some(epoch) = self.fence_check(&pending.req_hdr, ctx.now()) {
                self.reject_fenced(ctx, &pending, epoch);
                continue;
            }
            if pending.req_hdr.expired_at(ctx.now().as_nanos()) {
                self.reject_expired(ctx, &pending);
                continue;
            }
            self.start_job(ctx, thread, pending);
            return;
        }
        self.idle.push(thread);
    }

    /// Emits the per-object memory charges and the finish record for a
    /// completing job; the decomposition mirrors [`exec_cycles`] exactly so
    /// the online checker can recompute it.
    fn emit_exec_finish(&self, ctx: &mut Ctx<'_>, thread: usize, job: &Job) {
        let Some(firmware) = self.firmware.as_ref() else {
            return;
        };
        let stats = job.exec.stats();
        let placements = &firmware.placements[job.lambda_idx];
        let core = thread as u32;
        let lambda_id = job.lambda_idx as u32;
        let request_id = job.req_hdr.request_id;
        // The charged objects are the executing lambda's own memory, so
        // the owner is that workload's tenant per the directory — not
        // whatever tenant the request claimed to be.
        let owner_tenant = self.sched_tenant(job.req_hdr.workload_id);
        let charge = |level: &'static str,
                      latency_cycles: u64,
                      scalar: u64,
                      bulk_ops: u64,
                      bulk_bytes: u64,
                      ctx: &mut Ctx<'_>| {
            if scalar == 0 && bulk_ops == 0 && bulk_bytes == 0 {
                return;
            }
            let cycles = mem_charge_cycles(scalar, bulk_ops, bulk_bytes, latency_cycles);
            ctx.emit(|| TraceEvent::MemCharge {
                core,
                lambda_id,
                request_id,
                level,
                latency_cycles,
                scalar,
                bulk_ops,
                bulk_bytes,
                cycles,
                owner_tenant,
            });
        };
        for (i, &scalar) in stats.obj_scalar.iter().enumerate() {
            let level = placements[i];
            let lat = self.params.memory.level(level).latency_cycles;
            charge(
                level.name(),
                lat,
                scalar,
                stats.obj_bulk_ops[i],
                stats.obj_bulk_bytes[i],
                ctx,
            );
        }
        let ctm_lat = self.params.memory.ctm.latency_cycles;
        charge("CTM", ctm_lat, stats.payload_scalar, 0, 0, ctx);
        charge("CTM", ctm_lat, 0, 0, stats.payload_bulk_bytes, ctx);
        charge("CTM", ctm_lat, 0, 0, stats.emitted_bytes, ctx);
        ctx.emit(|| TraceEvent::ExecFinish {
            core,
            lambda_id,
            request_id,
            total_cycles: job.charged_cycles,
            overhead_cycles: job.overhead_cycles,
            instr_cycles: stats.instrs,
        });
    }

    fn punt_to_host(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        self.counters.punted_to_host += 1;
        if let Some(host) = self.host {
            ctx.send(host, self.params.pcie_latency, packet);
        }
    }
}

/// Internal delayed-dispatch message for assembled RDMA requests.
#[derive(Debug)]
struct RdmaDispatch {
    packet: Packet,
    hdr: LambdaHdr,
    payload: Bytes,
    extra_cycles: u64,
}

impl Component for Nic {
    fn name(&self) -> &str {
        "nic"
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
        // Hardware fault controls act immediately, even mid-stall.
        let msg = match msg.downcast::<lnic_sim::fault::Crash>() {
            Ok(_) => {
                self.crash(ctx);
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<lnic_sim::fault::Restart>() {
            Ok(_) => {
                self.restart(ctx);
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<lnic_sim::fault::StallFor>() {
            Ok(stall) => {
                self.stalled_until = self.stalled_until.max(ctx.now() + stall.0);
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<lnic_sim::fault::NetCutFrom>() {
            Ok(cut) => {
                let until = ctx.now() + cut.duration;
                for peer in &cut.peers {
                    let slot = self.cut_from.entry(peer.index()).or_insert(SimTime::ZERO);
                    *slot = (*slot).max(until);
                }
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<lnic_sim::fault::Slowdown>() {
            Ok(slow) => {
                self.slow_until = self.slow_until.max(ctx.now() + slow.duration);
                self.slow_factor = slow.factor.max(1.0);
                ctx.trace(|| format!("nic slowdown x{} for {:?}", slow.factor, slow.duration));
                ctx.emit(|| TraceEvent::Fault {
                    kind: "slowdown",
                    detail: (slow.factor * 1000.0) as u64,
                });
                return;
            }
            Err(other) => other,
        };
        // A stalled control processor defers everything else; replaying
        // at the stall's end preserves arrival order (engine FIFO ties).
        if ctx.now() < self.stalled_until {
            let delay = self.stalled_until - ctx.now();
            ctx.send_boxed(ctx.self_id(), delay, msg);
            return;
        }
        let msg = match msg.downcast::<lnic_sim::fault::HealthPing>() {
            Ok(ping) => {
                // The management endpoint answers as long as the NIC has
                // power — including during firmware swaps — but a
                // crashed NIC is silent, which is the failure signal.
                if !self.crashed && !self.is_cut_from(ctx.now(), ping.reply_to) {
                    ctx.send(
                        ping.reply_to,
                        SimDuration::ZERO,
                        lnic_sim::fault::HealthPong {
                            seq: ping.seq,
                            from: ctx.self_id(),
                        },
                    );
                }
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<lnic_sim::fault::GrantLease>() {
            Ok(grant) => {
                // A crashed worker is silent; a partitioned one never
                // saw the grant. Stale grants (lower epoch than held)
                // are ignored — fencing tokens never regress.
                if self.crashed
                    || self.is_cut_from(ctx.now(), grant.reply_to)
                    || grant.epoch < self.lease_epoch
                {
                    return;
                }
                let rejoining = grant.rejoin && grant.epoch > self.lease_epoch;
                let epoch_rose = grant.epoch > self.lease_epoch;
                self.lease_epoch = grant.epoch;
                if epoch_rose {
                    // The fencing token doubles as a leadership fence:
                    // residents must re-derive any authority they held
                    // under the previous epoch.
                    for &svc in self.resident.values() {
                        ctx.send(
                            svc,
                            SimDuration::ZERO,
                            ResidentEpoch {
                                epoch: self.lease_epoch,
                            },
                        );
                    }
                }
                // Adopt the controller's *absolute* expiry: a grant that
                // sat in a stalled worker's backlog must not extend the
                // lease past what the controller recorded at issue time.
                // (Rejoin probes arrive pre-expired; serving resumes
                // with the regular grant that follows the ack.)
                let until = SimTime::from_nanos(grant.until_ns);
                self.lease_until = Some(self.lease_until.map_or(until, |held| held.max(until)));
                if rejoining {
                    // Drop pre-partition placements: everything still
                    // queued was stamped with an older epoch. Refuse it
                    // now so senders re-resolve immediately.
                    while let Some((_, _, pending)) = self.queue.pop() {
                        self.reject_fenced(ctx, &pending, self.lease_epoch);
                    }
                    self.reassembler = Reassembler::new();
                }
                ctx.send(
                    grant.reply_to,
                    SimDuration::ZERO,
                    lnic_sim::fault::LeaseAck {
                        from: ctx.self_id(),
                        epoch: self.lease_epoch,
                        seq: grant.seq,
                        // The swap epoch bumps exactly once per crash.
                        incarnation: self.swap_epoch,
                    },
                );
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<lnic_sim::fault::EpochQuery>() {
            Ok(q) => {
                if !self.crashed && !self.is_cut_from(ctx.now(), q.reply_to) {
                    ctx.send(
                        q.reply_to,
                        SimDuration::ZERO,
                        lnic_sim::fault::EpochReport {
                            from: ctx.self_id(),
                            epoch: self.lease_epoch,
                            lease_until_ns: self.lease_until.map_or(0, |t| t.as_nanos()),
                        },
                    );
                }
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<UpdateService>() {
            Ok(up) => {
                if self.crashed {
                    // Missed updates are re-broadcast when the worker's
                    // workloads are handed back after recovery.
                    self.counters.dropped_crashed += 1;
                    return;
                }
                self.services.insert(
                    up.service,
                    ServiceEndpoint {
                        mac: up.mac,
                        addr: up.addr,
                    },
                );
                // Hybrid deployments punt some lambdas to the host OS;
                // its RPC table must chase the same re-placement.
                if let Some(host) = self.host {
                    ctx.send(host, self.params.pcie_latency, *up);
                }
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<ResidentDone>() {
            Ok(done) => {
                if self.crashed {
                    self.counters.dropped_crashed += 1;
                    return;
                }
                // Token unknown: the call state died with a crash or was
                // superseded; the gateway's retransmit path covers it.
                let Some(reply) = self.resident_pending.remove(&done.token) else {
                    return;
                };
                let mut resp_hdr = reply.req_hdr.response_to(done.return_code);
                resp_hdr.queue_depth = self.queue.len().min(u16::MAX as usize) as u16;
                resp_hdr.epoch = self.lease_epoch;
                let packet = reply
                    .reply_template
                    .reply_to()
                    .lambda(resp_hdr)
                    .payload(done.payload)
                    .build();
                ctx.send(self.uplink, SimDuration::ZERO, packet);
                self.counters.responses += 1;
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<ResidentTx>() {
            Ok(tx) => {
                if self.crashed {
                    self.counters.dropped_crashed += 1;
                    return;
                }
                ctx.send(self.uplink, SimDuration::ZERO, tx.packet);
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<Packet>() {
            Ok(packet) => {
                self.on_packet(ctx, *packet);
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<ThreadPhase>() {
            Ok(tp) => {
                self.on_thread_phase(ctx, tp.thread, tp.epoch);
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<RpcTimeout>() {
            Ok(t) => {
                self.on_rpc_timeout(ctx, t.thread, t.epoch, t.rpc_seq);
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<RdmaDispatch>() {
            Ok(rd) => {
                if self.crashed {
                    self.counters.dropped_crashed += 1;
                } else if !self.swapping && self.firmware.is_some() {
                    self.dispatch_request(ctx, rd.packet, rd.hdr, rd.payload, rd.extra_cycles);
                } else {
                    self.counters.dropped_downtime += 1;
                }
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<StageDone>() {
            Ok(sd) => {
                if self.crashed {
                    self.counters.dropped_crashed += 1;
                } else if !self.swapping && self.firmware.is_some() {
                    self.admit_to_thread(ctx, sd.pending);
                } else {
                    self.counters.dropped_downtime += 1;
                }
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<LoadFirmware>() {
            Ok(lf) => {
                if self.crashed {
                    // A crashed NIC cannot take an image; the controller
                    // re-deploys after restart.
                    self.counters.dropped_crashed += 1;
                    return;
                }
                if self.lease_until.is_some() && lf.epoch < self.lease_epoch {
                    // A deploy stamped before this worker's last rejoin:
                    // the placement decision behind it has been fenced.
                    self.counters.fenced_rejects += 1;
                    ctx.emit(|| TraceEvent::FencedReject {
                        request_id: 0,
                        workload_id: 0,
                        hdr_epoch: lf.epoch,
                        worker_epoch: self.lease_epoch,
                    });
                    return;
                }
                self.swapping = true;
                ctx.send_self(
                    self.params.firmware_swap_time,
                    SwapDone {
                        firmware: lf.firmware,
                        swap_epoch: self.swap_epoch,
                    },
                );
                return;
            }
            Err(other) => other,
        };
        match msg.downcast::<SwapDone>() {
            Ok(done) => {
                if done.swap_epoch != self.swap_epoch {
                    return; // the swap died with a crash
                }
                self.install(done.firmware);
                self.swapping = false;
                self.counters.swaps += 1;
                ctx.emit(|| TraceEvent::ProgramInstall {});
            }
            Err(other) => panic!("nic received unknown message {other:?}"),
        }
    }
}
