//! Parameters of the simulated ASIC SmartNIC.

use lnic_mlambda::memory::MemorySpec;
use lnic_sim::time::SimDuration;

/// How the parse/match/lambda stages map onto NPU cores (§5).
///
/// The paper executes all three stages on every core
/// ([`ExecMode::RunToCompletion`]); its footnote 4 leaves pipelining the
/// stages across cores as future work, implemented here as
/// [`ExecMode::Pipelined`] for the ablation study.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Every thread runs parse + match + lambda to completion (§4.2-D1).
    RunToCompletion,
    /// Dedicated threads run parse/match, then hand off to lambda
    /// threads over shared memory.
    Pipelined {
        /// Threads reserved for the parse/match stage (subtracted from
        /// the lambda pool).
        stage_threads: usize,
        /// Inter-core handoff cost (CTM write + wakeup + read).
        handoff_cycles: u64,
    },
}

/// Geometry and timing of an ASIC-based SmartNIC (§2.2, §6.1.2).
#[derive(Clone, Debug)]
pub struct NicParams {
    /// Number of NPU islands.
    pub islands: usize,
    /// NPU cores per island.
    pub cores_per_island: usize,
    /// Hardware threads per core.
    pub threads_per_core: usize,
    /// Core clock in MHz.
    pub freq_mhz: u64,
    /// Memory hierarchy.
    pub memory: MemorySpec,
    /// Latency of punting a packet across PCIe to the host OS.
    pub pcie_latency: SimDuration,
    /// Downtime while swapping firmware (§7 "hot swapping workloads":
    /// present-generation NICs reload the whole image).
    pub firmware_swap_time: SimDuration,
    /// Per-invocation instruction budget (the serverless compute limit).
    pub lambda_fuel: u64,
    /// UDP port base for per-thread outbound RPCs; thread `t` uses
    /// `rpc_port_base + t`.
    pub rpc_port_base: u16,
    /// Retransmission timeout for lambda-issued RPCs.
    pub rpc_timeout: SimDuration,
    /// Total attempts (1 original + retries) for lambda-issued RPCs.
    pub rpc_attempts: u32,
    /// Nanoseconds per KiB for the RDMA engine to commit a fragment to
    /// NIC memory.
    pub rdma_commit_ns_per_kb: u64,
    /// NIC memory the loaded firmware's runtime claims beyond the image
    /// itself: per-island runtime structures and EMEM packet-buffer
    /// pools the NFP driver allocates at load time (accounting for
    /// Table 3's "NIC memory" column).
    pub runtime_resident_bytes: u64,
    /// Stage-to-core mapping.
    pub exec_mode: ExecMode,
}

impl NicParams {
    /// The evaluation NIC: Netronome Agilio CX 2×10 Gb with 56 RISC cores
    /// (7 islands × 8 cores), 8 threads per core, at 633 MHz (§6.1.2).
    pub fn agilio_cx() -> Self {
        NicParams {
            islands: 7,
            cores_per_island: 8,
            threads_per_core: 8,
            freq_mhz: 633,
            memory: MemorySpec::agilio_cx(),
            pcie_latency: SimDuration::from_micros(1),
            firmware_swap_time: SimDuration::from_secs(9),
            lambda_fuel: 50_000_000,
            rpc_port_base: 40_000,
            rpc_timeout: SimDuration::from_millis(10),
            rpc_attempts: 3,
            rdma_commit_ns_per_kb: 250,
            runtime_resident_bytes: 62 << 20,
            exec_mode: ExecMode::RunToCompletion,
        }
    }

    /// The footnote-4 variant: one island's threads parse and match;
    /// the rest run lambdas.
    pub fn agilio_cx_pipelined() -> Self {
        let base = NicParams::agilio_cx();
        let stage_threads = base.cores_per_island * base.threads_per_core;
        NicParams {
            exec_mode: ExecMode::Pipelined {
                stage_threads,
                handoff_cycles: 120,
            },
            ..base
        }
    }

    /// Total NPU cores.
    pub fn cores(&self) -> usize {
        self.islands * self.cores_per_island
    }

    /// Total hardware threads.
    pub fn threads(&self) -> usize {
        self.cores() * self.threads_per_core
    }

    /// Converts NPU cycles to virtual time at the core clock.
    pub fn cycles_to_time(&self, cycles: u64) -> SimDuration {
        SimDuration::from_nanos((cycles * 1_000).div_ceil(self.freq_mhz))
    }

    /// The island a thread belongs to.
    pub fn island_of_thread(&self, thread: usize) -> usize {
        thread / (self.cores_per_island * self.threads_per_core)
    }
}

impl Default for NicParams {
    fn default() -> Self {
        NicParams::agilio_cx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agilio_geometry_matches_the_paper() {
        let p = NicParams::agilio_cx();
        assert_eq!(p.cores(), 56);
        assert_eq!(p.threads(), 448);
    }

    #[test]
    fn cycles_to_time_at_633mhz() {
        let p = NicParams::agilio_cx();
        // 633 cycles ~= 1 us.
        let t = p.cycles_to_time(633);
        assert_eq!(t.as_nanos(), 1_000);
        // One cycle rounds up to ~2 ns (1.58 ns exact).
        assert_eq!(p.cycles_to_time(1).as_nanos(), 2);
        assert_eq!(p.cycles_to_time(0).as_nanos(), 0);
    }

    #[test]
    fn pipelined_preset_reserves_one_island() {
        let p = NicParams::agilio_cx_pipelined();
        match p.exec_mode {
            ExecMode::Pipelined { stage_threads, .. } => assert_eq!(stage_threads, 64),
            other => panic!("unexpected mode {other:?}"),
        }
    }

    #[test]
    fn thread_island_mapping() {
        let p = NicParams::agilio_cx();
        // 64 threads per island (8 cores x 8 threads).
        assert_eq!(p.island_of_thread(0), 0);
        assert_eq!(p.island_of_thread(63), 0);
        assert_eq!(p.island_of_thread(64), 1);
        assert_eq!(p.island_of_thread(447), 6);
    }
}
