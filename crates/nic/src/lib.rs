//! # lnic-nic: the ASIC SmartNIC model
//!
//! A cycle-costed model of the paper's evaluation NIC (Netronome Agilio
//! CX, §6.1.2): 56 NPU cores in 7 islands, 8 threads per core at 633 MHz,
//! a four-level memory hierarchy, a work-conserving uniform dispatch
//! scheduler with WFQ under contention, run-to-completion lambda
//! execution, an RDMA path for multi-packet messages, and firmware swaps
//! with downtime.
//!
//! The [`nic::Nic`] component consumes [`lnic_net::packet::Packet`]s and
//! executes compiled [`lnic_mlambda::compile::Firmware`] images using the
//! Match+Lambda reference interpreter; virtual time advances by the
//! interpreter's measured cycles at the NPU clock.

#![warn(missing_docs)]

pub mod nic;
pub mod params;
pub mod profiles;
pub mod wfq;

pub use nic::{
    DispatchPolicy, LoadFirmware, Nic, NicCounters, ResidentCall, ResidentDone, ResidentEpoch,
    ResidentFrame, ResidentTx, ServiceEndpoint, UpdateService,
};
pub use params::NicParams;
pub use profiles::{NicClass, TABLE1};
pub use wfq::WeightedFairQueue;
