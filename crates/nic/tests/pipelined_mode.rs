//! Tests for the pipelined stage-execution mode (the paper's footnote-4
//! future work): correctness is unchanged, but short lambdas pay a
//! handoff penalty and the stage pool can become the bottleneck — the
//! reason the paper chose run-to-completion.

use std::sync::Arc;

use bytes::Bytes;

use lnic_mlambda::builder::FnBuilder;
use lnic_mlambda::compile::{compile, CompileOptions, Firmware};
use lnic_mlambda::ir::ObjId;
use lnic_mlambda::program::{Lambda, MemObject, Program, WorkloadId};
use lnic_net::link::Link;
use lnic_net::packet::{LambdaHdr, Packet};
use lnic_net::params::LinkParams;
use lnic_net::{Ipv4Addr, MacAddr, SocketAddr};
use lnic_nic::params::ExecMode;
use lnic_nic::{Nic, NicParams};
use lnic_sim::prelude::*;

const GW_MAC: MacAddr = MacAddr::new([2, 0, 0, 0, 0, 1]);
const NIC_MAC: MacAddr = MacAddr::new([2, 0, 0, 0, 0, 2]);
const GW_ADDR: SocketAddr = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 1), 7000);
const NIC_ADDR: SocketAddr = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 2), 8000);

struct Sink {
    responses: Vec<(SimTime, Packet)>,
}

impl Component for Sink {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
        self.responses
            .push((ctx.now(), *msg.downcast::<Packet>().unwrap()));
    }
}

fn web_fw(content: &[u8]) -> Arc<Firmware> {
    let entry = FnBuilder::new("web")
        .constant(1, 0)
        .constant(2, content.len() as u64)
        .emit_obj(ObjId(0), 1, 2)
        .ret_const(0)
        .build();
    let mut l = Lambda::new("web", WorkloadId(1), entry);
    l.add_object(MemObject::with_data("content", content.to_vec()));
    let mut p = Program::new();
    p.add_lambda(l, vec![]);
    Arc::new(compile(&p, &CompileOptions::optimized()).unwrap())
}

fn run(params: NicParams, requests: u64, spacing_ns: u64) -> Vec<(SimTime, Packet)> {
    let mut sim = Simulation::new(9);
    let sink = sim.add(Sink { responses: vec![] });
    let link = sim.add(Link::new(sink, LinkParams::ten_gbps()));
    let nic = sim.add(Nic::new(params, NIC_MAC, NIC_ADDR.ip, link).preload(web_fw(b"pipelined")));
    for i in 0..requests {
        let pkt = Packet::builder()
            .eth(GW_MAC, NIC_MAC)
            .udp(GW_ADDR, NIC_ADDR)
            .lambda(LambdaHdr::request(1, i))
            .payload(Bytes::new())
            .build();
        sim.post(nic, SimDuration::from_nanos(i * spacing_ns), pkt);
    }
    sim.run();
    sim.get::<Sink>(sink).unwrap().responses.clone()
}

#[test]
fn pipelined_mode_serves_correct_responses() {
    let responses = run(NicParams::agilio_cx_pipelined(), 20, 10_000);
    assert_eq!(responses.len(), 20);
    for (_, r) in &responses {
        assert_eq!(&r.payload[..], b"pipelined");
    }
}

#[test]
fn pipelining_adds_handoff_latency_for_short_lambdas() {
    let rtc = run(NicParams::agilio_cx(), 1, 0)[0].0;
    let piped = run(NicParams::agilio_cx_pipelined(), 1, 0)[0].0;
    assert!(
        piped > rtc,
        "pipelined {piped} should exceed run-to-completion {rtc}"
    );
}

#[test]
fn stage_pool_serializes_under_burst() {
    // One stage thread: the parse/match stage becomes the bottleneck.
    let params = NicParams {
        exec_mode: ExecMode::Pipelined {
            stage_threads: 1,
            handoff_cycles: 120,
        },
        ..NicParams::agilio_cx()
    };
    let responses = run(params.clone(), 50, 0);
    assert_eq!(responses.len(), 50);
    let last = responses.iter().map(|(t, _)| t.as_nanos()).max().unwrap();

    // Same burst, run-to-completion: all 448 threads parse concurrently.
    let rtc = run(NicParams::agilio_cx(), 50, 0);
    let rtc_last = rtc.iter().map(|(t, _)| t.as_nanos()).max().unwrap();
    assert!(
        last > 2 * rtc_last,
        "stage bottleneck {last} vs rtc {rtc_last}"
    );
}

#[test]
#[should_panic(expected = "pipelined mode needs stage threads")]
fn pipelined_mode_rejects_degenerate_split() {
    let params = NicParams {
        exec_mode: ExecMode::Pipelined {
            stage_threads: 0,
            handoff_cycles: 1,
        },
        ..NicParams::agilio_cx()
    };
    let mut sim = Simulation::new(1);
    let sink = sim.add(Sink { responses: vec![] });
    let _ = sim.add(Nic::new(params, NIC_MAC, NIC_ADDR.ip, sink));
}
