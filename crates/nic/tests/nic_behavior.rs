//! Behavioural tests for the SmartNIC component: dispatch, run-to-
//! completion timing, queueing, RDMA reassembly, lambda RPCs with
//! retransmission, firmware swaps, and host punting.

use std::sync::Arc;

use bytes::Bytes;

use lnic_mlambda::builder::FnBuilder;
use lnic_mlambda::compile::{compile, CompileOptions, Firmware};
use lnic_mlambda::ir::ObjId;
use lnic_mlambda::program::{Lambda, MemObject, Program, WorkloadId};
use lnic_net::frag::fragment;
use lnic_net::link::Link;
use lnic_net::packet::{LambdaHdr, LambdaKind, Packet};
use lnic_net::params::LinkParams;
use lnic_net::{Ipv4Addr, MacAddr, SocketAddr};
use lnic_nic::{LoadFirmware, Nic, NicParams, ServiceEndpoint};
use lnic_sim::prelude::*;

const GW_MAC: MacAddr = MacAddr::new([2, 0, 0, 0, 0, 1]);
const NIC_MAC: MacAddr = MacAddr::new([2, 0, 0, 0, 0, 2]);
const GW_ADDR: SocketAddr = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 1), 7000);
const NIC_ADDR: SocketAddr = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 2), 8000);

/// Records every packet that arrives back at the "gateway" side.
struct GwSink {
    responses: Vec<(SimTime, Packet)>,
}

impl Component for GwSink {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
        let p = msg.downcast::<Packet>().expect("gateway receives packets");
        self.responses.push((ctx.now(), *p));
    }
}

/// An echo service that reverses payload bytes after a fixed delay.
struct EchoService {
    reply_via: ComponentId,
    mac: MacAddr,
    delay: SimDuration,
    requests: u32,
}

impl Component for EchoService {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
        let p = msg.downcast::<Packet>().expect("service receives packets");
        self.requests += 1;
        let mut data: Vec<u8> = p.payload.to_vec();
        data.reverse();
        let reply = p.reply_to().payload(Bytes::from(data)).build();
        let delay = self.delay;
        let _ = self.mac;
        ctx.send(self.reply_via, delay, reply);
    }
}

/// A web-server lambda that returns fixed content.
fn web_program(content: &[u8]) -> Program {
    let entry = FnBuilder::new("web_server")
        .constant(1, 0)
        .constant(2, content.len() as u64)
        .emit_obj(ObjId(0), 1, 2)
        .ret_const(0)
        .build();
    let mut l = Lambda::new("web", WorkloadId(1), entry);
    l.add_object(MemObject::with_data("content", content.to_vec()));
    let mut p = Program::new();
    p.add_lambda(l, vec![]);
    p
}

/// A lambda that queries service 1 and echoes its response.
fn rpc_program() -> Program {
    let entry = FnBuilder::new("kv_client")
        .constant(1, 0) // req off
        .constant(2, 4) // req len
        .constant(3, 8) // resp off
        .constant(4, 32) // resp cap
        .net_rpc(1, ObjId(0), 1, 2, ObjId(0), 3, 4, 5)
        .emit_obj(ObjId(0), 3, 5)
        .ret_const(0)
        .build();
    let mut l = Lambda::new("kv", WorkloadId(2), entry);
    l.add_object(MemObject::with_data(
        "buf",
        b"get himore space here padding".to_vec(),
    ));
    let mut p = Program::new();
    p.add_lambda(l, vec![]);
    p
}

fn compile_fw(p: &Program) -> Arc<Firmware> {
    Arc::new(compile(p, &CompileOptions::optimized()).expect("compiles"))
}

fn request_packet(workload: u32, request_id: u64, payload: &[u8]) -> Packet {
    Packet::builder()
        .eth(GW_MAC, NIC_MAC)
        .udp(GW_ADDR, NIC_ADDR)
        .lambda(LambdaHdr::request(workload, request_id))
        .payload(Bytes::copy_from_slice(payload))
        .build()
}

/// Wires gateway-sink <- link <- NIC and returns (sim, nic id, sink id).
fn testbed(params: NicParams, fw: Arc<Firmware>) -> (Simulation, ComponentId, ComponentId) {
    let mut sim = Simulation::new(7);
    let sink = sim.add(GwSink { responses: vec![] });
    let to_gw = sim.add(Link::new(sink, LinkParams::ten_gbps()));
    let nic = sim.add(Nic::new(params, NIC_MAC, NIC_ADDR.ip, to_gw).preload(fw));
    (sim, nic, sink)
}

#[test]
fn web_request_gets_response_with_content() {
    let content = b"<html>hello lambda-nic</html>";
    let fw = compile_fw(&web_program(content));
    let (mut sim, nic, sink) = testbed(NicParams::agilio_cx(), fw);

    sim.post(nic, SimDuration::ZERO, request_packet(1, 42, b""));
    sim.run();

    let responses = &sim.get::<GwSink>(sink).unwrap().responses;
    assert_eq!(responses.len(), 1);
    let (at, resp) = &responses[0];
    assert_eq!(&resp.payload[..], content);
    let hdr = resp.lambda.unwrap();
    assert_eq!(hdr.kind, LambdaKind::Response);
    assert_eq!(hdr.request_id, 42);
    assert_eq!(hdr.return_code, 0);
    // Sub-10us NIC-side completion: parse/match + body + link.
    assert!(at.as_nanos() < 10_000, "took {at}");

    let nic_ref = sim.get::<Nic>(nic).unwrap();
    assert_eq!(nic_ref.counters().requests, 1);
    assert_eq!(nic_ref.counters().responses, 1);
    assert_eq!(nic_ref.service_time().len(), 1);
}

#[test]
fn unknown_workload_id_is_punted_or_counted() {
    let fw = compile_fw(&web_program(b"x"));
    let (mut sim, nic, sink) = testbed(NicParams::agilio_cx(), fw);
    sim.post(nic, SimDuration::ZERO, request_packet(99, 1, b""));
    sim.run();
    assert!(sim.get::<GwSink>(sink).unwrap().responses.is_empty());
    assert_eq!(sim.get::<Nic>(nic).unwrap().counters().punted_to_host, 1);
}

#[test]
fn requests_queue_when_all_threads_busy_and_all_complete() {
    // Tiny NIC: 1 island x 1 core x 2 threads.
    let params = NicParams {
        islands: 1,
        cores_per_island: 1,
        threads_per_core: 2,
        ..NicParams::agilio_cx()
    };
    // Big content so service time is long enough to force queueing.
    let content = vec![7u8; 32 * 1024];
    let fw = compile_fw(&web_program(&content));
    let (mut sim, nic, sink) = testbed(params, fw);

    for i in 0..10 {
        sim.post(nic, SimDuration::ZERO, request_packet(1, i, b""));
    }
    sim.run();

    let responses = &sim.get::<GwSink>(sink).unwrap().responses;
    assert_eq!(responses.len(), 10);
    let c = sim.get::<Nic>(nic).unwrap().counters();
    assert!(c.queued >= 8, "expected queueing, got {c:?}");
    // With 2 threads, later responses must be spread out in time.
    let times: Vec<u64> = responses.iter().map(|(t, _)| t.as_nanos()).collect();
    assert!(times.last().unwrap() > &(times[0] * 2));
}

#[test]
fn run_to_completion_timing_scales_with_content_size() {
    let small_fw = compile_fw(&web_program(&[1u8; 64]));
    let big_fw = compile_fw(&web_program(&vec![1u8; 64 * 1024]));

    let run = |fw: Arc<Firmware>| {
        let (mut sim, nic, sink) = testbed(NicParams::agilio_cx(), fw);
        sim.post(nic, SimDuration::ZERO, request_packet(1, 1, b""));
        sim.run();
        let _ = nic;
        sim.get::<GwSink>(sink).unwrap().responses[0].0
    };
    let t_small = run(small_fw);
    let t_big = run(big_fw);
    assert!(
        t_big.as_nanos() > 4 * t_small.as_nanos(),
        "big={t_big} small={t_small}"
    );
}

#[test]
fn rdma_fragments_reassemble_and_dispatch_once() {
    // Lambda that emits the first 4 payload bytes back.
    let entry = FnBuilder::new("head4")
        .constant(1, 0)
        .load_payload(2, 1, lnic_mlambda::ir::Width::B4)
        .emit(2, lnic_mlambda::ir::Width::B4)
        .ret_const(0)
        .build();
    let mut p = Program::new();
    p.add_lambda(Lambda::new("head", WorkloadId(3), entry), vec![]);
    let fw = compile_fw(&p);
    let (mut sim, nic, sink) = testbed(NicParams::agilio_cx(), fw);

    let payload = Bytes::from((0u8..200).collect::<Vec<_>>());
    let frags = fragment(payload.clone(), 64);
    let count = frags.len() as u16;
    // Deliver out of order: reversed.
    for (i, f) in frags.iter().enumerate().rev() {
        let hdr = LambdaHdr {
            workload_id: 3,
            request_id: 5,
            frag_index: i as u16,
            frag_count: count,
            kind: LambdaKind::RdmaWrite,
            return_code: 0,
            ..Default::default()
        };
        let pkt = Packet::builder()
            .eth(GW_MAC, NIC_MAC)
            .udp(GW_ADDR, NIC_ADDR)
            .lambda(hdr)
            .payload(f.clone())
            .build();
        sim.post(nic, SimDuration::ZERO, pkt);
    }
    sim.run();

    let responses = &sim.get::<GwSink>(sink).unwrap().responses;
    assert_eq!(responses.len(), 1, "one dispatch per assembled message");
    assert_eq!(&responses[0].1.payload[..], &[0, 1, 2, 3]);
    let c = sim.get::<Nic>(nic).unwrap().counters();
    assert_eq!(c.rdma_fragments, count as u64);
    assert_eq!(c.requests, 1);
}

#[test]
fn lambda_rpc_reaches_service_and_response_resumes_thread() {
    let fw = compile_fw(&rpc_program());
    let mut sim = Simulation::new(3);
    let sink = sim.add(GwSink { responses: vec![] });
    let to_gw = sim.add(Link::new(sink, LinkParams::ten_gbps()));

    // Service wiring: NIC -> (uplink picks dst by mac) ... simplify by
    // letting the service receive directly and reply via a link to the NIC.
    let svc_mac = MacAddr::new([2, 0, 0, 0, 0, 9]);
    let svc_addr = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 9), 11211);

    // Build the NIC first with a placeholder uplink to the gateway sink;
    // outbound packets are routed by a tiny demux below.
    struct Demux {
        by_mac: Vec<(MacAddr, ComponentId)>,
    }
    impl Component for Demux {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
            let p = msg.downcast::<Packet>().unwrap();
            let dst = p.eth.dst;
            if let Some((_, c)) = self.by_mac.iter().find(|(m, _)| *m == dst) {
                ctx.send_boxed(*c, SimDuration::from_nanos(500), p);
            }
        }
    }
    let demux = sim.add(Demux { by_mac: vec![] });
    let nic = sim.add(
        Nic::new(NicParams::agilio_cx(), NIC_MAC, NIC_ADDR.ip, demux)
            .preload(fw)
            .with_service(
                1,
                ServiceEndpoint {
                    mac: svc_mac,
                    addr: svc_addr,
                },
            ),
    );
    let svc = sim.add(EchoService {
        reply_via: demux,
        mac: svc_mac,
        delay: SimDuration::from_micros(5),
        requests: 0,
    });
    sim.get_mut::<Demux>(demux).unwrap().by_mac =
        vec![(GW_MAC, to_gw), (svc_mac, svc), (NIC_MAC, nic)];

    sim.post(nic, SimDuration::ZERO, request_packet(2, 77, b""));
    sim.run();

    let responses = &sim.get::<GwSink>(sink).unwrap().responses;
    assert_eq!(responses.len(), 1);
    // The lambda sends "get " (4 bytes), the echo reverses it.
    assert_eq!(&responses[0].1.payload[..], b" teg");
    assert_eq!(sim.get::<EchoService>(svc).unwrap().requests, 1);
    // The response should take at least the service delay.
    assert!(responses[0].0.as_nanos() >= 5_000);
}

#[test]
fn rpc_timeout_retries_then_fails() {
    // No service registered: RPC packets go nowhere; after the attempt
    // budget the lambda fails with an error response.
    let fw = compile_fw(&rpc_program());
    let params = NicParams {
        rpc_timeout: SimDuration::from_micros(100),
        rpc_attempts: 3,
        ..NicParams::agilio_cx()
    };
    let (mut sim, nic, sink) = testbed(params, fw);
    sim.post(nic, SimDuration::ZERO, request_packet(2, 1, b""));
    sim.run();

    let responses = &sim.get::<GwSink>(sink).unwrap().responses;
    assert_eq!(responses.len(), 1);
    let hdr = responses[0].1.lambda.unwrap();
    assert_eq!(hdr.return_code, lnic_mlambda::ir::retcode::ERROR as u16);
    assert!(responses[0].1.payload.is_empty());
    // Three timeouts elapsed before failure.
    assert!(responses[0].0.as_nanos() >= 300_000);
    assert_eq!(sim.get::<Nic>(nic).unwrap().counters().faults, 1);
}

#[test]
fn firmware_swap_incurs_downtime_then_serves() {
    let fw = compile_fw(&web_program(b"v1"));
    let mut sim = Simulation::new(1);
    let sink = sim.add(GwSink { responses: vec![] });
    let to_gw = sim.add(Link::new(sink, LinkParams::ten_gbps()));
    let params = NicParams {
        firmware_swap_time: SimDuration::from_secs(2),
        ..NicParams::agilio_cx()
    };
    let nic = sim.add(Nic::new(params, NIC_MAC, NIC_ADDR.ip, to_gw));

    sim.post(
        nic,
        SimDuration::ZERO,
        LoadFirmware::unfenced(compile_fw(&web_program(b"v1"))),
    );
    drop(fw);
    // During the swap, requests are dropped.
    sim.post(nic, SimDuration::from_secs(1), request_packet(1, 1, b""));
    // After the swap, requests are served.
    sim.post(nic, SimDuration::from_secs(3), request_packet(1, 2, b""));
    sim.run();

    let responses = &sim.get::<GwSink>(sink).unwrap().responses;
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].1.lambda.unwrap().request_id, 2);
    let c = sim.get::<Nic>(nic).unwrap().counters();
    assert_eq!(c.dropped_downtime, 1);
    assert_eq!(c.swaps, 1);
    assert!(sim.get::<Nic>(nic).unwrap().memory_in_use_bytes() > 0);
}

#[test]
fn non_lambda_traffic_punts_to_host() {
    struct HostSink {
        got: u32,
    }
    impl Component for HostSink {
        fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: AnyMessage) {
            msg.downcast::<Packet>().unwrap();
            self.got += 1;
        }
    }
    let fw = compile_fw(&web_program(b"x"));
    let mut sim = Simulation::new(1);
    let sink = sim.add(GwSink { responses: vec![] });
    let to_gw = sim.add(Link::new(sink, LinkParams::ten_gbps()));
    let host = sim.add(HostSink { got: 0 });
    let nic = sim.add(
        Nic::new(NicParams::agilio_cx(), NIC_MAC, NIC_ADDR.ip, to_gw)
            .preload(fw)
            .with_host(host),
    );

    // Plain UDP to a non-RPC port: host traffic.
    let plain = Packet::builder()
        .eth(GW_MAC, NIC_MAC)
        .udp(GW_ADDR, SocketAddr::new(NIC_ADDR.ip, 22))
        .payload(Bytes::from_static(b"ssh"))
        .build();
    sim.post(nic, SimDuration::ZERO, plain);
    sim.run();
    assert_eq!(sim.get::<HostSink>(host).unwrap().got, 1);
    assert_eq!(sim.get::<Nic>(nic).unwrap().counters().punted_to_host, 1);
}

#[test]
fn parallel_requests_complete_concurrently() {
    // 448 threads: 100 simultaneous requests should finish in roughly the
    // time of one (run-to-completion, no queueing). Content is kept small
    // enough that the synchronized response burst fits the egress queue.
    let content = vec![3u8; 1024];
    let fw = compile_fw(&web_program(&content));
    let (mut sim, nic, sink) = testbed(NicParams::agilio_cx(), fw);

    for i in 0..100 {
        sim.post(nic, SimDuration::ZERO, request_packet(1, i, b""));
    }
    sim.run();
    let responses = &sim.get::<GwSink>(sink).unwrap().responses;
    assert_eq!(responses.len(), 100);
    let c = sim.get::<Nic>(nic).unwrap().counters();
    assert_eq!(c.queued, 0, "no queueing with 448 threads");
    let first = responses.first().unwrap().0.as_nanos();
    let last = responses.last().unwrap().0.as_nanos();
    // Responses serialize on the 10G link but compute overlaps; the
    // spread must be far smaller than 100x a single service time.
    assert!(last < first + 100 * 8_000, "first={first} last={last}");
}

#[test]
fn lambda_with_two_sequential_rpcs_suspends_twice() {
    // A lambda that queries the service twice (read-modify-write style)
    // exercises repeated thread suspension and resumption.
    let entry = FnBuilder::new("double_rpc")
        .constant(1, 0)
        .constant(2, 3)
        .constant(3, 8)
        .constant(4, 8)
        .net_rpc(1, ObjId(0), 1, 2, ObjId(0), 3, 4, 5)
        // Second call sends the first response bytes back.
        .mov(6, 3) // req off = resp off of call 1
        .net_rpc(1, ObjId(0), 6, 5, ObjId(0), 3, 4, 5)
        .emit_obj(ObjId(0), 3, 5)
        .ret_const(0)
        .build();
    let mut l = Lambda::new("double", WorkloadId(8), entry);
    l.add_object(MemObject::with_data("buf", b"abcdefghijklmnop".to_vec()));
    let mut p = Program::new();
    p.add_lambda(l, vec![]);
    let fw = Arc::new(compile(&p, &CompileOptions::optimized()).unwrap());

    let mut sim = Simulation::new(4);
    let sink = sim.add(GwSink { responses: vec![] });
    let to_gw = sim.add(Link::new(sink, LinkParams::ten_gbps()));
    let svc_mac = MacAddr::new([2, 0, 0, 0, 0, 9]);
    let svc_addr = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 9), 11211);

    struct Demux2 {
        by_mac: Vec<(MacAddr, ComponentId)>,
    }
    impl Component for Demux2 {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
            let p = msg.downcast::<Packet>().unwrap();
            let dst = p.eth.dst;
            if let Some((_, c)) = self.by_mac.iter().find(|(m, _)| *m == dst) {
                ctx.send_boxed(*c, SimDuration::from_nanos(500), p);
            }
        }
    }
    let demux = sim.add(Demux2 { by_mac: vec![] });
    let nic = sim.add(
        Nic::new(NicParams::agilio_cx(), NIC_MAC, NIC_ADDR.ip, demux)
            .preload(fw)
            .with_service(
                1,
                ServiceEndpoint {
                    mac: svc_mac,
                    addr: svc_addr,
                },
            ),
    );
    let svc = sim.add(EchoService {
        reply_via: demux,
        mac: svc_mac,
        delay: SimDuration::from_micros(3),
        requests: 0,
    });
    sim.get_mut::<Demux2>(demux).unwrap().by_mac =
        vec![(GW_MAC, to_gw), (svc_mac, svc), (NIC_MAC, nic)];

    sim.post(nic, SimDuration::ZERO, request_packet(8, 5, b""));
    sim.run();

    // The echo service reverses: "abc" -> "cba" -> "abc".
    let responses = &sim.get::<GwSink>(sink).unwrap().responses;
    assert_eq!(responses.len(), 1);
    assert_eq!(&responses[0].1.payload[..], b"abc");
    assert_eq!(sim.get::<EchoService>(svc).unwrap().requests, 2);
    // Two service round trips were charged.
    assert!(responses[0].0.as_nanos() >= 2 * 3_000);
    let nic_ref = sim.get::<Nic>(nic).unwrap();
    assert_eq!(nic_ref.counters().responses, 1);
    assert_eq!(nic_ref.busy_threads(), 0);
}
