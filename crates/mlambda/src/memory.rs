//! The SmartNIC memory hierarchy seen by the compiler (§4.2-D2, §5).
//!
//! Netronome-style NICs expose four levels: per-thread local memory
//! (LMEM), the per-island Cluster Target Memory (CTM), on-chip internal
//! memory (IMEM), and external DRAM (EMEM). Lambdas see a flat address
//! space; the *memory stratification* pass places each object into a
//! level, trading capacity against access latency and address-setup
//! instructions.

use std::fmt;

/// A level of the NIC memory hierarchy, ordered nearest-first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemLevel {
    /// Per-thread local memory: single-cycle scratch.
    Lmem,
    /// Per-island cluster target memory: where packets land.
    Ctm,
    /// Shared on-chip internal memory.
    Imem,
    /// External DRAM.
    Emem,
}

impl MemLevel {
    /// All levels, nearest first.
    pub const ALL: [MemLevel; 4] = [
        MemLevel::Lmem,
        MemLevel::Ctm,
        MemLevel::Imem,
        MemLevel::Emem,
    ];

    /// The level's conventional name (as in trace records).
    pub fn name(self) -> &'static str {
        match self {
            MemLevel::Lmem => "LMEM",
            MemLevel::Ctm => "CTM",
            MemLevel::Imem => "IMEM",
            MemLevel::Emem => "EMEM",
        }
    }
}

impl fmt::Display for MemLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Capacity and latency of one memory level as the compiler models it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelSpec {
    /// Bytes available to *lambda objects* at this level (after the
    /// reserve for basic NIC operation, §3.1c).
    pub capacity_bytes: u64,
    /// Access latency in NPU cycles.
    pub latency_cycles: u64,
    /// Extra instruction-store words per scalar access at this level
    /// (address formation / command queueing for far memories).
    pub access_setup_words: u32,
}

/// The full hierarchy specification used for placement and costing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemorySpec {
    /// Per-thread local memory.
    pub lmem: LevelSpec,
    /// Per-island CTM (shared by the island's threads).
    pub ctm: LevelSpec,
    /// On-chip IMEM.
    pub imem: LevelSpec,
    /// External EMEM.
    pub emem: LevelSpec,
}

impl MemorySpec {
    /// The spec of a given level.
    pub fn level(&self, level: MemLevel) -> LevelSpec {
        match level {
            MemLevel::Lmem => self.lmem,
            MemLevel::Ctm => self.ctm,
            MemLevel::Imem => self.imem,
            MemLevel::Emem => self.emem,
        }
    }

    /// A Netronome Agilio CX-like hierarchy (§6.1.2's NICs), with
    /// conservative reserves left for basic NIC operation.
    pub fn agilio_cx() -> Self {
        MemorySpec {
            lmem: LevelSpec {
                capacity_bytes: 4 * 1024,
                latency_cycles: 1,
                access_setup_words: 0,
            },
            ctm: LevelSpec {
                capacity_bytes: 192 * 1024,
                latency_cycles: 50,
                access_setup_words: 0,
            },
            imem: LevelSpec {
                capacity_bytes: 3 * 1024 * 1024,
                latency_cycles: 150,
                access_setup_words: 1,
            },
            emem: LevelSpec {
                capacity_bytes: (2u64 << 30) - (64 << 20),
                latency_cycles: 300,
                access_setup_words: 2,
            },
        }
    }
}

impl Default for MemorySpec {
    fn default() -> Self {
        MemorySpec::agilio_cx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_near_to_far() {
        assert!(MemLevel::Lmem < MemLevel::Ctm);
        assert!(MemLevel::Ctm < MemLevel::Imem);
        assert!(MemLevel::Imem < MemLevel::Emem);
    }

    #[test]
    fn agilio_latencies_increase_with_distance() {
        let spec = MemorySpec::agilio_cx();
        let lat: Vec<u64> = MemLevel::ALL
            .iter()
            .map(|&l| spec.level(l).latency_cycles)
            .collect();
        assert!(lat.windows(2).all(|w| w[0] < w[1]));
        let cap: Vec<u64> = MemLevel::ALL
            .iter()
            .map(|&l| spec.level(l).capacity_bytes)
            .collect();
        assert!(cap.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn display_names() {
        assert_eq!(MemLevel::Lmem.to_string(), "LMEM");
        assert_eq!(MemLevel::Emem.to_string(), "EMEM");
    }
}
