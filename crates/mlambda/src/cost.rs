//! The shared cycle-cost model.
//!
//! Both the NIC model (NPU cores at 633 MHz) and the host model (x86 at
//! 2 GHz) convert an execution's [`ExecStats`] into cycles with this
//! module; only the cycle *duration* and memory latencies differ per
//! target.

use crate::interp::ExecStats;
use crate::memory::{MemLevel, MemorySpec};

/// Bytes moved per cycle during a bulk (DMA-style) copy once the access
/// has been issued.
pub const BULK_BYTES_PER_CYCLE: u64 = 8;

/// Burst factor for scalar accesses: NPU transfer registers fetch and
/// write-combine memory in bursts, so sequential scalar accesses
/// amortize the level latency over this many accesses (plus one issue
/// cycle each).
pub const SCALAR_BURST: u64 = 8;

/// Converts execution statistics into NPU cycles given each object's
/// placement and the memory hierarchy spec.
///
/// The model charges one cycle per instruction; scalar accesses cost
/// one issue cycle plus the placement level's latency amortized over
/// [`SCALAR_BURST`] (transfer-register bursts and write combining, which
/// NPU firmware relies on for sequential access patterns); bulk copies
/// cost the level latency once per operation plus
/// [`BULK_BYTES_PER_CYCLE`] streaming throughput. Packet
/// (payload/response) bytes live in CTM, where the NIC's DMA engine
/// deposits frames.
///
/// # Panics
///
/// Panics if `placement` is shorter than the per-object stat vectors.
///
/// # Examples
///
/// ```
/// use lnic_mlambda::cost::exec_cycles;
/// use lnic_mlambda::interp::ExecStats;
/// use lnic_mlambda::memory::{MemLevel, MemorySpec};
///
/// let stats = ExecStats { instrs: 100, ..Default::default() };
/// let cycles = exec_cycles(&stats, &[], &MemorySpec::agilio_cx());
/// assert_eq!(cycles, 100);
/// ```
pub fn exec_cycles(stats: &ExecStats, placement: &[MemLevel], spec: &MemorySpec) -> u64 {
    let mut cycles = stats.instrs;
    for (i, &scalar) in stats.obj_scalar.iter().enumerate() {
        let level = placement[i];
        let lat = spec.level(level).latency_cycles;
        cycles += mem_charge_cycles(scalar, stats.obj_bulk_ops[i], stats.obj_bulk_bytes[i], lat);
    }
    cycles += mem_charge_cycles(stats.payload_scalar, 0, 0, spec.ctm.latency_cycles);
    cycles += mem_charge_cycles(0, 0, stats.payload_bulk_bytes, spec.ctm.latency_cycles);
    cycles += mem_charge_cycles(0, 0, stats.emitted_bytes, spec.ctm.latency_cycles);
    cycles
}

/// Cycles charged for one object's accesses at a level with latency
/// `latency_cycles`: the single source of truth shared by
/// [`exec_cycles`], the NIC/host trace instrumentation, and (mirrored
/// independently) `lnic_sim::check::InvariantChecker`.
pub fn mem_charge_cycles(scalar: u64, bulk_ops: u64, bulk_bytes: u64, latency_cycles: u64) -> u64 {
    scalar * (1 + latency_cycles.div_ceil(SCALAR_BURST))
        + bulk_ops * latency_cycles
        + bulk_bytes.div_ceil(BULK_BYTES_PER_CYCLE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MemorySpec {
        MemorySpec::agilio_cx()
    }

    #[test]
    fn scalar_access_cost_depends_on_level() {
        let stats = ExecStats {
            instrs: 10,
            obj_scalar: vec![4],
            obj_bulk_bytes: vec![0],
            obj_bulk_ops: vec![0],
            ..Default::default()
        };
        let near = exec_cycles(&stats, &[MemLevel::Lmem], &spec());
        let far = exec_cycles(&stats, &[MemLevel::Emem], &spec());
        let cost = |lat: u64| 1 + lat.div_ceil(SCALAR_BURST);
        assert_eq!(near, 10 + 4 * cost(spec().lmem.latency_cycles));
        assert_eq!(far, 10 + 4 * cost(spec().emem.latency_cycles));
        assert!(far > near);
    }

    #[test]
    fn bulk_cost_charges_latency_once_plus_streaming() {
        let stats = ExecStats {
            instrs: 1,
            obj_scalar: vec![0],
            obj_bulk_bytes: vec![64],
            obj_bulk_ops: vec![1],
            ..Default::default()
        };
        let c = exec_cycles(&stats, &[MemLevel::Ctm], &spec());
        assert_eq!(c, 1 + spec().ctm.latency_cycles + 64 / BULK_BYTES_PER_CYCLE);
    }

    #[test]
    fn payload_and_emit_bytes_stream_from_ctm() {
        let stats = ExecStats {
            instrs: 0,
            payload_scalar: 2,
            payload_bulk_bytes: 16,
            emitted_bytes: 24,
            ..Default::default()
        };
        let c = exec_cycles(&stats, &[], &spec());
        let scalar = 1 + spec().ctm.latency_cycles.div_ceil(SCALAR_BURST);
        assert_eq!(c, 2 * scalar + 2 + 3);
    }

    /// Per-op spot checks against the calibration table in DESIGN.md
    /// ("LMEM/CTM/IMEM/EMEM ≈ 1/50/150/300 cycles"). A drift in either
    /// the latency parameters or the charge formula fails here.
    #[test]
    fn mem_charge_spot_checks_match_design_doc() {
        let s = spec();
        assert_eq!(
            (
                s.lmem.latency_cycles,
                s.ctm.latency_cycles,
                s.imem.latency_cycles,
                s.emem.latency_cycles
            ),
            (1, 50, 150, 300)
        );
        // One scalar access: issue cycle + latency/8 rounded up.
        assert_eq!(mem_charge_cycles(1, 0, 0, 1), 2); // LMEM
        assert_eq!(mem_charge_cycles(1, 0, 0, 50), 8); // CTM
        assert_eq!(mem_charge_cycles(1, 0, 0, 150), 20); // IMEM
        assert_eq!(mem_charge_cycles(1, 0, 0, 300), 39); // EMEM
                                                         // One 64-byte bulk copy: full latency once + 8 B/cycle stream.
        assert_eq!(mem_charge_cycles(0, 1, 64, 300), 308); // EMEM
        assert_eq!(mem_charge_cycles(0, 1, 64, 50), 58); // CTM
                                                         // Nothing accessed, nothing charged.
        assert_eq!(mem_charge_cycles(0, 0, 0, 300), 0);
    }

    /// `exec_cycles` must equal `instrs` plus the per-object and CTM
    /// packet charges computed with `mem_charge_cycles` — the identity
    /// the trace instrumentation and `InvariantChecker` rely on when
    /// they re-derive `ExecFinish.total_cycles` from `MemCharge`
    /// events.
    #[test]
    fn exec_cycles_decomposes_into_mem_charges() {
        let s = spec();
        let stats = ExecStats {
            instrs: 123,
            obj_scalar: vec![5, 0, 2],
            obj_bulk_ops: vec![1, 0, 3],
            obj_bulk_bytes: vec![64, 0, 17],
            payload_scalar: 4,
            payload_bulk_bytes: 33,
            emitted_bytes: 9,
            ..Default::default()
        };
        let placement = [MemLevel::Lmem, MemLevel::Ctm, MemLevel::Emem];
        let total = exec_cycles(&stats, &placement, &s);
        let mut expect = stats.instrs;
        for (i, &level) in placement.iter().enumerate() {
            expect += mem_charge_cycles(
                stats.obj_scalar[i],
                stats.obj_bulk_ops[i],
                stats.obj_bulk_bytes[i],
                s.level(level).latency_cycles,
            );
        }
        expect += mem_charge_cycles(stats.payload_scalar, 0, 0, s.ctm.latency_cycles);
        expect += mem_charge_cycles(0, 0, stats.payload_bulk_bytes, s.ctm.latency_cycles);
        expect += mem_charge_cycles(0, 0, stats.emitted_bytes, s.ctm.latency_cycles);
        assert_eq!(total, expect);
    }

    /// The three CTM byte streams are charged separately because each
    /// rounds up to whole cycles on its own; merging them would
    /// under-charge. This pins that rounding behaviour.
    #[test]
    fn byte_streams_round_up_independently() {
        let stats = ExecStats {
            payload_bulk_bytes: 4,
            emitted_bytes: 4,
            ..Default::default()
        };
        // 4 B + 4 B is two partial cycles, not one merged full cycle.
        assert_eq!(exec_cycles(&stats, &[], &spec()), 2);
    }
}
