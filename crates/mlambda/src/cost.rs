//! The shared cycle-cost model.
//!
//! Both the NIC model (NPU cores at 633 MHz) and the host model (x86 at
//! 2 GHz) convert an execution's [`ExecStats`] into cycles with this
//! module; only the cycle *duration* and memory latencies differ per
//! target.

use crate::interp::ExecStats;
use crate::memory::{MemLevel, MemorySpec};

/// Bytes moved per cycle during a bulk (DMA-style) copy once the access
/// has been issued.
pub const BULK_BYTES_PER_CYCLE: u64 = 8;

/// Burst factor for scalar accesses: NPU transfer registers fetch and
/// write-combine memory in bursts, so sequential scalar accesses
/// amortize the level latency over this many accesses (plus one issue
/// cycle each).
pub const SCALAR_BURST: u64 = 8;

/// Converts execution statistics into NPU cycles given each object's
/// placement and the memory hierarchy spec.
///
/// The model charges one cycle per instruction; scalar accesses cost
/// one issue cycle plus the placement level's latency amortized over
/// [`SCALAR_BURST`] (transfer-register bursts and write combining, which
/// NPU firmware relies on for sequential access patterns); bulk copies
/// cost the level latency once per operation plus
/// [`BULK_BYTES_PER_CYCLE`] streaming throughput. Packet
/// (payload/response) bytes live in CTM, where the NIC's DMA engine
/// deposits frames.
///
/// # Panics
///
/// Panics if `placement` is shorter than the per-object stat vectors.
///
/// # Examples
///
/// ```
/// use lnic_mlambda::cost::exec_cycles;
/// use lnic_mlambda::interp::ExecStats;
/// use lnic_mlambda::memory::{MemLevel, MemorySpec};
///
/// let stats = ExecStats { instrs: 100, ..Default::default() };
/// let cycles = exec_cycles(&stats, &[], &MemorySpec::agilio_cx());
/// assert_eq!(cycles, 100);
/// ```
pub fn exec_cycles(stats: &ExecStats, placement: &[MemLevel], spec: &MemorySpec) -> u64 {
    let scalar_cost = |lat: u64| 1 + lat.div_ceil(SCALAR_BURST);
    let mut cycles = stats.instrs;
    for (i, &scalar) in stats.obj_scalar.iter().enumerate() {
        let level = placement[i];
        let lat = spec.level(level).latency_cycles;
        cycles += scalar * scalar_cost(lat);
        cycles += stats.obj_bulk_ops[i] * lat;
        cycles += stats.obj_bulk_bytes[i].div_ceil(BULK_BYTES_PER_CYCLE);
    }
    cycles += stats.payload_scalar * scalar_cost(spec.ctm.latency_cycles);
    cycles += stats.payload_bulk_bytes.div_ceil(BULK_BYTES_PER_CYCLE);
    cycles += stats.emitted_bytes.div_ceil(BULK_BYTES_PER_CYCLE);
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MemorySpec {
        MemorySpec::agilio_cx()
    }

    #[test]
    fn scalar_access_cost_depends_on_level() {
        let stats = ExecStats {
            instrs: 10,
            obj_scalar: vec![4],
            obj_bulk_bytes: vec![0],
            obj_bulk_ops: vec![0],
            ..Default::default()
        };
        let near = exec_cycles(&stats, &[MemLevel::Lmem], &spec());
        let far = exec_cycles(&stats, &[MemLevel::Emem], &spec());
        let cost = |lat: u64| 1 + lat.div_ceil(SCALAR_BURST);
        assert_eq!(near, 10 + 4 * cost(spec().lmem.latency_cycles));
        assert_eq!(far, 10 + 4 * cost(spec().emem.latency_cycles));
        assert!(far > near);
    }

    #[test]
    fn bulk_cost_charges_latency_once_plus_streaming() {
        let stats = ExecStats {
            instrs: 1,
            obj_scalar: vec![0],
            obj_bulk_bytes: vec![64],
            obj_bulk_ops: vec![1],
            ..Default::default()
        };
        let c = exec_cycles(&stats, &[MemLevel::Ctm], &spec());
        assert_eq!(c, 1 + spec().ctm.latency_cycles + 64 / BULK_BYTES_PER_CYCLE);
    }

    #[test]
    fn payload_and_emit_bytes_stream_from_ctm() {
        let stats = ExecStats {
            instrs: 0,
            payload_scalar: 2,
            payload_bulk_bytes: 16,
            emitted_bytes: 24,
            ..Default::default()
        };
        let c = exec_cycles(&stats, &[], &spec());
        let scalar = 1 + spec().ctm.latency_cycles.div_ceil(SCALAR_BURST);
        assert_eq!(c, 2 * scalar + 2 + 3);
    }
}
