//! Human-readable disassembly of Match+Lambda programs and lowered
//! binaries — the `objdump` of the toolchain.

use std::fmt::Write as _;

use crate::compile::{Firmware, Word};
use crate::ir::{FuncRef, Instr};
use crate::program::{Lambda, Program};

/// Formats one instruction as assembly-like text.
pub fn instr_to_string(i: &Instr) -> String {
    match i {
        Instr::Const { dst, value } => format!("mov   r{dst}, #{value}"),
        Instr::Mov { dst, src } => format!("mov   r{dst}, r{src}"),
        Instr::Alu { op, dst, a, b } => {
            format!("{:<5} r{dst}, r{a}, r{b}", format!("{op:?}").to_lowercase())
        }
        Instr::AluImm { op, dst, a, imm } => {
            format!(
                "{:<5} r{dst}, r{a}, #{imm}",
                format!("{op:?}").to_lowercase()
            )
        }
        Instr::LoadHdr { dst, field } => format!("ldhdr r{dst}, {field:?}"),
        Instr::LoadMatchData { dst, idx } => format!("ldmd  r{dst}, md[{idx}]"),
        Instr::Load {
            dst,
            obj,
            addr,
            width,
        } => format!("ld.{:<2} r{dst}, {obj}[r{addr}]", width.bytes()),
        Instr::Store {
            obj,
            addr,
            src,
            width,
        } => format!("st.{:<2} {obj}[r{addr}], r{src}", width.bytes()),
        Instr::LoadPayload { dst, addr, width } => {
            format!("ldp.{} r{dst}, payload[r{addr}]", width.bytes())
        }
        Instr::Emit { src, width } => format!("emit.{} r{src}", width.bytes()),
        Instr::EmitObj { obj, off, len } => format!("emitb {obj}[r{off}..+r{len}]"),
        Instr::PayloadToObj {
            obj,
            src_off,
            dst_off,
            len,
        } => format!("cpyin {obj}[r{dst_off}] <- payload[r{src_off}..+r{len}]"),
        Instr::Branch { cmp, a, b, target } => {
            format!(
                "b{:<4} r{a}, r{b}, @{target}",
                format!("{cmp:?}").to_lowercase()
            )
        }
        Instr::Jump { target } => format!("jmp   @{target}"),
        Instr::Call { func } => match func {
            FuncRef::Local(i) => format!("call  local:{i}"),
            FuncRef::Shared(i) => format!("call  shared:{i}"),
        },
        Instr::Ret => "ret".to_owned(),
        Instr::NetRpc {
            service,
            req_obj,
            req_off,
            req_len,
            resp_obj,
            resp_off,
            resp_cap,
            resp_len_dst,
        } => format!(
            "rpc   svc:{service} req={req_obj}[r{req_off}..+r{req_len}] \
             resp={resp_obj}[r{resp_off}..cap r{resp_cap}] -> r{resp_len_dst}"
        ),
    }
}

/// Disassembles one lambda (every function, with indices).
pub fn disassemble_lambda(lambda: &Lambda) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "lambda {} ({}):", lambda.name, lambda.id);
    for (oi, obj) in lambda.objects.iter().enumerate() {
        let _ = writeln!(
            out,
            "  .object obj{oi} \"{}\" {} bytes {:?}",
            obj.name, obj.size, obj.pragma
        );
    }
    for (fi, f) in lambda.functions.iter().enumerate() {
        let _ = writeln!(out, "  fn {fi} \"{}\":", f.name);
        for (pc, i) in f.body.iter().enumerate() {
            let _ = writeln!(out, "    {pc:>4}: {}", instr_to_string(i));
        }
    }
    out
}

/// Disassembles a whole program (lambdas + shared library + tables).
pub fn disassemble_program(program: &Program) -> String {
    let mut out = String::new();
    for lambda in &program.lambdas {
        out.push_str(&disassemble_lambda(lambda));
    }
    if !program.shared.is_empty() {
        out.push_str("shared library:\n");
        for (si, f) in program.shared.iter().enumerate() {
            let _ = writeln!(out, "  shared {si} \"{}\":", f.name);
            for (pc, i) in f.body.iter().enumerate() {
                let _ = writeln!(out, "    {pc:>4}: {}", instr_to_string(i));
            }
        }
    }
    for table in &program.tables {
        let _ = writeln!(
            out,
            "table \"{}\" keys={:?} entries={}",
            table.name,
            table.keys,
            table.entries.len()
        );
    }
    out
}

/// Disassembles a lowered per-core binary with section annotations.
pub fn disassemble_firmware(fw: &Firmware) -> String {
    let mut out = String::new();
    let s = &fw.binary.sections;
    let _ = writeln!(
        out,
        "; {} words (parser {}, match {}, lambdas {}, shared {})",
        fw.binary.len(),
        s.parser,
        s.match_stage,
        s.lambdas,
        s.shared
    );
    for (addr, word) in fw.binary.words.iter().enumerate() {
        let text = match word {
            Word::Parse(class) => format!("parse.{class:?}"),
            Word::TableSetup => "tbl.setup".to_owned(),
            Word::TableKey => "tbl.key".to_owned(),
            Word::TableCmp => "tbl.cmp".to_owned(),
            Word::TableAction => "tbl.act".to_owned(),
            Word::MemSetup(obj) => format!("mem.setup {obj}"),
            Word::BulkSetup => "bulk.setup".to_owned(),
            Word::RpcSetup => "rpc.setup".to_owned(),
            Word::Ir(i) => instr_to_string(i),
        };
        let _ = writeln!(out, "{addr:>6}: {text}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::ir::{AluOp, Cmp, ObjId, Width};

    fn sample() -> Program {
        let mut p = Program::new();
        let mut l = Lambda::new(
            "demo",
            crate::program::WorkloadId(1),
            crate::ir::Function::new(
                "entry",
                vec![
                    Instr::Const { dst: 1, value: 7 },
                    Instr::AluImm {
                        op: AluOp::Add,
                        dst: 1,
                        a: 1,
                        imm: 1,
                    },
                    Instr::Branch {
                        cmp: Cmp::Lt,
                        a: 1,
                        b: 2,
                        target: 4,
                    },
                    Instr::Load {
                        dst: 3,
                        obj: ObjId(0),
                        addr: 1,
                        width: Width::B4,
                    },
                    Instr::Ret,
                ],
            ),
        );
        l.add_object(crate::program::MemObject::zeroed("buf", 64));
        p.add_lambda(l, vec![1]);
        p
    }

    #[test]
    fn every_instruction_formats_distinctly() {
        let p = sample();
        let text = disassemble_program(&p);
        assert!(text.contains("lambda demo (w1):"));
        assert!(text.contains("mov   r1, #7"));
        assert!(text.contains("add   r1, r1, #1"));
        assert!(text.contains("blt   r1, r2, @4"));
        assert!(text.contains("ld.4  r3, obj0[r1]"));
        assert!(text.contains(".object obj0 \"buf\" 64 bytes"));
        assert!(text.contains("table \"dispatch_w1\""));
    }

    #[test]
    fn firmware_disassembly_annotates_sections() {
        let fw = compile(&sample(), &CompileOptions::optimized()).unwrap();
        let text = disassemble_firmware(&fw);
        assert!(text.starts_with("; "));
        assert!(text.contains("parse.Ethernet"));
        assert!(text.contains("tbl."));
        // Line count matches word count (+1 header).
        assert_eq!(text.lines().count(), fw.binary.len() + 1);
    }

    /// The disassembler is a pure function of the program: compiling
    /// and disassembling the same source twice must produce
    /// byte-identical text (no iteration-order or address
    /// nondeterminism). This is the textual analogue of the golden
    /// trace-hash tests.
    #[test]
    fn disassembly_is_stable_across_compiles() {
        let p = sample();
        assert_eq!(disassemble_program(&p), disassemble_program(&p));
        for opts in [CompileOptions::optimized(), CompileOptions::naive()] {
            let a = compile(&p, &opts).unwrap();
            let b = compile(&p, &opts).unwrap();
            assert_eq!(
                disassemble_firmware(&a),
                disassemble_firmware(&b),
                "{opts:?}"
            );
        }
    }

    /// Optimization must change the lowered binary's text (dead-code
    /// elimination and match reduction both hit `sample`), so the
    /// stability test above cannot pass vacuously.
    #[test]
    fn disassembly_reflects_optimization_level() {
        let p = sample();
        let opt = disassemble_firmware(&compile(&p, &CompileOptions::optimized()).unwrap());
        let raw = disassemble_firmware(&compile(&p, &CompileOptions::naive()).unwrap());
        assert_ne!(opt, raw);
    }

    /// Every IR variant renders to a distinct, non-empty mnemonic.
    #[test]
    fn all_variants_render_distinctly() {
        let instrs = vec![
            Instr::Const { dst: 1, value: 7 },
            Instr::Mov { dst: 1, src: 2 },
            Instr::Alu {
                op: AluOp::Add,
                dst: 1,
                a: 2,
                b: 3,
            },
            Instr::AluImm {
                op: AluOp::Mul,
                dst: 1,
                a: 2,
                imm: 3,
            },
            Instr::LoadHdr {
                dst: 1,
                field: crate::ir::HeaderField::SrcPort,
            },
            Instr::LoadMatchData { dst: 1, idx: 0 },
            Instr::Load {
                dst: 1,
                obj: ObjId(0),
                addr: 2,
                width: Width::B4,
            },
            Instr::Store {
                obj: ObjId(0),
                addr: 1,
                src: 2,
                width: Width::B8,
            },
            Instr::LoadPayload {
                dst: 1,
                addr: 2,
                width: Width::B1,
            },
            Instr::Emit {
                src: 1,
                width: Width::B2,
            },
            Instr::EmitObj {
                obj: ObjId(0),
                off: 1,
                len: 2,
            },
            Instr::PayloadToObj {
                obj: ObjId(0),
                src_off: 1,
                dst_off: 2,
                len: 3,
            },
            Instr::Branch {
                cmp: Cmp::Eq,
                a: 1,
                b: 2,
                target: 3,
            },
            Instr::Jump { target: 1 },
            Instr::Call {
                func: FuncRef::Local(0),
            },
            Instr::Call {
                func: FuncRef::Shared(1),
            },
            Instr::Ret,
            Instr::NetRpc {
                service: 2,
                req_obj: ObjId(0),
                req_off: 1,
                req_len: 2,
                resp_obj: ObjId(1),
                resp_off: 3,
                resp_cap: 4,
                resp_len_dst: 5,
            },
        ];
        let rendered: Vec<String> = instrs.iter().map(instr_to_string).collect();
        for (i, r) in rendered.iter().enumerate() {
            assert!(!r.is_empty(), "variant {i} renders empty");
            for (j, other) in rendered.iter().enumerate() {
                if i != j {
                    assert_ne!(r, other, "variants {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn rpc_and_bulk_forms_format() {
        let i = Instr::NetRpc {
            service: 2,
            req_obj: ObjId(0),
            req_off: 1,
            req_len: 2,
            resp_obj: ObjId(1),
            resp_off: 3,
            resp_cap: 4,
            resp_len_dst: 5,
        };
        let s = instr_to_string(&i);
        assert!(s.contains("svc:2") && s.contains("obj1"));
        assert_eq!(instr_to_string(&Instr::Ret), "ret");
    }
}
