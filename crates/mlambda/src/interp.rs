//! The reference interpreter for Match+Lambda programs.
//!
//! The interpreter gives lambdas real semantics: the same IR both produces
//! functional results (web pages, key-value responses, transformed images)
//! and yields the execution statistics ([`ExecStats`]) that the NIC and
//! host models convert into virtual time. Execution is resumable across
//! [`Instr::NetRpc`] suspension points so the discrete-event simulation
//! can park an NPU thread while a dependent RPC is in flight.

use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use crate::ir::{FuncRef, Instr, Width, RET_REG};
use crate::program::{Lambda, Program};

/// Maximum call depth (NPUs have a tiny fixed call stack).
pub const MAX_CALL_DEPTH: usize = 16;

/// The header values visible to a lambda for one request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeaderValues {
    /// λ-NIC workload id.
    pub workload_id: u32,
    /// λ-NIC request id.
    pub request_id: u64,
    /// Fragment index.
    pub frag_index: u16,
    /// Fragment count.
    pub frag_count: u16,
    /// Return code (responses only).
    pub return_code: u16,
    /// IPv4 source.
    pub src_ip: u32,
    /// IPv4 destination.
    pub dst_ip: u32,
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
}

impl HeaderValues {
    /// Reads one field (payload length comes from the request context).
    fn field(&self, field: crate::ir::HeaderField, payload_len: usize) -> u64 {
        use crate::ir::HeaderField as F;
        match field {
            F::WorkloadId => self.workload_id as u64,
            F::RequestId => self.request_id,
            F::FragIndex => self.frag_index as u64,
            F::FragCount => self.frag_count as u64,
            F::ReturnCode => self.return_code as u64,
            F::SrcIp => self.src_ip as u64,
            F::DstIp => self.dst_ip as u64,
            F::SrcPort => self.src_port as u64,
            F::DstPort => self.dst_port as u64,
            F::PayloadLen => payload_len as u64,
        }
    }
}

/// One request as seen by a lambda: parsed headers, payload, and the
/// match-data parameters attached by the match stage.
#[derive(Clone, Debug, Default)]
pub struct RequestCtx {
    /// Parsed header fields.
    pub headers: HeaderValues,
    /// Request payload bytes.
    pub payload: Bytes,
    /// `MATCH_DATA_T` parameters from the matched entry.
    pub match_data: Vec<u64>,
}

/// Persistent object storage for one deployed lambda instance. Global
/// objects keep their contents across requests (§4.1, "global objects
/// that persist state across runs").
#[derive(Clone, Debug)]
pub struct ObjectMemory {
    storage: Vec<Vec<u8>>,
}

impl ObjectMemory {
    /// Allocates and initializes storage for `lambda`'s declared objects.
    pub fn for_lambda(lambda: &Lambda) -> Self {
        let storage = lambda
            .objects
            .iter()
            .map(|o| {
                let mut v = o.init.clone();
                v.resize(o.size as usize, 0);
                v
            })
            .collect();
        ObjectMemory { storage }
    }

    /// Borrows an object's bytes.
    pub fn object(&self, idx: usize) -> &[u8] {
        &self.storage[idx]
    }

    /// Mutably borrows an object's bytes.
    pub fn object_mut(&mut self, idx: usize) -> &mut [u8] {
        &mut self.storage[idx]
    }

    /// Total bytes held.
    pub fn total_bytes(&self) -> usize {
        self.storage.iter().map(|s| s.len()).sum()
    }
}

/// Counters describing one lambda execution; the timing models translate
/// these into NPU or CPU cycles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instrs: u64,
    /// Scalar accesses per object.
    pub obj_scalar: Vec<u64>,
    /// Bulk bytes moved per object.
    pub obj_bulk_bytes: Vec<u64>,
    /// Bulk operations (copies/RPC reads) per object.
    pub obj_bulk_ops: Vec<u64>,
    /// Scalar reads of the request payload.
    pub payload_scalar: u64,
    /// Bulk bytes read from the request payload.
    pub payload_bulk_bytes: u64,
    /// Bytes appended to the response.
    pub emitted_bytes: u64,
    /// Network RPCs issued.
    pub net_rpcs: u64,
    /// Deepest call nesting observed.
    pub max_call_depth: usize,
}

impl ExecStats {
    fn for_lambda(lambda: &Lambda) -> Self {
        ExecStats {
            obj_scalar: vec![0; lambda.objects.len()],
            obj_bulk_bytes: vec![0; lambda.objects.len()],
            obj_bulk_ops: vec![0; lambda.objects.len()],
            ..Default::default()
        }
    }
}

/// A finished execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The lambda's return code (`r0` at entry `Ret`).
    pub return_code: u64,
    /// The response payload built with `Emit*` instructions.
    pub response: Bytes,
    /// Execution counters.
    pub stats: ExecStats,
}

/// Why an execution step returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The lambda finished.
    Done(Completion),
    /// The lambda issued a [`Instr::NetRpc`] and is suspended until
    /// [`Execution::resume`] provides the response.
    NetCall {
        /// Logical service id.
        service: u16,
        /// Request payload.
        payload: Bytes,
    },
}

/// Runtime faults. The compiler's isolation story (§4.2-D2) maps memory
/// violations to a fault instead of letting a lambda escape its objects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// An object access fell outside the object's bounds.
    ObjOutOfBounds {
        /// The object index.
        obj: u16,
        /// Attempted offset.
        offset: u64,
        /// Attempted length.
        len: u64,
    },
    /// A payload access fell outside the request payload.
    PayloadOutOfBounds {
        /// Attempted offset.
        offset: u64,
        /// Attempted length.
        len: u64,
    },
    /// The per-invocation instruction budget was exhausted (the serverless
    /// compute-time limit, §2.1).
    FuelExhausted,
    /// Call nesting exceeded [`MAX_CALL_DEPTH`].
    CallDepthExceeded,
    /// `resume` was called while the lambda was not awaiting a response.
    NotAwaitingResponse,
    /// `run` was called while the lambda *was* awaiting a response.
    AwaitingResponse,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ObjOutOfBounds { obj, offset, len } => {
                write!(f, "object {obj} access out of bounds at {offset}+{len}")
            }
            ExecError::PayloadOutOfBounds { offset, len } => {
                write!(f, "payload access out of bounds at {offset}+{len}")
            }
            ExecError::FuelExhausted => write!(f, "instruction budget exhausted"),
            ExecError::CallDepthExceeded => write!(f, "call depth exceeded"),
            ExecError::NotAwaitingResponse => write!(f, "resume without pending rpc"),
            ExecError::AwaitingResponse => write!(f, "run while awaiting rpc response"),
        }
    }
}

impl std::error::Error for ExecError {}

#[derive(Clone, Copy, Debug)]
struct Frame {
    func: FuncRef,
    pc: u32,
}

#[derive(Clone, Debug)]
struct PendingNet {
    resp_obj: u16,
    resp_off: u64,
    resp_cap: u64,
    resp_len_dst: u8,
}

/// A (possibly suspended) execution of one lambda over one request.
///
/// # Examples
///
/// ```
/// use lnic_mlambda::interp::{Execution, ObjectMemory, RequestCtx, StepOutcome};
/// use lnic_mlambda::ir::{Function, Instr};
/// use lnic_mlambda::program::{Lambda, Program, WorkloadId};
///
/// let entry = Function::new(
///     "entry",
///     vec![
///         Instr::Const { dst: 1, value: 0xAB },
///         Instr::Emit { src: 1, width: lnic_mlambda::ir::Width::B1 },
///         Instr::Const { dst: 0, value: 0 },
///         Instr::Ret,
///     ],
/// );
/// let mut p = Program::new();
/// let idx = p.add_lambda(Lambda::new("one", WorkloadId(1), entry), vec![]);
/// let mut mem = ObjectMemory::for_lambda(&p.lambdas[idx]);
/// let p = std::sync::Arc::new(p);
/// let mut exec = Execution::start(std::sync::Arc::clone(&p), idx, RequestCtx::default(), 1_000);
/// match exec.run(&mut mem).expect("executes") {
///     StepOutcome::Done(done) => assert_eq!(&done.response[..], &[0xAB]),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct Execution {
    program: Arc<Program>,
    lambda_idx: usize,
    ctx: RequestCtx,
    regs: [u64; crate::ir::NUM_REGISTERS],
    frames: Vec<Frame>,
    emitted: BytesMut,
    stats: ExecStats,
    fuel: u64,
    pending: Option<PendingNet>,
    finished: bool,
}

impl Execution {
    /// Begins executing `program.lambdas[lambda_idx]` over `ctx` with an
    /// instruction budget of `fuel`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda_idx` is out of range.
    pub fn start(program: Arc<Program>, lambda_idx: usize, ctx: RequestCtx, fuel: u64) -> Self {
        let lambda = &program.lambdas[lambda_idx];
        let stats = ExecStats::for_lambda(lambda);
        Execution {
            program,
            lambda_idx,
            ctx,
            regs: [0; crate::ir::NUM_REGISTERS],
            frames: vec![Frame {
                func: FuncRef::Local(0),
                pc: 0,
            }],
            emitted: BytesMut::new(),
            stats,
            fuel,
            pending: None,
            finished: false,
        }
    }

    /// Runs until completion or the next suspension point.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on a memory fault, exhausted fuel, call
    /// overflow, or when the execution is currently awaiting a response.
    pub fn run(&mut self, mem: &mut ObjectMemory) -> Result<StepOutcome, ExecError> {
        if self.pending.is_some() {
            return Err(ExecError::AwaitingResponse);
        }
        self.step_loop(mem)
    }

    /// Delivers the response of the pending [`Instr::NetRpc`] and
    /// continues execution.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::NotAwaitingResponse`] when no RPC is pending,
    /// plus any error [`Execution::run`] can produce.
    pub fn resume(
        &mut self,
        mem: &mut ObjectMemory,
        response: &[u8],
    ) -> Result<StepOutcome, ExecError> {
        let pending = self.pending.take().ok_or(ExecError::NotAwaitingResponse)?;
        let n = (response.len() as u64).min(pending.resp_cap);
        self.write_obj_bulk(
            mem,
            pending.resp_obj,
            pending.resp_off,
            &response[..n as usize],
        )?;
        self.regs[pending.resp_len_dst as usize] = n;
        self.step_loop(mem)
    }

    /// Whether the execution is suspended on a network RPC.
    pub fn is_awaiting(&self) -> bool {
        self.pending.is_some()
    }

    /// Execution statistics accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn step_loop(&mut self, mem: &mut ObjectMemory) -> Result<StepOutcome, ExecError> {
        debug_assert!(!self.finished, "execution already finished");
        let program = Arc::clone(&self.program);
        loop {
            let frame = *self.frames.last().expect("at least the entry frame");
            let body: &[Instr] = match frame.func {
                FuncRef::Local(i) => &program.lambdas[self.lambda_idx].functions[i as usize].body,
                FuncRef::Shared(i) => &program.shared[i as usize].body,
            };
            if frame.pc as usize >= body.len() {
                // Falling off the end is prevented by validation
                // (MissingTerminator), but degrade gracefully.
                if let Some(done) = self.pop_frame() {
                    return Ok(StepOutcome::Done(done));
                }
                continue;
            }
            let instr = &body[frame.pc as usize];
            if self.fuel == 0 {
                return Err(ExecError::FuelExhausted);
            }
            self.fuel -= 1;
            self.stats.instrs += 1;

            let mut next_pc = frame.pc + 1;
            match *instr {
                Instr::Const { dst, value } => self.regs[dst as usize] = value,
                Instr::Mov { dst, src } => self.regs[dst as usize] = self.regs[src as usize],
                Instr::Alu { op, dst, a, b } => {
                    self.regs[dst as usize] =
                        op.apply(self.regs[a as usize], self.regs[b as usize]);
                }
                Instr::AluImm { op, dst, a, imm } => {
                    self.regs[dst as usize] = op.apply(self.regs[a as usize], imm);
                }
                Instr::LoadHdr { dst, field } => {
                    self.regs[dst as usize] = self.ctx.headers.field(field, self.ctx.payload.len());
                }
                Instr::LoadMatchData { dst, idx } => {
                    self.regs[dst as usize] =
                        self.ctx.match_data.get(idx as usize).copied().unwrap_or(0);
                }
                Instr::Load {
                    dst,
                    obj,
                    addr,
                    width,
                } => {
                    let off = self.regs[addr as usize];
                    let v = self.read_obj_scalar(mem, obj.0, off, width)?;
                    self.regs[dst as usize] = v;
                }
                Instr::Store {
                    obj,
                    addr,
                    src,
                    width,
                } => {
                    let off = self.regs[addr as usize];
                    let v = self.regs[src as usize];
                    self.write_obj_scalar(mem, obj.0, off, v, width)?;
                }
                Instr::LoadPayload { dst, addr, width } => {
                    let off = self.regs[addr as usize];
                    let v = self.read_payload_scalar(off, width)?;
                    self.regs[dst as usize] = v;
                }
                Instr::Emit { src, width } => {
                    let v = self.regs[src as usize];
                    let bytes = v.to_be_bytes();
                    self.emitted.extend_from_slice(&bytes[8 - width.bytes()..]);
                    self.stats.emitted_bytes += width.bytes() as u64;
                }
                Instr::EmitObj { obj, off, len } => {
                    let off = self.regs[off as usize];
                    let len = self.regs[len as usize];
                    self.check_obj_range(mem, obj.0, off, len)?;
                    let data = &mem.object(obj.0 as usize)[off as usize..(off + len) as usize];
                    self.emitted.extend_from_slice(data);
                    self.stats.obj_bulk_bytes[obj.0 as usize] += len;
                    self.stats.obj_bulk_ops[obj.0 as usize] += 1;
                    self.stats.emitted_bytes += len;
                }
                Instr::PayloadToObj {
                    obj,
                    src_off,
                    dst_off,
                    len,
                } => {
                    let src = self.regs[src_off as usize];
                    let dst = self.regs[dst_off as usize];
                    let len = self.regs[len as usize];
                    if src
                        .checked_add(len)
                        .map(|e| e as usize > self.ctx.payload.len())
                        != Some(false)
                    {
                        return Err(ExecError::PayloadOutOfBounds { offset: src, len });
                    }
                    let data = self.ctx.payload.slice(src as usize..(src + len) as usize);
                    self.write_obj_bulk(mem, obj.0, dst, &data)?;
                    self.stats.payload_bulk_bytes += len;
                }
                Instr::Branch { cmp, a, b, target } => {
                    if cmp.test(self.regs[a as usize], self.regs[b as usize]) {
                        next_pc = target;
                    }
                }
                Instr::Jump { target } => next_pc = target,
                Instr::Call { func } => {
                    if self.frames.len() >= MAX_CALL_DEPTH {
                        return Err(ExecError::CallDepthExceeded);
                    }
                    self.frames.last_mut().expect("frame").pc = next_pc;
                    self.frames.push(Frame { func, pc: 0 });
                    self.stats.max_call_depth = self.stats.max_call_depth.max(self.frames.len());
                    continue;
                }
                Instr::Ret => {
                    if let Some(done) = self.pop_frame() {
                        return Ok(StepOutcome::Done(done));
                    }
                    continue;
                }
                Instr::NetRpc {
                    service,
                    req_obj,
                    req_off,
                    req_len,
                    resp_obj,
                    resp_off,
                    resp_cap,
                    resp_len_dst,
                } => {
                    let off = self.regs[req_off as usize];
                    let len = self.regs[req_len as usize];
                    self.check_obj_range(mem, req_obj.0, off, len)?;
                    let payload = Bytes::copy_from_slice(
                        &mem.object(req_obj.0 as usize)[off as usize..(off + len) as usize],
                    );
                    self.stats.obj_bulk_bytes[req_obj.0 as usize] += len;
                    self.stats.obj_bulk_ops[req_obj.0 as usize] += 1;
                    self.stats.net_rpcs += 1;
                    self.pending = Some(PendingNet {
                        resp_obj: resp_obj.0,
                        resp_off: self.regs[resp_off as usize],
                        resp_cap: self.regs[resp_cap as usize],
                        resp_len_dst,
                    });
                    self.frames.last_mut().expect("frame").pc = next_pc;
                    return Ok(StepOutcome::NetCall { service, payload });
                }
            }
            self.frames.last_mut().expect("frame").pc = next_pc;
        }
    }

    /// Pops the current frame. Returns `Some(completion)` when the entry
    /// frame returned (execution finished); `None` when a callee returned
    /// into its caller (whose pc was advanced at call time).
    fn pop_frame(&mut self) -> Option<Completion> {
        self.frames.pop();
        if self.frames.is_empty() {
            self.finished = true;
            Some(Completion {
                return_code: self.regs[RET_REG as usize],
                response: std::mem::take(&mut self.emitted).freeze(),
                stats: self.stats.clone(),
            })
        } else {
            None
        }
    }

    fn check_obj_range(
        &self,
        mem: &ObjectMemory,
        obj: u16,
        off: u64,
        len: u64,
    ) -> Result<(), ExecError> {
        let size = mem.object(obj as usize).len() as u64;
        match off.checked_add(len) {
            Some(end) if end <= size => Ok(()),
            _ => Err(ExecError::ObjOutOfBounds {
                obj,
                offset: off,
                len,
            }),
        }
    }

    fn read_obj_scalar(
        &mut self,
        mem: &ObjectMemory,
        obj: u16,
        off: u64,
        width: Width,
    ) -> Result<u64, ExecError> {
        self.check_obj_range(mem, obj, off, width.bytes() as u64)?;
        self.stats.obj_scalar[obj as usize] += 1;
        let data = &mem.object(obj as usize)[off as usize..off as usize + width.bytes()];
        Ok(be_read(data))
    }

    fn write_obj_scalar(
        &mut self,
        mem: &mut ObjectMemory,
        obj: u16,
        off: u64,
        value: u64,
        width: Width,
    ) -> Result<(), ExecError> {
        self.check_obj_range(mem, obj, off, width.bytes() as u64)?;
        self.stats.obj_scalar[obj as usize] += 1;
        let bytes = value.to_be_bytes();
        mem.object_mut(obj as usize)[off as usize..off as usize + width.bytes()]
            .copy_from_slice(&bytes[8 - width.bytes()..]);
        Ok(())
    }

    fn write_obj_bulk(
        &mut self,
        mem: &mut ObjectMemory,
        obj: u16,
        off: u64,
        data: &[u8],
    ) -> Result<(), ExecError> {
        self.check_obj_range(mem, obj, off, data.len() as u64)?;
        self.stats.obj_bulk_bytes[obj as usize] += data.len() as u64;
        self.stats.obj_bulk_ops[obj as usize] += 1;
        mem.object_mut(obj as usize)[off as usize..off as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn read_payload_scalar(&mut self, off: u64, width: Width) -> Result<u64, ExecError> {
        let end = off
            .checked_add(width.bytes() as u64)
            .filter(|&e| e as usize <= self.ctx.payload.len())
            .ok_or(ExecError::PayloadOutOfBounds {
                offset: off,
                len: width.bytes() as u64,
            })?;
        let _ = end;
        self.stats.payload_scalar += 1;
        let data = &self.ctx.payload[off as usize..off as usize + width.bytes()];
        Ok(be_read(data))
    }
}

fn be_read(data: &[u8]) -> u64 {
    let mut v = 0u64;
    for &b in data {
        v = (v << 8) | b as u64;
    }
    v
}

/// Runs a lambda to completion, answering network RPCs with `serve`.
///
/// # Errors
///
/// Propagates any [`ExecError`] from the execution.
pub fn run_to_completion(
    program: &Arc<Program>,
    lambda_idx: usize,
    ctx: RequestCtx,
    mem: &mut ObjectMemory,
    fuel: u64,
    mut serve: impl FnMut(u16, Bytes) -> Bytes,
) -> Result<Completion, ExecError> {
    let mut exec = Execution::start(Arc::clone(program), lambda_idx, ctx, fuel);
    let mut outcome = exec.run(mem)?;
    loop {
        match outcome {
            StepOutcome::Done(done) => return Ok(done),
            StepOutcome::NetCall { service, payload } => {
                let response = serve(service, payload);
                outcome = exec.resume(mem, &response)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AluOp, Cmp, Function, HeaderField, ObjId, Width};
    use crate::program::{Lambda, MemObject, Program, WorkloadId};

    fn one_lambda(entry: Function, objects: Vec<MemObject>) -> Arc<Program> {
        let mut l = Lambda::new("test", WorkloadId(1), entry);
        for o in objects {
            l.add_object(o);
        }
        let mut p = Program::new();
        p.add_lambda(l, vec![]);
        p.validate().expect("test programs are well-formed");
        Arc::new(p)
    }

    fn p_with(l: Lambda) -> Program {
        let mut p = Program::new();
        p.add_lambda(l, vec![]);
        p.validate().unwrap();
        p
    }

    fn run(p: &Arc<Program>, ctx: RequestCtx) -> Completion {
        let mut mem = ObjectMemory::for_lambda(&p.lambdas[0]);
        run_to_completion(p, 0, ctx, &mut mem, 100_000, |_, _| Bytes::new())
            .expect("runs to completion")
    }

    #[test]
    fn arithmetic_and_emit() {
        let entry = Function::new(
            "entry",
            vec![
                Instr::Const { dst: 1, value: 6 },
                Instr::Const { dst: 2, value: 7 },
                Instr::Alu {
                    op: AluOp::Mul,
                    dst: 3,
                    a: 1,
                    b: 2,
                },
                Instr::Emit {
                    src: 3,
                    width: Width::B2,
                },
                Instr::Const { dst: 0, value: 0 },
                Instr::Ret,
            ],
        );
        let done = run(&one_lambda(entry, vec![]), RequestCtx::default());
        assert_eq!(&done.response[..], &42u16.to_be_bytes());
        assert_eq!(done.return_code, 0);
        assert_eq!(done.stats.instrs, 6);
    }

    #[test]
    fn header_and_match_data_reads() {
        let entry = Function::new(
            "entry",
            vec![
                Instr::LoadHdr {
                    dst: 1,
                    field: HeaderField::SrcPort,
                },
                Instr::LoadMatchData { dst: 2, idx: 0 },
                Instr::Alu {
                    op: AluOp::Add,
                    dst: 3,
                    a: 1,
                    b: 2,
                },
                Instr::Emit {
                    src: 3,
                    width: Width::B4,
                },
                Instr::Const { dst: 0, value: 0 },
                Instr::Ret,
            ],
        );
        let ctx = RequestCtx {
            headers: HeaderValues {
                src_port: 1000,
                ..Default::default()
            },
            match_data: vec![234],
            ..Default::default()
        };
        let done = run(&one_lambda(entry, vec![]), ctx);
        assert_eq!(&done.response[..], &1234u32.to_be_bytes());
    }

    #[test]
    fn loops_branches_and_object_memory() {
        // Sum payload bytes into obj[0..8], then emit it.
        let entry = Function::new(
            "entry",
            vec![
                // r1 = i = 0, r2 = len, r3 = acc
                Instr::Const { dst: 1, value: 0 },
                Instr::LoadHdr {
                    dst: 2,
                    field: HeaderField::PayloadLen,
                },
                Instr::Const { dst: 3, value: 0 },
                // loop: if i >= len -> done(6)
                Instr::Branch {
                    cmp: Cmp::Ge,
                    a: 1,
                    b: 2,
                    target: 7,
                },
                Instr::LoadPayload {
                    dst: 4,
                    addr: 1,
                    width: Width::B1,
                },
                Instr::Alu {
                    op: AluOp::Add,
                    dst: 3,
                    a: 3,
                    b: 4,
                },
                Instr::AluImm {
                    op: AluOp::Add,
                    dst: 1,
                    a: 1,
                    imm: 1,
                },
                // (target adjusted below)
                Instr::Jump { target: 3 },
                // done: store acc and emit
                Instr::Const { dst: 5, value: 0 },
                Instr::Store {
                    obj: ObjId(0),
                    addr: 5,
                    src: 3,
                    width: Width::B8,
                },
                Instr::Load {
                    dst: 6,
                    obj: ObjId(0),
                    addr: 5,
                    width: Width::B8,
                },
                Instr::Emit {
                    src: 6,
                    width: Width::B8,
                },
                Instr::Const { dst: 0, value: 0 },
                Instr::Ret,
            ],
        );
        // Fix branch targets: loop head at 3, exit at 8.
        let mut entry = entry;
        entry.body[3] = Instr::Branch {
            cmp: Cmp::Ge,
            a: 1,
            b: 2,
            target: 8,
        };
        entry.body[7] = Instr::Jump { target: 3 };
        let p = one_lambda(entry, vec![MemObject::zeroed("acc", 8)]);
        let ctx = RequestCtx {
            payload: Bytes::from_static(&[1, 2, 3, 4, 5]),
            ..Default::default()
        };
        let done = run(&p, ctx);
        assert_eq!(&done.response[..], &15u64.to_be_bytes());
        assert_eq!(done.stats.payload_scalar, 5);
        assert_eq!(done.stats.obj_scalar[0], 2);
    }

    #[test]
    fn emit_obj_bulk_copies_web_content() {
        // Listing 2's web server: copy object bytes into the response.
        let content = b"<html>hello lambda</html>".to_vec();
        let len = content.len() as u64;
        let entry = Function::new(
            "web",
            vec![
                Instr::Const { dst: 1, value: 0 },
                Instr::Const { dst: 2, value: len },
                Instr::EmitObj {
                    obj: ObjId(0),
                    off: 1,
                    len: 2,
                },
                Instr::Const { dst: 0, value: 0 },
                Instr::Ret,
            ],
        );
        let p = one_lambda(
            entry,
            vec![MemObject::with_data("content", content.clone())],
        );
        let done = run(&p, RequestCtx::default());
        assert_eq!(&done.response[..], &content[..]);
        assert_eq!(done.stats.obj_bulk_bytes[0], len);
        assert_eq!(done.stats.emitted_bytes, len);
    }

    #[test]
    fn payload_to_obj_and_state_persists_across_requests() {
        // Store request payload into the object; next request reads it.
        let entry = Function::new(
            "entry",
            vec![
                Instr::Const { dst: 1, value: 0 },
                Instr::LoadHdr {
                    dst: 2,
                    field: HeaderField::PayloadLen,
                },
                // If empty payload, emit stored byte instead.
                Instr::Branch {
                    cmp: Cmp::Eq,
                    a: 2,
                    b: 1,
                    target: 6,
                },
                Instr::PayloadToObj {
                    obj: ObjId(0),
                    src_off: 1,
                    dst_off: 1,
                    len: 2,
                },
                Instr::Const { dst: 0, value: 0 },
                Instr::Ret,
                Instr::Const { dst: 3, value: 4 },
                Instr::EmitObj {
                    obj: ObjId(0),
                    off: 1,
                    len: 3,
                },
                Instr::Const { dst: 0, value: 0 },
                Instr::Ret,
            ],
        );
        let p = one_lambda(entry, vec![MemObject::zeroed("store", 16)]);
        let mut mem = ObjectMemory::for_lambda(&p.lambdas[0]);
        let write_ctx = RequestCtx {
            payload: Bytes::from_static(b"wxyz"),
            ..Default::default()
        };
        let d1 = run_to_completion(&p, 0, write_ctx, &mut mem, 1_000, |_, _| Bytes::new()).unwrap();
        assert!(d1.response.is_empty());
        let read_ctx = RequestCtx::default();
        let d2 = run_to_completion(&p, 0, read_ctx, &mut mem, 1_000, |_, _| Bytes::new()).unwrap();
        assert_eq!(&d2.response[..], b"wxyz");
    }

    #[test]
    fn calls_nest_and_return() {
        let mut l = Lambda::new(
            "nested",
            WorkloadId(1),
            Function::new(
                "entry",
                vec![
                    Instr::Call {
                        func: FuncRef::Local(1),
                    },
                    Instr::Emit {
                        src: 5,
                        width: Width::B1,
                    },
                    Instr::Const { dst: 0, value: 0 },
                    Instr::Ret,
                ],
            ),
        );
        l.add_function(Function::new(
            "helper",
            vec![
                Instr::Const {
                    dst: 5,
                    value: 0x7f,
                },
                Instr::Ret,
            ],
        ));
        let p = Arc::new(p_with(l));
        let done = run(&p, RequestCtx::default());
        assert_eq!(&done.response[..], &[0x7f]);
        assert_eq!(done.stats.max_call_depth, 2);
    }

    #[test]
    fn net_rpc_suspends_and_resumes() {
        let entry = Function::new(
            "kv",
            vec![
                // request bytes = obj[0..3]
                Instr::Const { dst: 1, value: 0 },
                Instr::Const { dst: 2, value: 3 },
                Instr::Const { dst: 3, value: 8 }, // resp off
                Instr::Const { dst: 4, value: 8 }, // resp cap
                Instr::NetRpc {
                    service: 9,
                    req_obj: ObjId(0),
                    req_off: 1,
                    req_len: 2,
                    resp_obj: ObjId(0),
                    resp_off: 3,
                    resp_cap: 4,
                    resp_len_dst: 5,
                },
                Instr::EmitObj {
                    obj: ObjId(0),
                    off: 3,
                    len: 5,
                },
                Instr::Const { dst: 0, value: 0 },
                Instr::Ret,
            ],
        );
        let p = one_lambda(
            entry,
            vec![MemObject::with_data("buf", b"get into the buffer".to_vec())],
        );
        let mut mem = ObjectMemory::for_lambda(&p.lambdas[0]);
        let mut exec = Execution::start(Arc::clone(&p), 0, RequestCtx::default(), 1_000);
        match exec.run(&mut mem).unwrap() {
            StepOutcome::NetCall { service, payload } => {
                assert_eq!(service, 9);
                assert_eq!(&payload[..], b"get");
            }
            other => panic!("expected NetCall, got {other:?}"),
        }
        assert!(exec.is_awaiting());
        // Running while suspended is an error.
        assert_eq!(exec.run(&mut mem), Err(ExecError::AwaitingResponse));
        match exec.resume(&mut mem, b"VALUE").unwrap() {
            StepOutcome::Done(done) => {
                assert_eq!(&done.response[..], b"VALUE");
                assert_eq!(done.stats.net_rpcs, 1);
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn rpc_response_truncated_to_capacity() {
        let entry = Function::new(
            "kv",
            vec![
                Instr::Const { dst: 1, value: 0 },
                Instr::Const { dst: 2, value: 1 },
                Instr::Const { dst: 3, value: 0 },
                Instr::Const { dst: 4, value: 2 }, // cap = 2
                Instr::NetRpc {
                    service: 1,
                    req_obj: ObjId(0),
                    req_off: 1,
                    req_len: 2,
                    resp_obj: ObjId(0),
                    resp_off: 3,
                    resp_cap: 4,
                    resp_len_dst: 5,
                },
                Instr::EmitObj {
                    obj: ObjId(0),
                    off: 3,
                    len: 5,
                },
                Instr::Const { dst: 0, value: 0 },
                Instr::Ret,
            ],
        );
        let p = one_lambda(entry, vec![MemObject::zeroed("buf", 8)]);
        let mut mem = ObjectMemory::for_lambda(&p.lambdas[0]);
        let done = run_to_completion(&p, 0, RequestCtx::default(), &mut mem, 1_000, |_, _| {
            Bytes::from_static(b"LONG RESPONSE")
        })
        .unwrap();
        assert_eq!(&done.response[..], b"LO");
    }

    #[test]
    fn out_of_bounds_object_access_faults() {
        let entry = Function::new(
            "bad",
            vec![
                Instr::Const { dst: 1, value: 100 },
                Instr::Load {
                    dst: 2,
                    obj: ObjId(0),
                    addr: 1,
                    width: Width::B8,
                },
                Instr::Ret,
            ],
        );
        let p = one_lambda(entry, vec![MemObject::zeroed("small", 16)]);
        let mut mem = ObjectMemory::for_lambda(&p.lambdas[0]);
        let err = run_to_completion(&p, 0, RequestCtx::default(), &mut mem, 1_000, |_, _| {
            Bytes::new()
        })
        .unwrap_err();
        assert!(matches!(err, ExecError::ObjOutOfBounds { obj: 0, .. }));
    }

    #[test]
    fn payload_out_of_bounds_faults() {
        let entry = Function::new(
            "bad",
            vec![
                Instr::Const { dst: 1, value: 0 },
                Instr::LoadPayload {
                    dst: 2,
                    addr: 1,
                    width: Width::B4,
                },
                Instr::Ret,
            ],
        );
        let p = one_lambda(entry, vec![]);
        let mut mem = ObjectMemory::for_lambda(&p.lambdas[0]);
        let ctx = RequestCtx {
            payload: Bytes::from_static(b"ab"),
            ..Default::default()
        };
        let err = run_to_completion(&p, 0, ctx, &mut mem, 1_000, |_, _| Bytes::new()).unwrap_err();
        assert!(matches!(err, ExecError::PayloadOutOfBounds { .. }));
    }

    #[test]
    fn fuel_exhaustion_faults() {
        let entry = Function::new("spin", vec![Instr::Jump { target: 0 }]);
        let p = one_lambda(entry, vec![]);
        let mut mem = ObjectMemory::for_lambda(&p.lambdas[0]);
        let err = run_to_completion(&p, 0, RequestCtx::default(), &mut mem, 100, |_, _| {
            Bytes::new()
        })
        .unwrap_err();
        assert_eq!(err, ExecError::FuelExhausted);
    }

    #[test]
    fn object_memory_initialization() {
        let mut l = Lambda::new("m", WorkloadId(1), Function::new("e", vec![Instr::Ret]));
        l.add_object(MemObject::with_data("d", vec![1, 2, 3]));
        let mut padded = MemObject::with_data("p", vec![9]);
        padded.size = 4;
        l.add_object(padded);
        let mem = ObjectMemory::for_lambda(&l);
        assert_eq!(mem.object(0), &[1, 2, 3]);
        assert_eq!(mem.object(1), &[9, 0, 0, 0]);
        assert_eq!(mem.total_bytes(), 7);
    }

    #[test]
    fn call_depth_exceeded_faults() {
        // A linear chain of MAX_CALL_DEPTH+1 calls (no recursion, so
        // validation accepts it) overflows the call stack at runtime.
        let mut l = Lambda::new(
            "deep",
            WorkloadId(1),
            Function::new(
                "entry",
                vec![
                    Instr::Call {
                        func: FuncRef::Local(1),
                    },
                    Instr::Ret,
                ],
            ),
        );
        for i in 1..=MAX_CALL_DEPTH as u16 {
            l.add_function(Function::new(
                format!("f{i}"),
                vec![
                    Instr::Call {
                        func: FuncRef::Local(i + 1),
                    },
                    Instr::Ret,
                ],
            ));
        }
        l.add_function(Function::new("leaf", vec![Instr::Ret]));
        let mut p = Program::new();
        p.add_lambda(l, vec![]);
        p.validate().expect("linear chains are not recursion");
        let p = Arc::new(p);
        let mut mem = ObjectMemory::for_lambda(&p.lambdas[0]);
        let err = run_to_completion(&p, 0, RequestCtx::default(), &mut mem, 10_000, |_, _| {
            Bytes::new()
        })
        .unwrap_err();
        assert_eq!(err, ExecError::CallDepthExceeded);
    }

    #[test]
    fn resume_without_pending_is_error() {
        let p = one_lambda(
            Function::new("e", vec![Instr::Const { dst: 0, value: 0 }, Instr::Ret]),
            vec![],
        );
        let mut mem = ObjectMemory::for_lambda(&p.lambdas[0]);
        let mut exec = Execution::start(Arc::clone(&p), 0, RequestCtx::default(), 10);
        assert_eq!(
            exec.resume(&mut mem, b"x"),
            Err(ExecError::NotAwaitingResponse)
        );
    }
}
