//! Memory stratification (§5.1): choose the most efficient memory level
//! for each object from static access analysis, object size, and user
//! pragmas — "it can place small or hot objects to core-local memories,
//! and large or less frequently used ones in external, shared memories"
//! (§4.2-D2).

use crate::ir::Access;
use crate::memory::{MemLevel, MemorySpec};
use crate::program::{Pragma, Program};

/// Placement of every object of every lambda:
/// `placements[lambda][object] = level`.
pub type Placements = Vec<Vec<MemLevel>>;

/// The naive placement an unoptimized build uses: everything in external
/// memory (safe, capacious, slow).
pub fn naive_placements(program: &Program) -> Placements {
    program
        .lambdas
        .iter()
        .map(|l| vec![MemLevel::Emem; l.objects.len()])
        .collect()
}

/// Static analysis of one object's usage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObjectUsage {
    /// Static count of instructions reading the object.
    pub reads: u32,
    /// Static count of instructions writing the object.
    pub writes: u32,
}

impl ObjectUsage {
    /// Whether the object is never written (safe to replicate into
    /// core-local or island-local memory).
    pub fn is_read_only(self) -> bool {
        self.writes == 0
    }

    /// Total static references.
    pub fn refs(self) -> u32 {
        self.reads + self.writes
    }
}

/// Computes per-object static usage for one lambda (including accesses
/// from any function of the lambda).
pub fn analyze_usage(program: &Program, lambda_idx: usize) -> Vec<ObjectUsage> {
    let lambda = &program.lambdas[lambda_idx];
    let mut usage = vec![ObjectUsage::default(); lambda.objects.len()];
    let count = |instr: &crate::ir::Instr, usage: &mut Vec<ObjectUsage>| {
        for (obj, access) in instr.objects() {
            if let Some(u) = usage.get_mut(obj.0 as usize) {
                match access {
                    Access::Read => u.reads += 1,
                    Access::Write => u.writes += 1,
                }
            }
        }
    };
    for instr in lambda.instrs() {
        count(instr, &mut usage);
    }
    // Shared functions execute in the calling lambda's object context;
    // attribute their accesses to this lambda too.
    for shared_idx in program.reachable_shared(lambda) {
        for instr in &program.shared[shared_idx as usize].body {
            count(instr, &mut usage);
        }
    }
    usage
}

/// Statistics reported by stratification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StratifyReport {
    /// Objects placed per level (LMEM, CTM, IMEM, EMEM).
    pub per_level: [usize; 4],
    /// Bytes placed per level.
    pub bytes_per_level: [u64; 4],
}

/// Greedy placement: objects are ranked by heat (pragma, then static
/// reference density) and assigned to the nearest level with both room
/// and compatible semantics. Written objects must live in memories shared
/// across islands (IMEM/EMEM) so that lambda state stays coherent; only
/// read-only objects may be replicated into LMEM/CTM.
pub fn stratify(program: &Program, spec: &MemorySpec) -> (Placements, StratifyReport) {
    let mut placements = naive_placements(program);
    let mut report = StratifyReport::default();

    // Remaining capacity per level for lambda objects.
    let mut remaining = [
        spec.lmem.capacity_bytes,
        spec.ctm.capacity_bytes,
        spec.imem.capacity_bytes,
        spec.emem.capacity_bytes,
    ];

    // Gather (lambda, object, score, size, read_only), hottest first.
    struct Cand {
        lambda: usize,
        obj: usize,
        score: f64,
        size: u64,
        read_only: bool,
    }
    let mut cands: Vec<Cand> = Vec::new();
    for (li, lambda) in program.lambdas.iter().enumerate() {
        let usage = analyze_usage(program, li);
        for (oi, obj) in lambda.objects.iter().enumerate() {
            let u = usage[oi];
            let pragma_boost = match obj.pragma {
                Pragma::Hot => 1e6,
                Pragma::None => 0.0,
                Pragma::Cold => f64::NEG_INFINITY,
            };
            let density = u.refs() as f64 / (obj.size.max(1) as f64);
            cands.push(Cand {
                lambda: li,
                obj: oi,
                score: pragma_boost + density,
                size: obj.size as u64,
                read_only: u.is_read_only(),
            });
        }
    }
    cands.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.lambda, a.obj).cmp(&(b.lambda, b.obj)))
    });

    for c in cands {
        let allowed: &[MemLevel] = if c.score == f64::NEG_INFINITY {
            // Cold pragma: straight to EMEM.
            &[MemLevel::Emem]
        } else if c.read_only {
            &MemLevel::ALL
        } else {
            &[MemLevel::Imem, MemLevel::Emem]
        };
        for &level in allowed {
            let idx = level as usize;
            if remaining[idx] >= c.size {
                remaining[idx] -= c.size;
                placements[c.lambda][c.obj] = level;
                report.per_level[idx] += 1;
                report.bytes_per_level[idx] += c.size;
                break;
            }
        }
    }

    (placements, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Function, Instr, ObjId, Width};
    use crate::program::{Lambda, MemObject, Program, WorkloadId};

    /// Builds a lambda with three objects: a small hot read-only table, a
    /// small read-write counter, and a large buffer.
    fn sample_program() -> Program {
        let mut l = Lambda::new(
            "w",
            WorkloadId(1),
            Function::new(
                "entry",
                vec![
                    // Read the table twice (hot).
                    Instr::Load {
                        dst: 1,
                        obj: ObjId(0),
                        addr: 2,
                        width: Width::B4,
                    },
                    Instr::Load {
                        dst: 1,
                        obj: ObjId(0),
                        addr: 2,
                        width: Width::B4,
                    },
                    // Update the counter.
                    Instr::Store {
                        obj: ObjId(1),
                        addr: 2,
                        src: 1,
                        width: Width::B8,
                    },
                    // Touch the big buffer once.
                    Instr::EmitObj {
                        obj: ObjId(2),
                        off: 2,
                        len: 3,
                    },
                    Instr::Const { dst: 0, value: 0 },
                    Instr::Ret,
                ],
            ),
        );
        l.add_object(MemObject::zeroed("table", 256));
        l.add_object(MemObject::zeroed("counter", 8));
        l.add_object(MemObject::zeroed("buffer", 512 * 1024));
        let mut p = Program::new();
        p.add_lambda(l, vec![]);
        p
    }

    #[test]
    fn usage_analysis_counts_reads_and_writes() {
        let p = sample_program();
        let usage = analyze_usage(&p, 0);
        assert_eq!(
            usage[0],
            ObjectUsage {
                reads: 2,
                writes: 0
            }
        );
        assert_eq!(
            usage[1],
            ObjectUsage {
                reads: 0,
                writes: 1
            }
        );
        assert_eq!(
            usage[2],
            ObjectUsage {
                reads: 1,
                writes: 0
            }
        );
        assert!(usage[0].is_read_only());
        assert!(!usage[1].is_read_only());
    }

    #[test]
    fn naive_places_everything_in_emem() {
        let p = sample_program();
        let n = naive_placements(&p);
        assert!(n[0].iter().all(|&l| l == MemLevel::Emem));
    }

    #[test]
    fn hot_readonly_goes_near_written_goes_shared() {
        let p = sample_program();
        let (placements, report) = stratify(&p, &MemorySpec::agilio_cx());
        // Hot read-only table: into LMEM.
        assert_eq!(placements[0][0], MemLevel::Lmem);
        // Read-write counter: IMEM or EMEM only.
        assert!(matches!(placements[0][1], MemLevel::Imem | MemLevel::Emem));
        // Large buffer: read-only, fits CTM? 512 KiB exceeds CTM: IMEM.
        assert!(placements[0][2] >= MemLevel::Imem || placements[0][2] == MemLevel::Ctm);
        assert_eq!(report.per_level.iter().sum::<usize>(), 3);
    }

    #[test]
    fn pragma_overrides_analysis() {
        let mut p = sample_program();
        p.lambdas[0].objects[2].pragma = crate::program::Pragma::Cold;
        let (placements, _) = stratify(&p, &MemorySpec::agilio_cx());
        assert_eq!(placements[0][2], MemLevel::Emem);

        let mut p2 = sample_program();
        p2.lambdas[0].objects[2].pragma = crate::program::Pragma::Hot;
        // Make it small enough for LMEM.
        p2.lambdas[0].objects[2].size = 128;
        let (pl2, _) = stratify(&p2, &MemorySpec::agilio_cx());
        assert_eq!(pl2[0][2], MemLevel::Lmem);
    }

    #[test]
    fn capacity_exhaustion_spills_to_next_level() {
        let mut p = Program::new();
        let mut l = Lambda::new(
            "w",
            WorkloadId(1),
            Function::new(
                "e",
                vec![
                    Instr::Load {
                        dst: 1,
                        obj: ObjId(0),
                        addr: 2,
                        width: Width::B1,
                    },
                    Instr::Load {
                        dst: 1,
                        obj: ObjId(1),
                        addr: 2,
                        width: Width::B1,
                    },
                    Instr::Ret,
                ],
            ),
        );
        // Two read-only 3 KiB objects; LMEM (4 KiB) fits only one.
        l.add_object(MemObject::zeroed("a", 3 * 1024));
        l.add_object(MemObject::zeroed("b", 3 * 1024));
        p.add_lambda(l, vec![]);
        let (placements, report) = stratify(&p, &MemorySpec::agilio_cx());
        let lmem_count = placements[0]
            .iter()
            .filter(|&&l| l == MemLevel::Lmem)
            .count();
        assert_eq!(lmem_count, 1);
        assert_eq!(report.per_level[0], 1);
        assert_eq!(
            placements[0]
                .iter()
                .filter(|&&l| l == MemLevel::Ctm)
                .count(),
            1
        );
    }
}
