//! Lambda coalescing (§5.1): dead-code elimination plus cross-lambda
//! deduplication of helper functions into a program-level shared library.
//!
//! "As multiple lambdas run on a single core, the workload manager runs
//! program analysis (i.e., dead-code elimination and code motion) to
//! remove duplicate logic (e.g., for modifying similar headers or
//! generating packets) and move it into shared libraries as helper
//! functions."

use std::collections::HashMap;

use crate::ir::{FuncRef, Function, Instr};
use crate::program::Program;

/// Statistics reported by the coalescing pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalesceReport {
    /// Functions moved into the shared library.
    pub functions_shared: usize,
    /// Call sites rewritten to shared functions.
    pub calls_rewritten: usize,
    /// Unreachable functions removed.
    pub functions_removed: usize,
    /// Unreachable instructions removed.
    pub instrs_removed: usize,
}

/// Runs dead-code elimination followed by cross-lambda deduplication.
/// Returns the transformed program and a report.
pub fn coalesce(program: &Program) -> (Program, CoalesceReport) {
    let mut report = CoalesceReport::default();
    let mut p = program.clone();

    for lambda in &mut p.lambdas {
        for f in &mut lambda.functions {
            report.instrs_removed += eliminate_unreachable(f);
        }
    }

    dedup_into_shared(&mut p, &mut report);

    for li in 0..p.lambdas.len() {
        report.functions_removed += remove_unreachable_functions(&mut p, li);
    }

    (p, report)
}

/// Removes instructions that can never execute (not reachable from index
/// 0 via fallthrough/branches). Returns the number removed.
fn eliminate_unreachable(f: &mut Function) -> usize {
    let n = f.body.len();
    if n == 0 {
        return 0;
    }
    let mut reachable = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(pc) = stack.pop() {
        if pc >= n || reachable[pc] {
            continue;
        }
        reachable[pc] = true;
        match f.body[pc] {
            Instr::Jump { target } => stack.push(target as usize),
            Instr::Branch { target, .. } => {
                stack.push(target as usize);
                stack.push(pc + 1);
            }
            Instr::Ret => {}
            _ => stack.push(pc + 1),
        }
    }
    let removed = reachable.iter().filter(|&&r| !r).count();
    if removed == 0 {
        return 0;
    }
    // Build the index remap and rewrite targets.
    let mut remap = vec![u32::MAX; n];
    let mut next = 0u32;
    for (i, &r) in reachable.iter().enumerate() {
        if r {
            remap[i] = next;
            next += 1;
        }
    }
    let mut new_body = Vec::with_capacity(next as usize);
    for (i, instr) in f.body.drain(..).enumerate() {
        if !reachable[i] {
            continue;
        }
        let rewritten = match instr {
            Instr::Jump { target } => Instr::Jump {
                target: remap[target as usize],
            },
            Instr::Branch { cmp, a, b, target } => Instr::Branch {
                cmp,
                a,
                b,
                target: remap[target as usize],
            },
            other => other,
        };
        new_body.push(rewritten);
    }
    f.body = new_body;
    removed
}

/// A function is *shareable* when it calls no lambda-local functions.
/// Object references are allowed: they resolve against the calling
/// lambda, and identical bodies imply identical object indices, which
/// validation checks against every caller's object table.
fn is_shareable(f: &Function) -> bool {
    f.body.iter().all(|i| {
        !matches!(
            i,
            Instr::Call {
                func: FuncRef::Local(_)
            }
        )
    })
}

/// Moves identical shareable helper bodies (appearing in two or more
/// places) into `program.shared` and rewrites call sites.
fn dedup_into_shared(p: &mut Program, report: &mut CoalesceReport) {
    // Count identical shareable bodies across all lambdas (excluding
    // entries, which stay local as dispatch anchors).
    let mut counts: HashMap<&[Instr], usize> = HashMap::new();
    for lambda in &p.lambdas {
        for f in lambda.functions.iter().skip(1) {
            if is_shareable(f) {
                *counts.entry(f.body.as_slice()).or_default() += 1;
            }
        }
    }
    let duplicated: Vec<Vec<Instr>> = counts
        .into_iter()
        .filter(|(_, c)| *c >= 2)
        .map(|(body, _)| body.to_vec())
        .collect();
    if duplicated.is_empty() {
        return;
    }

    // Assign shared indices (stable order: first occurrence in program).
    let mut shared_index: HashMap<Vec<Instr>, u16> = HashMap::new();
    for lambda in &p.lambdas {
        for f in lambda.functions.iter().skip(1) {
            if duplicated.contains(&f.body) && !shared_index.contains_key(&f.body) {
                let idx = p.shared.len() as u16;
                p.shared
                    .push(Function::new(format!("shared_{}", f.name), f.body.clone()));
                shared_index.insert(f.body.clone(), idx);
                report.functions_shared += 1;
            }
        }
    }

    // Rewrite every call whose local callee's body is now shared.
    for lambda in &mut p.lambdas {
        let targets: Vec<Option<u16>> = lambda
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| {
                if i == 0 {
                    None
                } else {
                    shared_index.get(&f.body).copied()
                }
            })
            .collect();
        for f in &mut lambda.functions {
            for instr in &mut f.body {
                if let Instr::Call {
                    func: FuncRef::Local(callee),
                } = instr
                {
                    if let Some(shared) = targets[*callee as usize] {
                        *instr = Instr::Call {
                            func: FuncRef::Shared(shared),
                        };
                        report.calls_rewritten += 1;
                    }
                }
            }
        }
    }
}

/// Drops local functions unreachable from the entry (index 0), remapping
/// local call indices. Returns the number removed.
fn remove_unreachable_functions(p: &mut Program, li: usize) -> usize {
    let lambda = &p.lambdas[li];
    let n = lambda.functions.len();
    let mut live = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(fi) = stack.pop() {
        if live[fi] {
            continue;
        }
        live[fi] = true;
        for instr in &lambda.functions[fi].body {
            if let Instr::Call {
                func: FuncRef::Local(callee),
            } = *instr
            {
                stack.push(callee as usize);
            }
        }
    }
    let removed = live.iter().filter(|&&l| !l).count();
    if removed == 0 {
        return 0;
    }
    let mut remap = vec![u16::MAX; n];
    let mut next = 0u16;
    for (i, &l) in live.iter().enumerate() {
        if l {
            remap[i] = next;
            next += 1;
        }
    }
    let lambda = &mut p.lambdas[li];
    let old = std::mem::take(&mut lambda.functions);
    for (i, f) in old.into_iter().enumerate() {
        if live[i] {
            lambda.functions.push(f);
        }
    }
    for f in &mut lambda.functions {
        for instr in &mut f.body {
            if let Instr::Call {
                func: FuncRef::Local(callee),
            } = instr
            {
                *callee = remap[*callee as usize];
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AluOp, Cmp, ObjId, Width};
    use crate::program::{Lambda, MemObject, Program, WorkloadId};

    fn helper_body() -> Vec<Instr> {
        vec![
            Instr::Const { dst: 5, value: 1 },
            Instr::AluImm {
                op: AluOp::Add,
                dst: 5,
                a: 5,
                imm: 2,
            },
            Instr::Ret,
        ]
    }

    fn lambda_with_helper(name: &str, id: u32) -> Lambda {
        let mut l = Lambda::new(
            name,
            WorkloadId(id),
            Function::new(
                "entry",
                vec![
                    Instr::Call {
                        func: FuncRef::Local(1),
                    },
                    Instr::Const { dst: 0, value: 0 },
                    Instr::Ret,
                ],
            ),
        );
        l.add_function(Function::new("gen_packet", helper_body()));
        l
    }

    #[test]
    fn identical_helpers_move_to_shared() {
        let mut p = Program::new();
        p.add_lambda(lambda_with_helper("kv1", 1), vec![]);
        p.add_lambda(lambda_with_helper("kv2", 2), vec![]);
        p.validate().unwrap();

        let (out, report) = coalesce(&p);
        out.validate().expect("coalesced program validates");
        assert_eq!(report.functions_shared, 1);
        assert_eq!(report.calls_rewritten, 2);
        assert_eq!(report.functions_removed, 2);
        assert_eq!(out.shared.len(), 1);
        // The duplicated local helpers are gone.
        assert_eq!(out.lambdas[0].functions.len(), 1);
        assert_eq!(out.lambdas[1].functions.len(), 1);
        assert!(matches!(
            out.lambdas[0].functions[0].body[0],
            Instr::Call {
                func: FuncRef::Shared(0)
            }
        ));
    }

    #[test]
    fn unique_helpers_stay_local() {
        let mut p = Program::new();
        p.add_lambda(lambda_with_helper("kv1", 1), vec![]);
        // Second lambda has a *different* helper.
        let mut l2 = lambda_with_helper("other", 2);
        l2.functions[1].body[0] = Instr::Const { dst: 5, value: 99 };
        p.add_lambda(l2, vec![]);

        let (out, report) = coalesce(&p);
        assert_eq!(report.functions_shared, 0);
        assert!(out.shared.is_empty());
        assert_eq!(out.lambdas[0].functions.len(), 2);
    }

    #[test]
    fn object_touching_helpers_shared_when_callers_compatible() {
        let obj_body = vec![
            Instr::Store {
                obj: ObjId(0),
                addr: 1,
                src: 2,
                width: Width::B1,
            },
            Instr::Ret,
        ];
        let mut p = Program::new();
        for (name, id) in [("a", 1), ("b", 2)] {
            let mut l = Lambda::new(
                name,
                WorkloadId(id),
                Function::new(
                    "entry",
                    vec![
                        Instr::Call {
                            func: FuncRef::Local(1),
                        },
                        Instr::Ret,
                    ],
                ),
            );
            l.add_object(MemObject::zeroed("buf", 8));
            l.add_function(Function::new("touches", obj_body.clone()));
            p.add_lambda(l, vec![]);
        }
        let (out, report) = coalesce(&p);
        assert_eq!(report.functions_shared, 1);
        assert_eq!(out.shared.len(), 1);
        out.validate().expect("both callers declare obj 0");
    }

    #[test]
    fn unreachable_instructions_removed_and_targets_remapped() {
        // 0: jump 3 ; 1..2 dead ; 3: branch->5; 4: const; 5: ret
        let f = Function::new(
            "entry",
            vec![
                Instr::Jump { target: 3 },
                Instr::Const { dst: 9, value: 9 },
                Instr::Const { dst: 9, value: 9 },
                Instr::Branch {
                    cmp: Cmp::Eq,
                    a: 0,
                    b: 0,
                    target: 5,
                },
                Instr::Const { dst: 1, value: 1 },
                Instr::Ret,
            ],
        );
        let mut p = Program::new();
        p.add_lambda(Lambda::new("w", WorkloadId(1), f), vec![]);
        let (out, report) = coalesce(&p);
        out.validate().unwrap();
        assert_eq!(report.instrs_removed, 2);
        let body = &out.lambdas[0].functions[0].body;
        assert_eq!(body.len(), 4);
        assert_eq!(body[0], Instr::Jump { target: 1 });
        assert!(matches!(body[1], Instr::Branch { target: 3, .. }));
    }

    #[test]
    fn uncalled_functions_removed() {
        let mut l = Lambda::new("w", WorkloadId(1), Function::new("entry", vec![Instr::Ret]));
        l.add_function(Function::new("dead", vec![Instr::Ret]));
        let mut p = Program::new();
        p.add_lambda(l, vec![]);
        let (out, report) = coalesce(&p);
        assert_eq!(report.functions_removed, 1);
        assert_eq!(out.lambdas[0].functions.len(), 1);
    }

    #[test]
    fn semantics_preserved_after_coalescing() {
        use crate::interp::{run_to_completion, ObjectMemory, RequestCtx};
        use bytes::Bytes;

        // Entry calls helper then emits r5 (set by helper).
        let build = |id: u32| {
            let mut l = Lambda::new(
                format!("l{id}"),
                WorkloadId(id),
                Function::new(
                    "entry",
                    vec![
                        Instr::Call {
                            func: FuncRef::Local(1),
                        },
                        Instr::Emit {
                            src: 5,
                            width: Width::B1,
                        },
                        Instr::Const { dst: 0, value: 0 },
                        Instr::Ret,
                    ],
                ),
            );
            l.add_function(Function::new("helper", helper_body()));
            l
        };
        let mut p = Program::new();
        p.add_lambda(build(1), vec![]);
        p.add_lambda(build(2), vec![]);
        let (out, _) = coalesce(&p);

        for prog in [std::sync::Arc::new(p), std::sync::Arc::new(out)] {
            for li in 0..2 {
                let mut mem = ObjectMemory::for_lambda(&prog.lambdas[li]);
                let done =
                    run_to_completion(&prog, li, RequestCtx::default(), &mut mem, 1_000, |_, _| {
                        Bytes::new()
                    })
                    .unwrap();
                assert_eq!(&done.response[..], &[3]);
            }
        }
    }
}
