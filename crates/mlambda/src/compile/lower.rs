//! Lowering: turns a Match+Lambda [`Program`] into the per-core binary
//! image every NPU core runs (§5: "we therefore execute all three stages
//! (parse, match, and lambdas) together inside a core, with every core
//! running the same Match+Lambda program").
//!
//! The lowered artifact is a flat list of instruction-store words with
//! provenance, so instruction counts (Figure 9) and the per-core
//! instruction-store limit are byte-accurate facts about a real object,
//! not estimates.

use std::collections::BTreeSet;

use crate::ir::{HeaderClass, Instr, ObjId};
use crate::memory::{MemLevel, MemorySpec};
use crate::program::{Lambda, MatchTable, Program};

use super::stratify::Placements;

/// One instruction-store word of the lowered image, tagged with what it
/// implements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Word {
    /// A parser micro-op extracting part of a header.
    Parse(HeaderClass),
    /// Table-engine setup for one table (naive lowering only).
    TableSetup,
    /// Key extraction for a table lookup.
    TableKey,
    /// Per-entry key comparison.
    TableCmp,
    /// Per-entry action invocation.
    TableAction,
    /// One IR instruction of a lambda or shared function.
    Ir(Instr),
    /// Address-formation word for an access to far memory.
    MemSetup(ObjId),
    /// Loop setup word for a bulk copy.
    BulkSetup,
    /// Packet-generation word for a network RPC.
    RpcSetup,
}

/// How the match/parse stages are lowered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LowerOptions {
    /// `true` (naive): each lambda carries its own parser and its tables
    /// are lowered through the generic table engine. `false` (after match
    /// reduction): one merged parser and if-else dispatch.
    pub per_lambda_stages: bool,
}

/// The per-core binary image.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreBinary {
    /// Every instruction-store word.
    pub words: Vec<Word>,
    /// Word counts per section, for reporting.
    pub sections: Sections,
}

/// Word counts by section.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sections {
    /// Parser words.
    pub parser: usize,
    /// Match-stage words.
    pub match_stage: usize,
    /// Lambda function-body words (incl. memory setup).
    pub lambdas: usize,
    /// Shared-library words.
    pub shared: usize,
}

impl CoreBinary {
    /// Total instruction-store words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Words each parsed header class costs.
fn parser_words(class: HeaderClass) -> usize {
    match class {
        HeaderClass::Ethernet => 4,
        HeaderClass::Ipv4 => 6,
        HeaderClass::Udp => 3,
        HeaderClass::Lambda => 6,
    }
}

/// The header classes a lambda's parser must extract: Ethernet and the
/// λ-NIC header always (dispatch needs the workload id), plus whatever
/// the body reads.
fn lambda_header_classes(lambda: &Lambda) -> BTreeSet<HeaderClass> {
    let mut classes: BTreeSet<HeaderClass> = [HeaderClass::Ethernet, HeaderClass::Lambda].into();
    for field in lambda.used_header_fields() {
        classes.insert(field.header_class());
    }
    // UDP cannot be parsed without IPv4.
    if classes.contains(&HeaderClass::Udp) {
        classes.insert(HeaderClass::Ipv4);
    }
    classes
}

fn emit_parser(words: &mut Vec<Word>, classes: &BTreeSet<HeaderClass>) {
    for &class in classes {
        for _ in 0..parser_words(class) {
            words.push(Word::Parse(class));
        }
    }
}

/// Generic table-engine lowering: setup + key extraction + per-entry
/// compare/action.
fn emit_table_engine(words: &mut Vec<Word>, table: &MatchTable) {
    for _ in 0..3 {
        words.push(Word::TableSetup);
    }
    for _ in &table.keys {
        words.push(Word::TableKey);
    }
    for e in &table.entries {
        for _ in 0..e.values.len() {
            words.push(Word::TableCmp);
        }
        words.push(Word::TableAction);
        words.push(Word::TableAction);
    }
}

/// If-else lowering: one extraction per key, then compare+action per
/// entry ("the P4 tables are converted into if-else sequences, which the
/// NIC core can execute more efficiently", §5.1).
fn emit_table_if_else(words: &mut Vec<Word>, table: &MatchTable) {
    for _ in &table.keys {
        words.push(Word::TableKey);
    }
    for e in &table.entries {
        for _ in 0..e.values.len() {
            words.push(Word::TableCmp);
        }
        words.push(Word::TableAction);
    }
}

/// Words for one IR instruction given its objects' placements.
fn emit_instr(
    words: &mut Vec<Word>,
    instr: &Instr,
    placement: Option<&[MemLevel]>,
    spec: &MemorySpec,
) {
    let setup = |obj: ObjId| -> u32 {
        match placement {
            Some(p) => spec.level(p[obj.0 as usize]).access_setup_words,
            None => spec.emem.access_setup_words,
        }
    };
    match instr {
        Instr::Load { obj, .. } | Instr::Store { obj, .. } => {
            for _ in 0..setup(*obj) {
                words.push(Word::MemSetup(*obj));
            }
            words.push(Word::Ir(instr.clone()));
        }
        Instr::EmitObj { obj, .. } | Instr::PayloadToObj { obj, .. } => {
            for _ in 0..setup(*obj) {
                words.push(Word::MemSetup(*obj));
            }
            words.push(Word::BulkSetup);
            words.push(Word::BulkSetup);
            words.push(Word::Ir(instr.clone()));
        }
        Instr::NetRpc {
            req_obj, resp_obj, ..
        } => {
            for _ in 0..setup(*req_obj) {
                words.push(Word::MemSetup(*req_obj));
            }
            for _ in 0..setup(*resp_obj) {
                words.push(Word::MemSetup(*resp_obj));
            }
            for _ in 0..5 {
                words.push(Word::RpcSetup);
            }
            words.push(Word::Ir(instr.clone()));
        }
        other => words.push(Word::Ir(other.clone())),
    }
}

/// Lowers `program` into a per-core binary.
///
/// `placements` gives each object's memory level (use
/// [`super::stratify::naive_placements`] for unoptimized builds).
pub fn lower(
    program: &Program,
    placements: &Placements,
    spec: &MemorySpec,
    opts: LowerOptions,
) -> CoreBinary {
    let mut words = Vec::new();
    let mut sections = Sections::default();

    // Parser + match stage.
    let before = words.len();
    if opts.per_lambda_stages {
        for lambda in &program.lambdas {
            emit_parser(&mut words, &lambda_header_classes(lambda));
        }
    } else {
        let mut classes = BTreeSet::new();
        for lambda in &program.lambdas {
            classes.extend(lambda_header_classes(lambda));
        }
        emit_parser(&mut words, &classes);
    }
    sections.parser = words.len() - before;

    let before = words.len();
    for table in &program.tables {
        if opts.per_lambda_stages {
            emit_table_engine(&mut words, table);
        } else {
            emit_table_if_else(&mut words, table);
        }
    }
    sections.match_stage = words.len() - before;

    // Lambda bodies.
    let before = words.len();
    for (li, lambda) in program.lambdas.iter().enumerate() {
        let placement = placements.get(li).map(|v| v.as_slice());
        for function in &lambda.functions {
            for instr in &function.body {
                emit_instr(&mut words, instr, placement, spec);
            }
        }
    }
    sections.lambdas = words.len() - before;

    // Shared library (touches no objects by construction).
    let before = words.len();
    for function in &program.shared {
        for instr in &function.body {
            emit_instr(&mut words, instr, None, spec);
        }
    }
    sections.shared = words.len() - before;

    CoreBinary { words, sections }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::stratify::naive_placements;
    use crate::ir::{Function, Width};
    use crate::program::{Lambda, MemObject, Program, WorkloadId};

    fn spec() -> MemorySpec {
        MemorySpec::agilio_cx()
    }

    fn simple_program() -> Program {
        let mut l = Lambda::new(
            "w",
            WorkloadId(1),
            Function::new(
                "entry",
                vec![
                    Instr::Const { dst: 1, value: 0 },
                    Instr::Load {
                        dst: 2,
                        obj: ObjId(0),
                        addr: 1,
                        width: Width::B8,
                    },
                    Instr::Const { dst: 0, value: 0 },
                    Instr::Ret,
                ],
            ),
        );
        l.add_object(MemObject::zeroed("buf", 64));
        let mut p = Program::new();
        p.add_lambda(l, vec![]);
        p
    }

    #[test]
    fn naive_lowering_charges_emem_setup() {
        let p = simple_program();
        let bin = lower(
            &p,
            &naive_placements(&p),
            &spec(),
            LowerOptions {
                per_lambda_stages: true,
            },
        );
        // The Load to an EMEM object needs 2 setup words.
        let setups = bin
            .words
            .iter()
            .filter(|w| matches!(w, Word::MemSetup(_)))
            .count();
        assert_eq!(setups, 2);
        assert!(bin.sections.parser > 0);
        assert!(bin.sections.match_stage > 0);
        assert_eq!(bin.len(), bin.words.len());
    }

    #[test]
    fn near_placement_removes_setup_words() {
        let p = simple_program();
        let near: Placements = vec![vec![MemLevel::Lmem]];
        let far = lower(
            &p,
            &naive_placements(&p),
            &spec(),
            LowerOptions {
                per_lambda_stages: true,
            },
        );
        let close = lower(
            &p,
            &near,
            &spec(),
            LowerOptions {
                per_lambda_stages: true,
            },
        );
        assert!(close.len() < far.len());
        assert_eq!(far.len() - close.len(), 2);
    }

    #[test]
    fn if_else_lowering_is_smaller_than_table_engine() {
        let p = simple_program();
        let placements = naive_placements(&p);
        let naive = lower(
            &p,
            &placements,
            &spec(),
            LowerOptions {
                per_lambda_stages: true,
            },
        );
        let reduced = lower(
            &p,
            &placements,
            &spec(),
            LowerOptions {
                per_lambda_stages: false,
            },
        );
        assert!(reduced.sections.match_stage < naive.sections.match_stage);
    }

    #[test]
    fn merged_parser_smaller_with_multiple_lambdas() {
        let mut p = simple_program();
        let mut l2 = Lambda::new(
            "w2",
            WorkloadId(2),
            Function::new("entry", vec![Instr::Const { dst: 0, value: 0 }, Instr::Ret]),
        );
        let _ = &mut l2;
        p.add_lambda(l2, vec![]);
        let placements = naive_placements(&p);
        let per_lambda = lower(
            &p,
            &placements,
            &spec(),
            LowerOptions {
                per_lambda_stages: true,
            },
        );
        let merged = lower(
            &p,
            &placements,
            &spec(),
            LowerOptions {
                per_lambda_stages: false,
            },
        );
        assert!(merged.sections.parser < per_lambda.sections.parser);
    }

    #[test]
    fn udp_fields_pull_in_ipv4_parsing() {
        let mut p = Program::new();
        let l = Lambda::new(
            "w",
            WorkloadId(1),
            Function::new(
                "entry",
                vec![
                    Instr::LoadHdr {
                        dst: 1,
                        field: crate::ir::HeaderField::DstPort,
                    },
                    Instr::Const { dst: 0, value: 0 },
                    Instr::Ret,
                ],
            ),
        );
        p.add_lambda(l, vec![]);
        let bin = lower(
            &p,
            &naive_placements(&p),
            &spec(),
            LowerOptions {
                per_lambda_stages: true,
            },
        );
        assert!(bin
            .words
            .iter()
            .any(|w| matches!(w, Word::Parse(HeaderClass::Ipv4))));
        assert!(bin
            .words
            .iter()
            .any(|w| matches!(w, Word::Parse(HeaderClass::Udp))));
    }
}
