//! Constant folding and peephole simplification (an extension beyond the
//! paper's three passes; off by default so Figure 9 is reproduced with
//! exactly the paper's pipeline).
//!
//! Within each basic block the pass tracks registers holding known
//! constants and:
//!
//! - folds `Alu`/`AluImm` over known operands into `Const`;
//! - resolves `Branch` over known operands into `Jump` (or removes it);
//! - drops no-ops (`Mov r, r`, `x+0`, `x*1`, `x|0`, `x<<0`, …).
//!
//! Knowledge is reset at branch-target boundaries and across `Call`s
//! (callees share the register file on NPUs) and `NetRpc`s.

use std::collections::{HashMap, HashSet};

use crate::ir::{AluOp, Function, Instr};
use crate::program::Program;

/// Statistics reported by the folding pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FoldReport {
    /// ALU instructions folded into constants.
    pub folded: usize,
    /// Branches resolved statically.
    pub branches_resolved: usize,
    /// No-op instructions removed.
    pub noops_removed: usize,
    /// Side-effect-free writes shadowed by a later write (no intervening
    /// read) removed.
    pub shadowed_removed: usize,
}

/// Runs the pass over every function of every lambda (and the shared
/// library). Returns the transformed program and a report.
pub fn fold_constants(program: &Program) -> (Program, FoldReport) {
    let mut p = program.clone();
    let mut report = FoldReport::default();
    let pass = |f: &mut Function, report: &mut FoldReport| {
        // Fold and clean up the dead chains folding exposes; a few
        // rounds reach a fixpoint on realistic code.
        for _ in 0..4 {
            let before = (report.folded, report.shadowed_removed, report.noops_removed);
            fold_function(f, report);
            report.shadowed_removed += eliminate_shadowed_writes(f);
            if (report.folded, report.shadowed_removed, report.noops_removed) == before {
                break;
            }
        }
    };
    for lambda in &mut p.lambdas {
        for f in &mut lambda.functions {
            pass(f, &mut report);
        }
    }
    for f in &mut p.shared {
        pass(f, &mut report);
    }
    (p, report)
}

/// Removes side-effect-free register writes that are overwritten later in
/// the same basic block with no intervening read, call, or block
/// boundary. Returns the number removed.
fn eliminate_shadowed_writes(f: &mut Function) -> usize {
    let targets: HashSet<u32> = f
        .body
        .iter()
        .filter_map(|i| match i {
            Instr::Branch { target, .. } | Instr::Jump { target } => Some(*target),
            _ => None,
        })
        .collect();

    let n = f.body.len();
    let mut dead = vec![false; n];
    #[allow(clippy::needless_range_loop)] // pc also indexes `dead`
    for pc in 0..n {
        let instr = &f.body[pc];
        // Only pure register writes are candidates.
        let candidate = matches!(
            instr,
            Instr::Const { .. } | Instr::Mov { .. } | Instr::Alu { .. } | Instr::AluImm { .. }
        );
        if !candidate {
            continue;
        }
        let Some(reg) = instr.writes() else { continue };
        // Scan forward within the block for a shadowing write before any
        // read/boundary.
        for (later_off, later) in f.body[pc + 1..].iter().enumerate() {
            let later_pc = (pc + 1 + later_off) as u32;
            if targets.contains(&later_pc) {
                break; // another block may read the value
            }
            if later.reads().contains(&reg) {
                break;
            }
            // Calls/RPCs may read any register (helpers take register
            // arguments); branches may leave the block.
            if matches!(
                later,
                Instr::Call { .. }
                    | Instr::NetRpc { .. }
                    | Instr::Branch { .. }
                    | Instr::Jump { .. }
                    | Instr::Ret
            ) {
                break;
            }
            if later.writes() == Some(reg) {
                dead[pc] = true;
                break;
            }
        }
    }

    let removed = dead.iter().filter(|&&d| d).count();
    if removed == 0 {
        return 0;
    }
    // Rebuild with target remapping (same technique as folding).
    let mut remap = vec![0u32; n + 1];
    let mut next = 0u32;
    for pc in 0..n {
        remap[pc] = next;
        if !dead[pc] {
            next += 1;
        }
    }
    remap[n] = next;
    let old = std::mem::take(&mut f.body);
    for (pc, instr) in old.into_iter().enumerate() {
        if dead[pc] {
            continue;
        }
        let rewritten = match instr {
            Instr::Jump { target } => Instr::Jump {
                target: remap[target as usize],
            },
            Instr::Branch { cmp, a, b, target } => Instr::Branch {
                cmp,
                a,
                b,
                target: remap[target as usize],
            },
            other => other,
        };
        f.body.push(rewritten);
    }
    removed
}

/// Is this `AluImm` a no-op for any left operand?
fn is_noop_imm(op: AluOp, imm: u64) -> bool {
    matches!(
        (op, imm),
        (AluOp::Add, 0)
            | (AluOp::Sub, 0)
            | (AluOp::Mul, 1)
            | (AluOp::Or, 0)
            | (AluOp::Xor, 0)
            | (AluOp::Shl, 0)
            | (AluOp::Shr, 0)
            | (AluOp::Div, 1)
    )
}

fn fold_function(f: &mut Function, report: &mut FoldReport) {
    // Branch targets open new basic blocks: constant knowledge cannot
    // flow into them (a jump from elsewhere may arrive with different
    // register contents).
    let targets: HashSet<u32> = f
        .body
        .iter()
        .filter_map(|i| match i {
            Instr::Branch { target, .. } | Instr::Jump { target } => Some(*target),
            _ => None,
        })
        .collect();

    let mut known: HashMap<u8, u64> = HashMap::new();
    let mut out: Vec<Instr> = Vec::with_capacity(f.body.len());
    // Map old index -> new index, for target rewriting. Removed
    // instructions map to the next surviving instruction.
    let mut remap: Vec<u32> = Vec::with_capacity(f.body.len());

    for (pc, instr) in f.body.iter().enumerate() {
        if targets.contains(&(pc as u32)) {
            known.clear();
        }
        remap.push(out.len() as u32);

        let rewritten: Option<Instr> = match *instr {
            Instr::Const { dst, value } => {
                known.insert(dst, value);
                Some(instr.clone())
            }
            Instr::Mov { dst, src } => {
                if dst == src {
                    report.noops_removed += 1;
                    None
                } else {
                    match known.get(&src).copied() {
                        Some(v) => {
                            known.insert(dst, v);
                            report.folded += 1;
                            Some(Instr::Const { dst, value: v })
                        }
                        None => {
                            known.remove(&dst);
                            Some(instr.clone())
                        }
                    }
                }
            }
            Instr::Alu { op, dst, a, b } => {
                match (known.get(&a).copied(), known.get(&b).copied()) {
                    (Some(va), Some(vb)) => {
                        let value = op.apply(va, vb);
                        known.insert(dst, value);
                        report.folded += 1;
                        Some(Instr::Const { dst, value })
                    }
                    _ => {
                        known.remove(&dst);
                        Some(instr.clone())
                    }
                }
            }
            Instr::AluImm { op, dst, a, imm } => {
                if let Some(va) = known.get(&a).copied() {
                    let value = op.apply(va, imm);
                    known.insert(dst, value);
                    report.folded += 1;
                    Some(Instr::Const { dst, value })
                } else if dst == a && is_noop_imm(op, imm) {
                    report.noops_removed += 1;
                    None
                } else {
                    known.remove(&dst);
                    Some(instr.clone())
                }
            }
            Instr::Branch { cmp, a, b, target } => {
                match (known.get(&a).copied(), known.get(&b).copied()) {
                    (Some(va), Some(vb)) => {
                        report.branches_resolved += 1;
                        if cmp.test(va, vb) {
                            Some(Instr::Jump { target })
                        } else {
                            None // never taken: fall through
                        }
                    }
                    _ => Some(instr.clone()),
                }
            }
            // Calls share the register file with the callee; RPC resumes
            // clobber the response-length register and helpers may write
            // anything.
            Instr::Call { .. } | Instr::NetRpc { .. } => {
                known.clear();
                Some(instr.clone())
            }
            ref other => {
                if let Some(dst) = other.writes() {
                    known.remove(&dst);
                }
                Some(other.clone())
            }
        };
        if let Some(i) = rewritten {
            out.push(i);
        }
    }
    remap.push(out.len() as u32); // virtual end index

    // A removed trailing instruction could leave the function without a
    // terminator (e.g. a never-taken final branch); validation requires
    // one, and semantics are "fall off the end returns".
    if !out.last().is_some_and(Instr::is_terminator) {
        out.push(Instr::Ret);
    }

    // Rewrite targets through the removal map.
    for i in &mut out {
        if let Instr::Branch { target, .. } | Instr::Jump { target } = i {
            *target = remap[*target as usize];
        }
    }
    f.body = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Cmp;

    fn run_fold(body: Vec<Instr>) -> (Vec<Instr>, FoldReport) {
        let mut f = Function::new("t", body);
        let mut r = FoldReport::default();
        fold_function(&mut f, &mut r);
        (f.body, r)
    }

    #[test]
    fn folds_constant_arithmetic_chains() {
        let (out, r) = run_fold(vec![
            Instr::Const { dst: 1, value: 6 },
            Instr::Const { dst: 2, value: 7 },
            Instr::Alu {
                op: AluOp::Mul,
                dst: 3,
                a: 1,
                b: 2,
            },
            Instr::AluImm {
                op: AluOp::Add,
                dst: 3,
                a: 3,
                imm: 8,
            },
            Instr::Ret,
        ]);
        assert_eq!(out[2], Instr::Const { dst: 3, value: 42 });
        assert_eq!(out[3], Instr::Const { dst: 3, value: 50 });
        assert_eq!(r.folded, 2);
    }

    #[test]
    fn removes_noops_and_rewrites_targets() {
        // 0: const; 1: mov r1,r1 (noop); 2: branch -> 4; 3: const; 4: ret
        let (out, r) = run_fold(vec![
            Instr::Const { dst: 5, value: 1 },
            Instr::Mov { dst: 1, src: 1 },
            Instr::Branch {
                cmp: Cmp::Eq,
                a: 9,
                b: 9,
                target: 4,
            },
            Instr::Const { dst: 6, value: 2 },
            Instr::Ret,
        ]);
        assert_eq!(r.noops_removed, 1);
        // The branch now targets index 3 (ret moved up by one).
        assert!(matches!(out[1], Instr::Branch { target: 3, .. }));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn resolves_known_branches_both_ways() {
        // Taken branch becomes a jump.
        let (out, r) = run_fold(vec![
            Instr::Const { dst: 1, value: 3 },
            Instr::Const { dst: 2, value: 3 },
            Instr::Branch {
                cmp: Cmp::Eq,
                a: 1,
                b: 2,
                target: 4,
            },
            Instr::Const { dst: 9, value: 9 },
            Instr::Ret,
        ]);
        assert!(matches!(out[2], Instr::Jump { target: 4 }));
        assert_eq!(r.branches_resolved, 1);

        // Never-taken branch disappears.
        let (out, r) = run_fold(vec![
            Instr::Const { dst: 1, value: 3 },
            Instr::Const { dst: 2, value: 4 },
            Instr::Branch {
                cmp: Cmp::Eq,
                a: 1,
                b: 2,
                target: 4,
            },
            Instr::Const { dst: 9, value: 9 },
            Instr::Ret,
        ]);
        assert_eq!(out.len(), 4);
        assert_eq!(r.branches_resolved, 1);
    }

    #[test]
    fn knowledge_resets_at_block_boundaries_and_calls() {
        // r1 is constant before the branch target, but index 3 is a
        // target, so the Alu there must not fold.
        let (out, _) = run_fold(vec![
            Instr::Const { dst: 1, value: 1 },
            Instr::Branch {
                cmp: Cmp::Eq,
                a: 8,
                b: 9,
                target: 3,
            },
            Instr::Const { dst: 1, value: 2 },
            Instr::AluImm {
                op: AluOp::Add,
                dst: 2,
                a: 1,
                imm: 1,
            },
            Instr::Ret,
        ]);
        assert!(matches!(out[3], Instr::AluImm { .. }), "{out:?}");

        // Calls clobber knowledge.
        let (out, _) = run_fold(vec![
            Instr::Const { dst: 1, value: 1 },
            Instr::Call {
                func: crate::ir::FuncRef::Local(1),
            },
            Instr::AluImm {
                op: AluOp::Add,
                dst: 2,
                a: 1,
                imm: 1,
            },
            Instr::Ret,
        ]);
        assert!(matches!(out[2], Instr::AluImm { .. }));
    }

    #[test]
    fn shadowed_writes_are_removed() {
        let mut f = Function::new(
            "t",
            vec![
                Instr::Const { dst: 1, value: 1 }, // shadowed by pc 1
                Instr::Const { dst: 1, value: 2 },
                Instr::Alu {
                    op: AluOp::Add,
                    dst: 2,
                    a: 1,
                    b: 1,
                }, // reads r1: pc 1 lives
                Instr::Ret,
            ],
        );
        let removed = eliminate_shadowed_writes(&mut f);
        assert_eq!(removed, 1);
        assert_eq!(f.body.len(), 3);
        assert_eq!(f.body[0], Instr::Const { dst: 1, value: 2 });
    }

    #[test]
    fn reads_calls_and_boundaries_protect_writes() {
        // A read in between protects.
        let mut f = Function::new(
            "t",
            vec![
                Instr::Const { dst: 1, value: 1 },
                Instr::Emit {
                    src: 1,
                    width: crate::ir::Width::B1,
                },
                Instr::Const { dst: 1, value: 2 },
                Instr::Ret,
            ],
        );
        assert_eq!(eliminate_shadowed_writes(&mut f), 0);

        // A call in between protects (callee may read r1).
        let mut f = Function::new(
            "t",
            vec![
                Instr::Const { dst: 1, value: 1 },
                Instr::Call {
                    func: crate::ir::FuncRef::Local(1),
                },
                Instr::Const { dst: 1, value: 2 },
                Instr::Ret,
            ],
        );
        assert_eq!(eliminate_shadowed_writes(&mut f), 0);

        // A branch target in between protects (another block reads it).
        let mut f = Function::new(
            "t",
            vec![
                Instr::Jump { target: 2 },
                Instr::Const { dst: 1, value: 1 },
                Instr::Const { dst: 1, value: 2 },
                Instr::Ret,
            ],
        );
        assert_eq!(eliminate_shadowed_writes(&mut f), 0);
    }

    #[test]
    fn fold_plus_shadow_collapses_constant_chains() {
        let mut p = Program::new();
        let f = crate::builder::FnBuilder::new("chain")
            .constant(1, 14)
            .alu_imm(AluOp::Add, 1, 1, 20)
            .alu_imm(AluOp::Add, 1, 1, 8)
            .emit(1, crate::ir::Width::B1)
            .ret_const(0)
            .build();
        p.add_lambda(
            crate::program::Lambda::new("c", crate::program::WorkloadId(1), f),
            vec![],
        );
        let (out, report) = fold_constants(&p);
        // The chain collapses to a single Const feeding the emit.
        let body = &out.lambdas[0].functions[0].body;
        assert_eq!(
            body,
            &vec![
                Instr::Const { dst: 1, value: 42 },
                Instr::Emit {
                    src: 1,
                    width: crate::ir::Width::B1
                },
                Instr::Const { dst: 0, value: 0 },
                Instr::Ret,
            ]
        );
        assert!(
            report.folded >= 2 && report.shadowed_removed >= 2,
            "{report:?}"
        );
    }

    #[test]
    fn trailing_removed_terminator_is_replaced() {
        // A never-taken branch at the end leaves a naked body; the pass
        // appends Ret.
        let (out, _) = run_fold(vec![
            Instr::Const { dst: 1, value: 1 },
            Instr::Const { dst: 2, value: 2 },
            Instr::Branch {
                cmp: Cmp::Eq,
                a: 1,
                b: 2,
                target: 0,
            },
        ]);
        assert_eq!(out.last(), Some(&Instr::Ret));
    }
}
