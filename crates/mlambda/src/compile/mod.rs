//! The Match+Lambda compiler (§5): validation, the three target-specific
//! optimization passes of §5.1, and lowering to a per-core binary.
//!
//! The pass pipeline matches the order the paper evaluates in §6.4 /
//! Figure 9: **lambda coalescing**, then **match reduction**, then
//! **memory stratification** — and [`Firmware::report`] records the
//! instruction count after each stage so the figure can be regenerated.

pub mod coalesce;
pub mod fold;
pub mod lower;
pub mod match_reduce;
pub mod stratify;

use std::fmt;

use crate::memory::{MemLevel, MemorySpec};
use crate::program::{Program, ValidateError};

pub use coalesce::{coalesce, CoalesceReport};
pub use fold::{fold_constants, FoldReport};
pub use lower::{CoreBinary, LowerOptions, Sections, Word};
pub use match_reduce::{match_reduce, MatchReduceReport};
pub use stratify::{naive_placements, stratify, Placements, StratifyReport};

/// Per-core instruction-store capacity of the evaluation NICs
/// (§6.1.2: "16 K instructions per core").
pub const CORE_INSTRUCTION_STORE: usize = 16 * 1024;

/// Compiler configuration.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Run constant folding / peephole simplification (an extension
    /// beyond the paper's pipeline; off by default so Figure 9 uses
    /// exactly the paper's passes).
    pub fold: bool,
    /// Run lambda coalescing (DCE + shared-library dedup).
    pub coalesce: bool,
    /// Run match reduction (merge tables; lower as if-else).
    pub match_reduce: bool,
    /// Run memory stratification (place objects by heat/size).
    pub stratify: bool,
    /// Target memory hierarchy.
    pub memory: MemorySpec,
    /// Instruction-store words available per core.
    pub instruction_store_words: usize,
    /// Words reserved for basic NIC operations (§3.1c).
    pub reserved_words: usize,
}

impl CompileOptions {
    /// No optimization: the naive build of §6.4.
    pub fn naive() -> Self {
        CompileOptions {
            fold: false,
            coalesce: false,
            match_reduce: false,
            stratify: false,
            memory: MemorySpec::agilio_cx(),
            instruction_store_words: CORE_INSTRUCTION_STORE,
            reserved_words: 1024,
        }
    }

    /// All three passes enabled.
    pub fn optimized() -> Self {
        CompileOptions {
            coalesce: true,
            match_reduce: true,
            stratify: true,
            ..CompileOptions::naive()
        }
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::optimized()
    }
}

/// Instruction counts after each optimization stage (Figure 9's bars).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Unoptimized word count.
    pub unoptimized: usize,
    /// After lambda coalescing.
    pub after_coalescing: usize,
    /// After match reduction (cumulative).
    pub after_match_reduction: usize,
    /// After memory stratification (cumulative).
    pub after_stratification: usize,
}

impl OptReport {
    /// Total reduction as a fraction of the unoptimized count.
    pub fn total_reduction(&self) -> f64 {
        if self.unoptimized == 0 {
            0.0
        } else {
            1.0 - self.after_stratification as f64 / self.unoptimized as f64
        }
    }
}

/// A compiled firmware image ready to load onto a (simulated) SmartNIC.
#[derive(Clone, Debug)]
pub struct Firmware {
    /// The post-pass program the NIC runtime executes.
    pub program: Program,
    /// Object placements: `placements[lambda][object]`.
    pub placements: Placements,
    /// The per-core binary.
    pub binary: CoreBinary,
    /// Per-stage instruction counts (Figure 9).
    pub report: OptReport,
    /// Pass diagnostics.
    pub pass_info: PassInfo,
}

/// Detailed pass reports.
#[derive(Clone, Debug, Default)]
pub struct PassInfo {
    /// Constant-folding report (zeroed when the pass is disabled).
    pub fold: FoldReport,
    /// Coalescing report (zeroed when the pass is disabled).
    pub coalesce: CoalesceReport,
    /// Match-reduction report (zeroed when the pass is disabled).
    pub match_reduce: MatchReduceReport,
    /// Stratification report (zeroed when the pass is disabled).
    pub stratify: StratifyReport,
}

impl Firmware {
    /// Total instruction-store words of the per-core binary.
    pub fn instruction_words(&self) -> usize {
        self.binary.len()
    }

    /// Size of the deployable image in bytes: 8-byte instruction words
    /// plus initialized object data.
    pub fn size_bytes(&self) -> u64 {
        let data: u64 = self
            .program
            .lambdas
            .iter()
            .flat_map(|l| l.objects.iter())
            .map(|o| o.size as u64)
            .sum();
        self.binary.len() as u64 * 8 + data
    }

    /// The memory level assigned to `obj` of `lambda_idx`.
    pub fn placement(&self, lambda_idx: usize, obj: usize) -> MemLevel {
        self.placements[lambda_idx][obj]
    }

    /// Cycles the parse+match stages cost per packet: one per word on the
    /// parser path plus the match path.
    pub fn parse_match_cycles(&self) -> u64 {
        (self.binary.sections.parser + self.binary.sections.match_stage) as u64
    }
}

/// Compilation failures.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// The program failed structural validation.
    Invalid(ValidateError),
    /// The lowered image exceeds the per-core instruction store.
    ProgramTooLarge {
        /// Words the image needs.
        words: usize,
        /// Words available.
        available: usize,
    },
    /// An object exceeds even external memory.
    ObjectTooLarge {
        /// Lambda name.
        lambda: String,
        /// Object name.
        object: String,
        /// Requested size.
        size: u64,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Invalid(e) => write!(f, "invalid program: {e}"),
            CompileError::ProgramTooLarge { words, available } => write!(
                f,
                "program needs {words} instruction words but only {available} are available"
            ),
            CompileError::ObjectTooLarge {
                lambda,
                object,
                size,
            } => write!(
                f,
                "object {object} of lambda {lambda} ({size} bytes) exceeds external memory"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ValidateError> for CompileError {
    fn from(e: ValidateError) -> Self {
        CompileError::Invalid(e)
    }
}

/// Compiles `program` with `opts`.
///
/// # Errors
///
/// Returns a [`CompileError`] when validation fails, an object exceeds
/// external memory, or the lowered image does not fit the per-core
/// instruction store.
pub fn compile(program: &Program, opts: &CompileOptions) -> Result<Firmware, CompileError> {
    program.validate()?;
    for lambda in &program.lambdas {
        for obj in &lambda.objects {
            if obj.size as u64 > opts.memory.emem.capacity_bytes {
                return Err(CompileError::ObjectTooLarge {
                    lambda: lambda.name.clone(),
                    object: obj.name.clone(),
                    size: obj.size as u64,
                });
            }
        }
    }

    let mut pass_info = PassInfo::default();

    // Stage 0: unoptimized measurement (of the program as authored).
    let naive_opts = LowerOptions {
        per_lambda_stages: true,
    };
    let unoptimized = lower::lower(
        program,
        &naive_placements(program),
        &opts.memory,
        naive_opts,
    )
    .len();

    // Extension stage: constant folding (before coalescing so folded
    // helper bodies still dedup byte-identically).
    let folded;
    let input: &Program = if opts.fold {
        let (p, rep) = fold::fold_constants(program);
        pass_info.fold = rep;
        folded = p;
        &folded
    } else {
        program
    };

    // Stage 1: lambda coalescing.
    let p1 = if opts.coalesce {
        let (p, rep) = coalesce(input);
        pass_info.coalesce = rep;
        p
    } else {
        input.clone()
    };
    let after_coalescing =
        lower::lower(&p1, &naive_placements(&p1), &opts.memory, naive_opts).len();

    // Stage 2: match reduction.
    let (p2, lower_opts) = if opts.match_reduce {
        let (p, rep) = match_reduce(&p1);
        pass_info.match_reduce = rep;
        (
            p,
            LowerOptions {
                per_lambda_stages: false,
            },
        )
    } else {
        (p1, naive_opts)
    };
    let after_match_reduction =
        lower::lower(&p2, &naive_placements(&p2), &opts.memory, lower_opts).len();

    // Stage 3: memory stratification.
    let placements = if opts.stratify {
        let (pl, rep) = stratify(&p2, &opts.memory);
        pass_info.stratify = rep;
        pl
    } else {
        naive_placements(&p2)
    };
    let binary = lower::lower(&p2, &placements, &opts.memory, lower_opts);
    let after_stratification = binary.len();

    let available = opts
        .instruction_store_words
        .saturating_sub(opts.reserved_words);
    if binary.len() > available {
        return Err(CompileError::ProgramTooLarge {
            words: binary.len(),
            available,
        });
    }

    p2.validate()?;

    Ok(Firmware {
        program: p2,
        placements,
        binary,
        report: OptReport {
            unoptimized,
            after_coalescing,
            after_match_reduction,
            after_stratification,
        },
        pass_info,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FuncRef, Function, Instr, ObjId, Width};
    use crate::program::{Lambda, MemObject, Program, WorkloadId};

    /// A program shaped like §6.4's benchmark: lambdas with a duplicated
    /// helper and memory objects.
    fn benchmark_like_program() -> Program {
        let helper = Function::new(
            "gen_packet",
            vec![
                Instr::Const { dst: 10, value: 1 },
                Instr::Const { dst: 11, value: 2 },
                Instr::Alu {
                    op: crate::ir::AluOp::Add,
                    dst: 12,
                    a: 10,
                    b: 11,
                },
                Instr::Ret,
            ],
        );
        let mut p = Program::new();
        for (name, id) in [("kv1", 1u32), ("kv2", 2)] {
            let mut l = Lambda::new(
                name,
                WorkloadId(id),
                Function::new(
                    "entry",
                    vec![
                        Instr::Call {
                            func: FuncRef::Local(1),
                        },
                        Instr::Const { dst: 1, value: 0 },
                        Instr::Load {
                            dst: 2,
                            obj: ObjId(0),
                            addr: 1,
                            width: Width::B8,
                        },
                        Instr::Const { dst: 0, value: 0 },
                        Instr::Ret,
                    ],
                ),
            );
            l.add_object(MemObject::zeroed("buf", 128));
            l.add_function(helper.clone());
            p.add_lambda(l, vec![id as u64]);
        }
        p
    }

    #[test]
    fn optimized_compile_shrinks_monotonically() {
        let p = benchmark_like_program();
        let fw = compile(&p, &CompileOptions::optimized()).expect("compiles");
        let r = fw.report;
        assert!(r.unoptimized > r.after_coalescing, "{r:?}");
        assert!(r.after_coalescing > r.after_match_reduction, "{r:?}");
        assert!(r.after_match_reduction > r.after_stratification, "{r:?}");
        assert!(r.total_reduction() > 0.0);
        assert_eq!(fw.instruction_words(), r.after_stratification);
    }

    #[test]
    fn naive_compile_reports_flat_counts() {
        let p = benchmark_like_program();
        let fw = compile(&p, &CompileOptions::naive()).expect("compiles");
        let r = fw.report;
        assert_eq!(r.unoptimized, r.after_coalescing);
        assert_eq!(r.after_coalescing, r.after_match_reduction);
        assert_eq!(r.after_match_reduction, r.after_stratification);
        assert!(fw.program.shared.is_empty());
    }

    #[test]
    fn instruction_store_limit_enforced() {
        let p = benchmark_like_program();
        let mut opts = CompileOptions::optimized();
        opts.instruction_store_words = 16;
        opts.reserved_words = 0;
        assert!(matches!(
            compile(&p, &opts),
            Err(CompileError::ProgramTooLarge { .. })
        ));
    }

    #[test]
    fn invalid_program_rejected() {
        let mut p = Program::new();
        p.add_lambda(
            Lambda::new(
                "bad",
                WorkloadId(1),
                Function::new("entry", vec![Instr::Const { dst: 0, value: 0 }]),
            ),
            vec![],
        );
        assert!(matches!(
            compile(&p, &CompileOptions::naive()),
            Err(CompileError::Invalid(_))
        ));
    }

    #[test]
    fn oversized_object_rejected() {
        let mut p = Program::new();
        let mut l = Lambda::new(
            "big",
            WorkloadId(1),
            Function::new("entry", vec![Instr::Const { dst: 0, value: 0 }, Instr::Ret]),
        );
        l.add_object(MemObject::zeroed("huge", u32::MAX));
        p.add_lambda(l, vec![]);
        assert!(matches!(
            compile(&p, &CompileOptions::naive()),
            Err(CompileError::ObjectTooLarge { .. })
        ));
    }

    #[test]
    fn firmware_size_includes_object_data() {
        let p = benchmark_like_program();
        let fw = compile(&p, &CompileOptions::optimized()).unwrap();
        assert_eq!(fw.size_bytes(), fw.binary.len() as u64 * 8 + 2 * 128);
        assert!(fw.parse_match_cycles() > 0);
    }

    #[test]
    fn stratified_placement_recorded() {
        let p = benchmark_like_program();
        let fw = compile(&p, &CompileOptions::optimized()).unwrap();
        // The small read-only buffers are replicated into core-local
        // memory instead of staying in naive EMEM.
        assert_eq!(fw.placement(0, 0), MemLevel::Lmem);
        assert_eq!(fw.placement(1, 0), MemLevel::Lmem);
    }

    #[test]
    fn optimized_semantics_match_naive() {
        use crate::interp::{run_to_completion, ObjectMemory, RequestCtx};
        use bytes::Bytes;

        let p = benchmark_like_program();
        let naive = compile(&p, &CompileOptions::naive()).unwrap();
        let opt = compile(&p, &CompileOptions::optimized()).unwrap();
        let naive_prog = std::sync::Arc::new(naive.program.clone());
        let opt_prog = std::sync::Arc::new(opt.program.clone());
        for li in 0..p.lambdas.len() {
            let mut m1 = ObjectMemory::for_lambda(&naive_prog.lambdas[li]);
            let mut m2 = ObjectMemory::for_lambda(&opt_prog.lambdas[li]);
            let d1 = run_to_completion(
                &naive_prog,
                li,
                RequestCtx::default(),
                &mut m1,
                10_000,
                |_, _| Bytes::new(),
            )
            .unwrap();
            let d2 = run_to_completion(
                &opt_prog,
                li,
                RequestCtx::default(),
                &mut m2,
                10_000,
                |_, _| Bytes::new(),
            )
            .unwrap();
            assert_eq!(d1.response, d2.response);
            assert_eq!(d1.return_code, d2.return_code);
        }
    }
}
