//! Match reduction (§5.1): merge the per-lambda dispatch and
//! route-management tables into one table keyed on the workload id, with
//! route state carried as per-entry parameters (P4 metadata). The lowering
//! stage then emits the merged table as an if-else chain instead of a
//! generic table-engine lookup.

use std::collections::HashMap;

use crate::program::{MatchAction, MatchEntry, MatchKey, MatchTable, Program};

/// Statistics reported by the match-reduction pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchReduceReport {
    /// Tables before the pass.
    pub tables_before: usize,
    /// Tables after the pass.
    pub tables_after: usize,
    /// Entries before the pass.
    pub entries_before: usize,
    /// Entries after the pass.
    pub entries_after: usize,
}

/// Merges all workload-id-keyed tables into a single table whose entries
/// carry the route parameters as match data. Tables keyed on other fields
/// are preserved untouched (they express policy the pass cannot merge).
pub fn match_reduce(program: &Program) -> (Program, MatchReduceReport) {
    let mut report = MatchReduceReport {
        tables_before: program.tables.len(),
        entries_before: program.tables.iter().map(|t| t.entries.len()).sum(),
        ..Default::default()
    };
    let mut p = program.clone();

    // Fold every single-key WorkloadId table in order, keeping the first
    // selected lambda and the last non-empty params per id — exactly the
    // semantics of Program::dispatch over the original table sequence.
    let mut merged: Vec<(u64, usize, Vec<u64>)> = Vec::new();
    let mut index_of: HashMap<u64, usize> = HashMap::new();
    let mut kept: Vec<MatchTable> = Vec::new();

    for table in &p.tables {
        if table.keys != [MatchKey::WorkloadId] {
            kept.push(table.clone());
            continue;
        }
        for entry in &table.entries {
            let id = entry.values[0];
            match &entry.action {
                MatchAction::Invoke { lambda, params } => match index_of.get(&id) {
                    Some(&i) => {
                        if merged[i].1 == *lambda && !params.is_empty() {
                            merged[i].2 = params.clone();
                        }
                    }
                    None => {
                        index_of.insert(id, merged.len());
                        merged.push((id, *lambda, params.clone()));
                    }
                },
                MatchAction::SendToHost => {
                    // A to-host rule for an id shadows nothing we merge;
                    // preserve it as its own row if the id is unknown.
                    if !index_of.contains_key(&id) {
                        kept.push(MatchTable {
                            name: table.name.clone(),
                            keys: table.keys.clone(),
                            entries: vec![entry.clone()],
                        });
                    }
                }
            }
        }
    }

    let merged_table = MatchTable {
        name: "merged_dispatch".to_owned(),
        keys: vec![MatchKey::WorkloadId],
        entries: merged
            .into_iter()
            .map(|(id, lambda, params)| MatchEntry {
                values: vec![id],
                action: MatchAction::Invoke { lambda, params },
            })
            .collect(),
    };

    p.tables = Vec::with_capacity(kept.len() + 1);
    p.tables.push(merged_table);
    p.tables.extend(kept);

    report.tables_after = p.tables.len();
    report.entries_after = p.tables.iter().map(|t| t.entries.len()).sum();
    (p, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Function, Instr};
    use crate::program::{DispatchCtx, Lambda, WorkloadId};
    use proptest::prelude::*;

    fn ret_fn() -> Function {
        Function::new("entry", vec![Instr::Const { dst: 0, value: 0 }, Instr::Ret])
    }

    fn program_with(ids_and_params: &[(u32, Vec<u64>)]) -> Program {
        let mut p = Program::new();
        for (id, params) in ids_and_params {
            p.add_lambda(
                Lambda::new(format!("l{id}"), WorkloadId(*id), ret_fn()),
                params.clone(),
            );
        }
        p
    }

    #[test]
    fn tables_merge_to_one() {
        let p = program_with(&[(1, vec![10]), (2, vec![20, 21]), (3, vec![])]);
        assert_eq!(p.tables.len(), 6);
        let (out, report) = match_reduce(&p);
        assert_eq!(out.tables.len(), 1);
        assert_eq!(out.tables[0].entries.len(), 3);
        assert_eq!(report.tables_before, 6);
        assert_eq!(report.tables_after, 1);
        assert_eq!(report.entries_before, 6);
        assert_eq!(report.entries_after, 3);
    }

    #[test]
    fn dispatch_equivalent_for_known_and_unknown_ids() {
        let p = program_with(&[(1, vec![10]), (7, vec![70])]);
        let (out, _) = match_reduce(&p);
        for wid in [0u32, 1, 2, 7, 100] {
            for has in [true, false] {
                let ctx = DispatchCtx {
                    workload_id: wid,
                    has_lambda_hdr: has,
                    ..Default::default()
                };
                assert_eq!(p.dispatch(&ctx), out.dispatch(&ctx), "wid={wid} has={has}");
            }
        }
    }

    #[test]
    fn non_workload_tables_preserved() {
        let mut p = program_with(&[(1, vec![])]);
        p.tables.push(MatchTable {
            name: "port_policy".into(),
            keys: vec![MatchKey::DstPort],
            entries: vec![MatchEntry {
                values: vec![53],
                action: MatchAction::SendToHost,
            }],
        });
        let (out, _) = match_reduce(&p);
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[1].name, "port_policy");
        // A DNS packet still goes to the host.
        let ctx = DispatchCtx {
            workload_id: 1,
            dst_port: 53,
            has_lambda_hdr: true,
            ..Default::default()
        };
        assert_eq!(p.dispatch(&ctx), out.dispatch(&ctx));
    }

    proptest! {
        /// The merged table dispatches identically to the naive table list
        /// for arbitrary id sets and lookups.
        #[test]
        fn reduction_preserves_dispatch(
            ids in proptest::collection::btree_set(0u32..32, 1..8),
            params in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 0..3), 8),
            probes in proptest::collection::vec((0u32..40, any::<bool>()), 1..32),
        ) {
            let spec: Vec<(u32, Vec<u64>)> = ids
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, params[i % params.len()].clone()))
                .collect();
            let p = program_with(&spec);
            let (out, _) = match_reduce(&p);
            for (wid, has) in probes {
                let ctx = DispatchCtx { workload_id: wid, has_lambda_hdr: has, ..Default::default() };
                prop_assert_eq!(p.dispatch(&ctx), out.dispatch(&ctx));
            }
        }
    }
}
