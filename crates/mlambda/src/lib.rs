//! # lnic-mlambda: the Match+Lambda abstraction
//!
//! The paper's programming model (§4): users author lambdas against an
//! abstract machine — parse, match, lambda — and the workload manager
//! compiles them into a single per-core image for the SmartNIC.
//!
//! This crate provides:
//!
//! - the [`ir`] a lambda is written in (standing in for Micro-C), with
//!   exactly the restrictions NPUs impose: integers only, no dynamic
//!   allocation, no recursion;
//! - [`program`]: lambdas + memory objects + P4-style match tables;
//! - [`interp`]: a resumable reference interpreter giving lambdas real
//!   semantics and producing the counters the timing models consume;
//! - [`mod@compile`]: validation, the three optimization passes of §5.1
//!   (lambda coalescing, match reduction, memory stratification), and
//!   lowering to a per-core binary whose word count reproduces Figure 9;
//! - [`memory`]/[`cost`]: the NIC memory hierarchy and cycle model;
//! - [`builder`]: an assembler with symbolic labels for authoring
//!   lambdas;
//! - [`disasm`]: human-readable disassembly of programs and lowered
//!   binaries;
//! - [`compile::fold`]: an optional constant-folding / dead-write
//!   elimination pass beyond the paper's pipeline (off by default so
//!   Figure 9 uses exactly the paper's passes).
//!
//! ## Example: compile and run a web-server lambda
//!
//! ```
//! use lnic_mlambda::builder::FnBuilder;
//! use lnic_mlambda::compile::{compile, CompileOptions};
//! use lnic_mlambda::interp::{run_to_completion, ObjectMemory, RequestCtx};
//! use lnic_mlambda::program::{Lambda, MemObject, Program, WorkloadId};
//!
//! // Listing 2: copy web content from memory into the response.
//! let content = b"<html>hello</html>".to_vec();
//! let entry = FnBuilder::new("web_server")
//!     .constant(1, 0)
//!     .constant(2, content.len() as u64)
//!     .emit_obj(lnic_mlambda::ir::ObjId(0), 1, 2)
//!     .ret_const(0)
//!     .build();
//! let mut lambda = Lambda::new("web", WorkloadId(1), entry);
//! lambda.add_object(MemObject::with_data("content", content.clone()));
//! let mut program = Program::new();
//! let idx = program.add_lambda(lambda, vec![]);
//!
//! let firmware = compile(&program, &CompileOptions::optimized())?;
//! let prog = std::sync::Arc::new(firmware.program.clone());
//! let mut mem = ObjectMemory::for_lambda(&prog.lambdas[idx]);
//! let done = run_to_completion(
//!     &prog,
//!     idx,
//!     RequestCtx::default(),
//!     &mut mem,
//!     10_000,
//!     |_, _| bytes::Bytes::new(),
//! )?;
//! assert_eq!(&done.response[..], &content[..]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod compile;
pub mod cost;
pub mod disasm;
pub mod interp;
pub mod ir;
pub mod memory;
pub mod program;

pub use compile::{compile, CompileError, CompileOptions, Firmware};
pub use interp::{run_to_completion, Completion, ExecError, Execution, ObjectMemory, RequestCtx};
pub use memory::{MemLevel, MemorySpec};
pub use program::{DispatchCtx, DispatchResult, Lambda, MemObject, Program, WorkloadId};
