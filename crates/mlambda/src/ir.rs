//! The Match+Lambda intermediate representation.
//!
//! Lambdas are authored (or generated) as small register-machine programs,
//! standing in for the paper's Micro-C functions (§4.1). The instruction
//! set deliberately mirrors what NPU cores support: integer ALU ops,
//! header/metadata access, bounded memory objects, bulk copies, and an
//! explicit network RPC — and deliberately omits what they do *not*
//! support (§3.1b): floating point, dynamic memory allocation, and
//! recursion (rejected at validation time).

use std::fmt;

/// A general-purpose register index. NPU threads expose
/// [`NUM_REGISTERS`] registers.
pub type Reg = u8;

/// Number of general-purpose registers per thread (Netronome NPUs expose
/// 32 per-thread GPRs).
pub const NUM_REGISTERS: usize = 32;

/// By convention, a function's return value (and the lambda's return code)
/// is left in register 0.
pub const RET_REG: Reg = 0;

/// Access width of a scalar memory operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Width {
    /// One byte.
    B1,
    /// Two bytes (big-endian).
    B2,
    /// Four bytes (big-endian).
    B4,
    /// Eight bytes (big-endian).
    B8,
}

impl Width {
    /// Width in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }
}

/// Integer ALU operations (wrapping semantics, as on the NPU).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by `b & 63`).
    Shl,
    /// Logical shift right (by `b & 63`).
    Shr,
    /// Unsigned division (x / 0 = 0, as NPU helper libraries define it).
    Div,
    /// Unsigned remainder (x % 0 = x).
    Mod,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Div => a.checked_div(b).unwrap_or(0),
            AluOp::Mod => a.checked_rem(b).unwrap_or(a),
        }
    }
}

/// Branch comparison predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b` (unsigned)
    Lt,
    /// `a >= b` (unsigned)
    Ge,
}

impl Cmp {
    /// Evaluates the predicate.
    pub fn test(self, a: u64, b: u64) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Ge => a >= b,
        }
    }
}

/// A parsed header field readable by a lambda (the `EXTRACTED_HEADERS_T`
/// of Listing 1). The parser stage extracts exactly the fields a program
/// uses (§4, "λ-NIC infers which packet headers are used by each lambda").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HeaderField {
    /// λ-NIC header: target workload id.
    WorkloadId,
    /// λ-NIC header: request id.
    RequestId,
    /// λ-NIC header: fragment index.
    FragIndex,
    /// λ-NIC header: fragment count.
    FragCount,
    /// λ-NIC header: return code.
    ReturnCode,
    /// IPv4 source address.
    SrcIp,
    /// IPv4 destination address.
    DstIp,
    /// UDP source port.
    SrcPort,
    /// UDP destination port.
    DstPort,
    /// Length of the request payload in bytes.
    PayloadLen,
}

impl HeaderField {
    /// All fields, in a stable order.
    pub const ALL: [HeaderField; 10] = [
        HeaderField::WorkloadId,
        HeaderField::RequestId,
        HeaderField::FragIndex,
        HeaderField::FragCount,
        HeaderField::ReturnCode,
        HeaderField::SrcIp,
        HeaderField::DstIp,
        HeaderField::SrcPort,
        HeaderField::DstPort,
        HeaderField::PayloadLen,
    ];

    /// Which protocol header this field belongs to (used by the generated
    /// parser to decide which headers must be extracted).
    pub fn header_class(self) -> HeaderClass {
        match self {
            HeaderField::WorkloadId
            | HeaderField::RequestId
            | HeaderField::FragIndex
            | HeaderField::FragCount
            | HeaderField::ReturnCode => HeaderClass::Lambda,
            HeaderField::SrcIp | HeaderField::DstIp => HeaderClass::Ipv4,
            HeaderField::SrcPort | HeaderField::DstPort => HeaderClass::Udp,
            HeaderField::PayloadLen => HeaderClass::Udp,
        }
    }
}

/// Protocol headers the generated parser can extract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HeaderClass {
    /// Ethernet (always parsed).
    Ethernet,
    /// IPv4.
    Ipv4,
    /// UDP.
    Udp,
    /// λ-NIC lambda header.
    Lambda,
}

/// Index of a memory object within its lambda's object table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u16);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Reference to a callable function: local to the lambda, or in the
/// program-level shared library produced by lambda coalescing (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuncRef {
    /// `functions[i]` of the current lambda.
    Local(u16),
    /// `shared[i]` of the program.
    Shared(u16),
}

/// One IR instruction.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `r[dst] = value`
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: u64,
    },
    /// `r[dst] = r[src]`
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `r[dst] = r[a] op r[b]`
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `r[dst] = r[a] op imm`
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Immediate right operand.
        imm: u64,
    },
    /// `r[dst] = headers[field]`
    LoadHdr {
        /// Destination register.
        dst: Reg,
        /// Header field to read.
        field: HeaderField,
    },
    /// `r[dst] = match_data[idx]` — parameters attached to the matched
    /// table entry (the `MATCH_DATA_T` of Listing 1).
    LoadMatchData {
        /// Destination register.
        dst: Reg,
        /// Parameter index.
        idx: u8,
    },
    /// Scalar load from a memory object at byte offset `r[addr]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Object to read.
        obj: ObjId,
        /// Register holding the byte offset.
        addr: Reg,
        /// Access width.
        width: Width,
    },
    /// Scalar store to a memory object at byte offset `r[addr]`.
    Store {
        /// Object to write.
        obj: ObjId,
        /// Register holding the byte offset.
        addr: Reg,
        /// Source register.
        src: Reg,
        /// Access width.
        width: Width,
    },
    /// `r[dst] = request_payload[r[addr] ..][..width]` (big-endian).
    LoadPayload {
        /// Destination register.
        dst: Reg,
        /// Register holding the byte offset.
        addr: Reg,
        /// Access width.
        width: Width,
    },
    /// Appends the low `width` bytes of `r[src]` (big-endian) to the
    /// response payload.
    Emit {
        /// Source register.
        src: Reg,
        /// Bytes to append.
        width: Width,
    },
    /// Bulk copy: appends `r[len]` bytes of `obj` starting at `r[off]` to
    /// the response payload (the `memcpy` of Listing 2).
    EmitObj {
        /// Source object.
        obj: ObjId,
        /// Register holding the start offset.
        off: Reg,
        /// Register holding the byte count.
        len: Reg,
    },
    /// Bulk copy: reads `r[len]` bytes of the request payload starting at
    /// `r[src_off]` into `obj` at `r[dst_off]`.
    PayloadToObj {
        /// Destination object.
        obj: ObjId,
        /// Register holding the payload start offset.
        src_off: Reg,
        /// Register holding the object start offset.
        dst_off: Reg,
        /// Register holding the byte count.
        len: Reg,
    },
    /// Conditional branch within the current function.
    Branch {
        /// Predicate.
        cmp: Cmp,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional jump within the current function.
    Jump {
        /// Target instruction index.
        target: u32,
    },
    /// Calls another function; its `Ret` resumes after this instruction.
    Call {
        /// Callee.
        func: FuncRef,
    },
    /// Returns from the current function (from the entry function: ends
    /// the lambda with return code `r[0]`).
    Ret,
    /// Synchronous RPC to an external service (§4.2-D3): sends
    /// `r[req_len]` bytes of `req_obj` at `r[req_off]`, then writes the
    /// response into `resp_obj` at `r[resp_off]` (truncated to
    /// `r[resp_cap]` bytes) and its length into `r[resp_len_dst]`.
    NetRpc {
        /// Logical service id (resolved by the runtime).
        service: u16,
        /// Object holding the request bytes.
        req_obj: ObjId,
        /// Register holding the request start offset.
        req_off: Reg,
        /// Register holding the request length.
        req_len: Reg,
        /// Object receiving the response bytes.
        resp_obj: ObjId,
        /// Register holding the response start offset.
        resp_off: Reg,
        /// Register holding the response capacity.
        resp_cap: Reg,
        /// Register receiving the response length.
        resp_len_dst: Reg,
    },
}

impl Instr {
    /// Registers read by this instruction.
    pub fn reads(&self) -> Vec<Reg> {
        match *self {
            Instr::Const { .. } | Instr::LoadHdr { .. } | Instr::LoadMatchData { .. } => vec![],
            Instr::Mov { src, .. } => vec![src],
            Instr::Alu { a, b, .. } => vec![a, b],
            Instr::AluImm { a, .. } => vec![a],
            Instr::Load { addr, .. } => vec![addr],
            Instr::Store { addr, src, .. } => vec![addr, src],
            Instr::LoadPayload { addr, .. } => vec![addr],
            Instr::Emit { src, .. } => vec![src],
            Instr::EmitObj { off, len, .. } => vec![off, len],
            Instr::PayloadToObj {
                src_off,
                dst_off,
                len,
                ..
            } => vec![src_off, dst_off, len],
            Instr::Branch { a, b, .. } => vec![a, b],
            Instr::Jump { .. } | Instr::Call { .. } => vec![],
            Instr::Ret => vec![RET_REG],
            Instr::NetRpc {
                req_off,
                req_len,
                resp_off,
                resp_cap,
                ..
            } => vec![req_off, req_len, resp_off, resp_cap],
        }
    }

    /// Register written by this instruction, if any.
    pub fn writes(&self) -> Option<Reg> {
        match *self {
            Instr::Const { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Alu { dst, .. }
            | Instr::AluImm { dst, .. }
            | Instr::LoadHdr { dst, .. }
            | Instr::LoadMatchData { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::LoadPayload { dst, .. } => Some(dst),
            Instr::NetRpc { resp_len_dst, .. } => Some(resp_len_dst),
            _ => None,
        }
    }

    /// The memory object this instruction touches, with its access kind,
    /// if any. `NetRpc` touches two objects; this returns the request
    /// object (callers that need both use [`Instr::objects`]).
    pub fn object(&self) -> Option<(ObjId, Access)> {
        self.objects().into_iter().next()
    }

    /// All memory objects this instruction touches.
    pub fn objects(&self) -> Vec<(ObjId, Access)> {
        match *self {
            Instr::Load { obj, .. } | Instr::EmitObj { obj, .. } => vec![(obj, Access::Read)],
            Instr::Store { obj, .. } | Instr::PayloadToObj { obj, .. } => {
                vec![(obj, Access::Write)]
            }
            Instr::NetRpc {
                req_obj, resp_obj, ..
            } => vec![(req_obj, Access::Read), (resp_obj, Access::Write)],
            _ => vec![],
        }
    }

    /// The header field read, if any (drives parser inference).
    pub fn header_field(&self) -> Option<HeaderField> {
        match *self {
            Instr::LoadHdr { field, .. } => Some(field),
            Instr::LoadPayload { .. } | Instr::PayloadToObj { .. } => Some(HeaderField::PayloadLen),
            _ => None,
        }
    }

    /// `true` for instructions that unconditionally leave the current
    /// straight-line position (jump or return).
    pub fn is_terminator(&self) -> bool {
        matches!(self, Instr::Jump { .. } | Instr::Ret)
    }
}

/// Memory access direction for analysis (§4, "λ-NIC analyzes the
/// memory-access patterns (i.e., read, write, or both)").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// The object is read.
    Read,
    /// The object is written.
    Write,
}

/// A function: a named straight-line/branching body of instructions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Function {
    /// Name (for diagnostics and deduplication reports).
    pub name: String,
    /// Instruction body; execution begins at index 0.
    pub body: Vec<Instr>,
}

impl Function {
    /// Creates a function.
    pub fn new(name: impl Into<String>, body: Vec<Instr>) -> Self {
        Function {
            name: name.into(),
            body,
        }
    }
}

/// Lambda return codes (mirrors `RETURN_FORWARD` etc. of Listing 2).
pub mod retcode {
    /// Forward the built response back to the requester.
    pub const FORWARD: u64 = 0;
    /// Drop the request silently.
    pub const DROP: u64 = 1;
    /// Punt the request to the host OS.
    pub const TO_HOST: u64 = 2;
    /// The lambda observed an application-level error.
    pub const ERROR: u64 = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Mul.apply(3, 5), 15);
        assert_eq!(AluOp::Shl.apply(1, 65), 2); // shift modulo 64
        assert_eq!(AluOp::Shr.apply(8, 2), 2);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Div.apply(17, 5), 3);
        assert_eq!(AluOp::Div.apply(17, 0), 0);
        assert_eq!(AluOp::Mod.apply(17, 5), 2);
        assert_eq!(AluOp::Mod.apply(17, 0), 17);
    }

    #[test]
    fn cmp_predicates() {
        assert!(Cmp::Eq.test(4, 4));
        assert!(Cmp::Ne.test(4, 5));
        assert!(Cmp::Lt.test(4, 5));
        assert!(Cmp::Ge.test(5, 5));
        assert!(!Cmp::Lt.test(5, 5));
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::B1.bytes(), 1);
        assert_eq!(Width::B8.bytes(), 8);
    }

    #[test]
    fn reads_and_writes_are_reported() {
        let i = Instr::Alu {
            op: AluOp::Add,
            dst: 3,
            a: 1,
            b: 2,
        };
        assert_eq!(i.reads(), vec![1, 2]);
        assert_eq!(i.writes(), Some(3));
        assert!(Instr::Ret.reads().contains(&RET_REG));
        assert_eq!(Instr::Ret.writes(), None);
    }

    #[test]
    fn net_rpc_touches_both_objects() {
        let i = Instr::NetRpc {
            service: 1,
            req_obj: ObjId(0),
            req_off: 1,
            req_len: 2,
            resp_obj: ObjId(1),
            resp_off: 3,
            resp_cap: 4,
            resp_len_dst: 5,
        };
        assert_eq!(
            i.objects(),
            vec![(ObjId(0), Access::Read), (ObjId(1), Access::Write)]
        );
        assert_eq!(i.writes(), Some(5));
    }

    #[test]
    fn header_classes() {
        assert_eq!(HeaderField::WorkloadId.header_class(), HeaderClass::Lambda);
        assert_eq!(HeaderField::SrcIp.header_class(), HeaderClass::Ipv4);
        assert_eq!(HeaderField::DstPort.header_class(), HeaderClass::Udp);
    }

    #[test]
    fn terminators() {
        assert!(Instr::Ret.is_terminator());
        assert!(Instr::Jump { target: 0 }.is_terminator());
        assert!(!Instr::Const { dst: 0, value: 0 }.is_terminator());
    }
}
