//! Match+Lambda programs: lambdas, memory objects, and the match stage.
//!
//! A [`Program`] bundles everything the workload manager compiles into one
//! SmartNIC firmware image (§4.1): the lambdas (Micro-C in the paper, IR
//! functions here), their declared memory objects, and the P4-style match
//! stage that dispatches incoming requests by workload id.

use std::collections::HashSet;
use std::fmt;

use crate::ir::{FuncRef, Function, HeaderField, Instr, ObjId, NUM_REGISTERS};

/// A user hint about an object's access frequency (§4.2-D2 pragmas).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Pragma {
    /// No hint; the compiler decides from static analysis.
    #[default]
    None,
    /// Read or written on (nearly) every request: prefer near memory.
    Hot,
    /// Rarely accessed: far memory is fine.
    Cold,
}

/// A declared memory object: a fixed-size byte array in the lambda's flat
/// virtual address space (§4.2-D2).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemObject {
    /// Name for diagnostics.
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Initial contents (zero-padded to `size`); e.g. static web content.
    pub init: Vec<u8>,
    /// Placement hint.
    pub pragma: Pragma,
}

impl MemObject {
    /// Creates a zero-initialized object.
    pub fn zeroed(name: impl Into<String>, size: u32) -> Self {
        MemObject {
            name: name.into(),
            size,
            init: Vec::new(),
            pragma: Pragma::None,
        }
    }

    /// Creates an object initialized with `data` (its size).
    pub fn with_data(name: impl Into<String>, data: Vec<u8>) -> Self {
        MemObject {
            name: name.into(),
            size: data.len() as u32,
            init: data,
            pragma: Pragma::None,
        }
    }

    /// Sets the placement pragma.
    pub fn pragma(mut self, pragma: Pragma) -> Self {
        self.pragma = pragma;
        self
    }
}

/// A workload identifier assigned by the workload manager (§4.1,
/// "assigns unique identifiers (IDs) to each of these lambdas").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkloadId(pub u32);

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// One lambda: an entry function, helper functions, and memory objects.
#[derive(Clone, Debug, PartialEq)]
pub struct Lambda {
    /// Human-readable name.
    pub name: String,
    /// The id the match stage dispatches on.
    pub id: WorkloadId,
    /// `functions[0]` is the entry point.
    pub functions: Vec<Function>,
    /// Declared memory objects.
    pub objects: Vec<MemObject>,
}

impl Lambda {
    /// Creates a lambda with the given entry function.
    pub fn new(name: impl Into<String>, id: WorkloadId, entry: Function) -> Self {
        Lambda {
            name: name.into(),
            id,
            functions: vec![entry],
            objects: Vec::new(),
        }
    }

    /// Adds a helper function, returning its local index.
    pub fn add_function(&mut self, f: Function) -> u16 {
        self.functions.push(f);
        (self.functions.len() - 1) as u16
    }

    /// Adds a memory object, returning its id.
    pub fn add_object(&mut self, obj: MemObject) -> ObjId {
        self.objects.push(obj);
        ObjId((self.objects.len() - 1) as u16)
    }

    /// Iterates over every instruction in every function.
    pub fn instrs(&self) -> impl Iterator<Item = &Instr> {
        self.functions.iter().flat_map(|f| f.body.iter())
    }

    /// The header fields this lambda reads (drives parser generation).
    pub fn used_header_fields(&self) -> HashSet<HeaderField> {
        self.instrs().filter_map(|i| i.header_field()).collect()
    }
}

/// Key column of a match table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatchKey {
    /// Match on the λ-NIC workload id.
    WorkloadId,
    /// Match on the UDP destination port.
    DstPort,
    /// Match on the IPv4 destination address.
    DstIp,
}

impl MatchKey {
    /// Extracts this key's value from a dispatch context.
    pub fn extract(self, ctx: &DispatchCtx) -> u64 {
        match self {
            MatchKey::WorkloadId => ctx.workload_id as u64,
            MatchKey::DstPort => ctx.dst_port as u64,
            MatchKey::DstIp => ctx.dst_ip as u64,
        }
    }
}

/// What a matching entry does with the packet (Listing 3).
#[derive(Clone, Debug, PartialEq)]
pub enum MatchAction {
    /// Invoke `lambdas[i]`, passing the entry's `params` as match data.
    Invoke {
        /// Index into [`Program::lambdas`].
        lambda: usize,
        /// `MATCH_DATA_T` parameters handed to the lambda.
        params: Vec<u64>,
    },
    /// Punt the packet to the host OS networking stack.
    SendToHost,
}

/// One row of a match table.
#[derive(Clone, Debug, PartialEq)]
pub struct MatchEntry {
    /// Values compared against the table's keys (same arity).
    pub values: Vec<u64>,
    /// Action taken on match.
    pub action: MatchAction,
}

/// A P4-style match-action table.
#[derive(Clone, Debug, PartialEq)]
pub struct MatchTable {
    /// Name for diagnostics.
    pub name: String,
    /// Key columns.
    pub keys: Vec<MatchKey>,
    /// Rows, evaluated in order (first match wins).
    pub entries: Vec<MatchEntry>,
}

impl MatchTable {
    /// Looks up `ctx`, returning the first matching entry.
    pub fn lookup(&self, ctx: &DispatchCtx) -> Option<&MatchEntry> {
        let key_vals: Vec<u64> = self.keys.iter().map(|k| k.extract(ctx)).collect();
        self.entries.iter().find(|e| e.values == key_vals)
    }
}

/// The packet fields the match stage can key on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchCtx {
    /// λ-NIC workload id (0 when the header is absent).
    pub workload_id: u32,
    /// UDP destination port.
    pub dst_port: u16,
    /// IPv4 destination address bits.
    pub dst_ip: u32,
    /// Whether the packet carried a λ-NIC header.
    pub has_lambda_hdr: bool,
}

/// The outcome of running the match stage over a packet.
#[derive(Clone, Debug, PartialEq)]
pub enum DispatchResult {
    /// Run `lambdas[i]` with the given match data.
    Invoke {
        /// Index into [`Program::lambdas`].
        lambda: usize,
        /// Match-data parameters.
        params: Vec<u64>,
    },
    /// Forward to the host OS (Listing 3's `send_pkt_to_host`).
    ToHost,
}

/// A complete Match+Lambda program.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// The lambdas.
    pub lambdas: Vec<Lambda>,
    /// Shared-library functions produced by lambda coalescing; empty in
    /// naive programs.
    pub shared: Vec<Function>,
    /// Match-stage tables, evaluated in order.
    pub tables: Vec<MatchTable>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a lambda together with the two tables a naive build emits for
    /// it: a dispatch entry and a per-lambda route-management table (the
    /// duplicated state that *match reduction* later merges, §5.1/§6.4).
    pub fn add_lambda(&mut self, lambda: Lambda, route_params: Vec<u64>) -> usize {
        let idx = self.lambdas.len();
        let id = lambda.id;
        self.lambdas.push(lambda);
        self.tables.push(MatchTable {
            name: format!("dispatch_{id}"),
            keys: vec![MatchKey::WorkloadId],
            entries: vec![MatchEntry {
                values: vec![id.0 as u64],
                action: MatchAction::Invoke {
                    lambda: idx,
                    params: vec![],
                },
            }],
        });
        self.tables.push(MatchTable {
            name: format!("route_{id}"),
            keys: vec![MatchKey::WorkloadId],
            entries: vec![MatchEntry {
                values: vec![id.0 as u64],
                action: MatchAction::Invoke {
                    lambda: idx,
                    params: route_params,
                },
            }],
        });
        idx
    }

    /// Runs the match stage: consults tables in order; the first
    /// `dispatch` hit selects the lambda and the route tables supply its
    /// match data. Packets without a λ-NIC header, or with an unknown id,
    /// go to the host (Listing 3).
    pub fn dispatch(&self, ctx: &DispatchCtx) -> DispatchResult {
        if !ctx.has_lambda_hdr {
            return DispatchResult::ToHost;
        }
        let mut selected: Option<usize> = None;
        let mut params: Vec<u64> = Vec::new();
        for table in &self.tables {
            if let Some(entry) = table.lookup(ctx) {
                match &entry.action {
                    MatchAction::Invoke {
                        lambda,
                        params: entry_params,
                    } => {
                        if selected.is_none() {
                            selected = Some(*lambda);
                        }
                        if selected == Some(*lambda) && !entry_params.is_empty() {
                            params = entry_params.clone();
                        }
                    }
                    MatchAction::SendToHost => return DispatchResult::ToHost,
                }
            }
        }
        match selected {
            Some(lambda) => DispatchResult::Invoke { lambda, params },
            None => DispatchResult::ToHost,
        }
    }

    /// Finds a lambda index by workload id.
    pub fn lambda_by_id(&self, id: WorkloadId) -> Option<usize> {
        self.lambdas.iter().position(|l| l.id == id)
    }

    /// Validates structural well-formedness; see [`ValidateError`].
    ///
    /// # Errors
    ///
    /// Returns the first violation found: out-of-range registers, branch
    /// targets, object or function references, recursion (unsupported on
    /// NPUs, §3.1b), bad match arity, or duplicate workload ids.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let mut seen_ids = HashSet::new();
        for l in &self.lambdas {
            if !seen_ids.insert(l.id) {
                return Err(ValidateError::DuplicateWorkloadId(l.id));
            }
        }
        for (li, lambda) in self.lambdas.iter().enumerate() {
            for (fi, function) in lambda.functions.iter().enumerate() {
                self.validate_function(li, fi, function, lambda)?;
            }
        }
        for (si, function) in self.shared.iter().enumerate() {
            // Shared functions may not call lambda-local functions (their
            // meaning must be lambda-independent up to object indices).
            for instr in &function.body {
                if let Instr::Call {
                    func: FuncRef::Local(_),
                } = instr
                {
                    return Err(ValidateError::SharedFunctionCallsLocal { shared: si as u16 });
                }
            }
            self.validate_body(&function.body, None, si)?;
        }
        // Shared functions resolve object ids against the *calling*
        // lambda; every caller must declare compatible objects.
        for (li, lambda) in self.lambdas.iter().enumerate() {
            for si in self.reachable_shared(lambda) {
                for instr in &self.shared[si as usize].body {
                    for (obj, _) in instr.objects() {
                        if obj.0 as usize >= lambda.objects.len() {
                            return Err(ValidateError::SharedObjectMissing {
                                lambda: li,
                                shared: si,
                                obj,
                            });
                        }
                    }
                }
            }
        }
        for lambda in &self.lambdas {
            self.check_no_recursion(lambda)?;
        }
        for table in &self.tables {
            for entry in &table.entries {
                if entry.values.len() != table.keys.len() {
                    return Err(ValidateError::MatchArity {
                        table: table.name.clone(),
                    });
                }
                if let MatchAction::Invoke { lambda, .. } = entry.action {
                    if lambda >= self.lambdas.len() {
                        return Err(ValidateError::BadLambdaRef {
                            table: table.name.clone(),
                            lambda,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_function(
        &self,
        li: usize,
        fi: usize,
        function: &Function,
        lambda: &Lambda,
    ) -> Result<(), ValidateError> {
        for (pc, instr) in function.body.iter().enumerate() {
            let loc = Loc {
                lambda: li,
                function: fi,
                pc,
            };
            for r in instr.reads() {
                if r as usize >= NUM_REGISTERS {
                    return Err(ValidateError::BadRegister { loc, reg: r });
                }
            }
            if let Some(w) = instr.writes() {
                if w as usize >= NUM_REGISTERS {
                    return Err(ValidateError::BadRegister { loc, reg: w });
                }
            }
            for (obj, _) in instr.objects() {
                if obj.0 as usize >= lambda.objects.len() {
                    return Err(ValidateError::BadObject { loc, obj });
                }
            }
            match *instr {
                Instr::Branch { target, .. } | Instr::Jump { target }
                    if target as usize >= function.body.len() =>
                {
                    return Err(ValidateError::BadBranchTarget { loc, target });
                }
                Instr::Call { func } => match func {
                    FuncRef::Local(i) => {
                        if i as usize >= lambda.functions.len() {
                            return Err(ValidateError::BadFunctionRef { loc });
                        }
                    }
                    FuncRef::Shared(i) => {
                        if i as usize >= self.shared.len() {
                            return Err(ValidateError::BadFunctionRef { loc });
                        }
                    }
                },
                _ => {}
            }
        }
        match function.body.last() {
            Some(i) if i.is_terminator() => Ok(()),
            _ => Err(ValidateError::MissingTerminator {
                lambda: li,
                function: fi,
            }),
        }
    }

    /// Validation used for shared functions (no lambda context).
    fn validate_body(
        &self,
        body: &[Instr],
        _lambda: Option<&Lambda>,
        si: usize,
    ) -> Result<(), ValidateError> {
        for instr in body {
            if let Instr::Branch { target, .. } | Instr::Jump { target } = *instr {
                if target as usize >= body.len() {
                    return Err(ValidateError::BadBranchTarget {
                        loc: Loc {
                            lambda: usize::MAX,
                            function: si,
                            pc: 0,
                        },
                        target,
                    });
                }
            }
        }
        match body.last() {
            Some(i) if i.is_terminator() => Ok(()),
            _ => Err(ValidateError::MissingTerminator {
                lambda: usize::MAX,
                function: si,
            }),
        }
    }

    /// Shared-function indices reachable from a lambda's local functions
    /// (including shared-to-shared calls).
    pub fn reachable_shared(&self, lambda: &Lambda) -> Vec<u16> {
        let mut seen = Vec::new();
        let mut stack: Vec<u16> = lambda
            .instrs()
            .filter_map(|i| match i {
                Instr::Call {
                    func: FuncRef::Shared(s),
                } => Some(*s),
                _ => None,
            })
            .collect();
        while let Some(s) = stack.pop() {
            if seen.contains(&s) || s as usize >= self.shared.len() {
                continue;
            }
            seen.push(s);
            for instr in &self.shared[s as usize].body {
                if let Instr::Call {
                    func: FuncRef::Shared(t),
                } = *instr
                {
                    stack.push(t);
                }
            }
        }
        seen.sort_unstable();
        seen
    }

    /// Rejects call cycles: NPUs have no stack for recursion (§3.1b).
    fn check_no_recursion(&self, lambda: &Lambda) -> Result<(), ValidateError> {
        // DFS over local call edges (shared functions cannot call local
        // ones, and shared→shared calls are checked per shared function).
        fn visit(lambda: &Lambda, f: u16, visiting: &mut Vec<bool>, done: &mut Vec<bool>) -> bool {
            if done[f as usize] {
                return true;
            }
            if visiting[f as usize] {
                return false; // cycle
            }
            visiting[f as usize] = true;
            for instr in &lambda.functions[f as usize].body {
                if let Instr::Call {
                    func: FuncRef::Local(callee),
                } = *instr
                {
                    if !visit(lambda, callee, visiting, done) {
                        return false;
                    }
                }
            }
            visiting[f as usize] = false;
            done[f as usize] = true;
            true
        }
        let n = lambda.functions.len();
        let mut visiting = vec![false; n];
        let mut done = vec![false; n];
        for f in 0..n as u16 {
            if !visit(lambda, f, &mut visiting, &mut done) {
                return Err(ValidateError::Recursion {
                    lambda: lambda.name.clone(),
                });
            }
        }
        Ok(())
    }
}

/// Location of a validation failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Loc {
    /// Lambda index (`usize::MAX` for shared functions).
    pub lambda: usize,
    /// Function index.
    pub function: usize,
    /// Instruction index.
    pub pc: usize,
}

/// Structural validation errors.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidateError {
    /// A register index exceeds [`NUM_REGISTERS`].
    BadRegister {
        /// Where.
        loc: Loc,
        /// The offending register.
        reg: u8,
    },
    /// An object reference is out of range.
    BadObject {
        /// Where.
        loc: Loc,
        /// The offending object id.
        obj: ObjId,
    },
    /// A branch or jump target is out of range.
    BadBranchTarget {
        /// Where.
        loc: Loc,
        /// The offending target.
        target: u32,
    },
    /// A call references a missing function.
    BadFunctionRef {
        /// Where.
        loc: Loc,
    },
    /// A function does not end in a terminator.
    MissingTerminator {
        /// Lambda index (`usize::MAX` for shared).
        lambda: usize,
        /// Function index.
        function: usize,
    },
    /// The local call graph contains a cycle.
    Recursion {
        /// The offending lambda.
        lambda: String,
    },
    /// A match entry's value arity differs from the table's key arity.
    MatchArity {
        /// The offending table.
        table: String,
    },
    /// A match entry invokes a non-existent lambda.
    BadLambdaRef {
        /// The offending table.
        table: String,
        /// The dangling index.
        lambda: usize,
    },
    /// Two lambdas share a workload id.
    DuplicateWorkloadId(WorkloadId),
    /// A lambda calls a shared function that references an object the
    /// lambda does not declare.
    SharedObjectMissing {
        /// The calling lambda.
        lambda: usize,
        /// The shared function.
        shared: u16,
        /// The missing object.
        obj: ObjId,
    },
    /// A shared function calls a lambda-local function.
    SharedFunctionCallsLocal {
        /// Shared function index.
        shared: u16,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadRegister { loc, reg } => {
                write!(f, "register r{reg} out of range at {loc:?}")
            }
            ValidateError::BadObject { loc, obj } => {
                write!(f, "unknown object {obj} at {loc:?}")
            }
            ValidateError::BadBranchTarget { loc, target } => {
                write!(f, "branch target {target} out of range at {loc:?}")
            }
            ValidateError::BadFunctionRef { loc } => {
                write!(f, "call to unknown function at {loc:?}")
            }
            ValidateError::MissingTerminator { lambda, function } => write!(
                f,
                "function {function} of lambda {lambda} does not end in jump/ret"
            ),
            ValidateError::Recursion { lambda } => {
                write!(
                    f,
                    "recursion detected in lambda {lambda} (unsupported on NPUs)"
                )
            }
            ValidateError::MatchArity { table } => {
                write!(f, "match entry arity mismatch in table {table}")
            }
            ValidateError::BadLambdaRef { table, lambda } => {
                write!(f, "table {table} references unknown lambda {lambda}")
            }
            ValidateError::DuplicateWorkloadId(id) => {
                write!(f, "duplicate workload id {id}")
            }
            ValidateError::SharedObjectMissing {
                lambda,
                shared,
                obj,
            } => write!(
                f,
                "lambda {lambda} calls shared function {shared} but lacks object {obj}"
            ),
            ValidateError::SharedFunctionCallsLocal { shared } => {
                write!(f, "shared function {shared} calls a lambda-local function")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AluOp, Cmp};

    fn ret_fn() -> Function {
        Function::new("entry", vec![Instr::Const { dst: 0, value: 0 }, Instr::Ret])
    }

    #[test]
    fn add_lambda_emits_dispatch_and_route_tables() {
        let mut p = Program::new();
        p.add_lambda(Lambda::new("w", WorkloadId(5), ret_fn()), vec![42]);
        assert_eq!(p.tables.len(), 2);
        let ctx = DispatchCtx {
            workload_id: 5,
            has_lambda_hdr: true,
            ..Default::default()
        };
        assert_eq!(
            p.dispatch(&ctx),
            DispatchResult::Invoke {
                lambda: 0,
                params: vec![42]
            }
        );
    }

    #[test]
    fn dispatch_unknown_id_goes_to_host() {
        let mut p = Program::new();
        p.add_lambda(Lambda::new("w", WorkloadId(5), ret_fn()), vec![]);
        let ctx = DispatchCtx {
            workload_id: 99,
            has_lambda_hdr: true,
            ..Default::default()
        };
        assert_eq!(p.dispatch(&ctx), DispatchResult::ToHost);
        let no_hdr = DispatchCtx::default();
        assert_eq!(p.dispatch(&no_hdr), DispatchResult::ToHost);
    }

    #[test]
    fn validate_accepts_well_formed() {
        let mut p = Program::new();
        let mut l = Lambda::new("w", WorkloadId(1), ret_fn());
        let obj = l.add_object(MemObject::zeroed("buf", 64));
        let helper = l.add_function(Function::new(
            "helper",
            vec![
                Instr::Load {
                    dst: 1,
                    obj,
                    addr: 2,
                    width: crate::ir::Width::B4,
                },
                Instr::Ret,
            ],
        ));
        l.functions[0].body.insert(
            0,
            Instr::Call {
                func: FuncRef::Local(helper),
            },
        );
        p.add_lambda(l, vec![]);
        p.validate().expect("well-formed program validates");
    }

    #[test]
    fn validate_rejects_bad_register() {
        let mut p = Program::new();
        let f = Function::new(
            "entry",
            vec![Instr::Const { dst: 200, value: 0 }, Instr::Ret],
        );
        p.add_lambda(Lambda::new("w", WorkloadId(1), f), vec![]);
        assert!(matches!(
            p.validate(),
            Err(ValidateError::BadRegister { reg: 200, .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_object_and_target() {
        let mut p = Program::new();
        let f = Function::new(
            "entry",
            vec![
                Instr::Load {
                    dst: 0,
                    obj: ObjId(3),
                    addr: 1,
                    width: crate::ir::Width::B1,
                },
                Instr::Ret,
            ],
        );
        p.add_lambda(Lambda::new("w", WorkloadId(1), f), vec![]);
        assert!(matches!(p.validate(), Err(ValidateError::BadObject { .. })));

        let mut p2 = Program::new();
        let f2 = Function::new(
            "entry",
            vec![
                Instr::Branch {
                    cmp: Cmp::Eq,
                    a: 0,
                    b: 0,
                    target: 99,
                },
                Instr::Ret,
            ],
        );
        p2.add_lambda(Lambda::new("w", WorkloadId(1), f2), vec![]);
        assert!(matches!(
            p2.validate(),
            Err(ValidateError::BadBranchTarget { target: 99, .. })
        ));
    }

    #[test]
    fn validate_rejects_recursion() {
        let mut p = Program::new();
        let mut l = Lambda::new("w", WorkloadId(1), ret_fn());
        // helper calls itself.
        let idx = l.functions.len() as u16;
        l.add_function(Function::new(
            "rec",
            vec![
                Instr::Call {
                    func: FuncRef::Local(idx),
                },
                Instr::Ret,
            ],
        ));
        p.add_lambda(l, vec![]);
        assert!(matches!(p.validate(), Err(ValidateError::Recursion { .. })));
    }

    #[test]
    fn validate_rejects_mutual_recursion() {
        let mut p = Program::new();
        let mut l = Lambda::new("w", WorkloadId(1), ret_fn());
        // f1 <-> f2
        l.add_function(Function::new(
            "f1",
            vec![
                Instr::Call {
                    func: FuncRef::Local(2),
                },
                Instr::Ret,
            ],
        ));
        l.add_function(Function::new(
            "f2",
            vec![
                Instr::Call {
                    func: FuncRef::Local(1),
                },
                Instr::Ret,
            ],
        ));
        p.add_lambda(l, vec![]);
        assert!(matches!(p.validate(), Err(ValidateError::Recursion { .. })));
    }

    #[test]
    fn validate_rejects_missing_terminator() {
        let mut p = Program::new();
        let f = Function::new("entry", vec![Instr::Const { dst: 0, value: 0 }]);
        p.add_lambda(Lambda::new("w", WorkloadId(1), f), vec![]);
        assert!(matches!(
            p.validate(),
            Err(ValidateError::MissingTerminator { .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicate_ids() {
        let mut p = Program::new();
        p.add_lambda(Lambda::new("a", WorkloadId(1), ret_fn()), vec![]);
        p.add_lambda(Lambda::new("b", WorkloadId(1), ret_fn()), vec![]);
        assert_eq!(
            p.validate(),
            Err(ValidateError::DuplicateWorkloadId(WorkloadId(1)))
        );
    }

    #[test]
    fn shared_function_object_compat_checked_per_caller() {
        let mut p = Program::new();
        // Lambda without objects calls a shared function that stores to
        // obj 0: rejected.
        let mut l = Lambda::new("a", WorkloadId(1), ret_fn());
        l.functions[0].body.insert(
            0,
            Instr::Call {
                func: FuncRef::Shared(0),
            },
        );
        p.add_lambda(l, vec![]);
        p.shared.push(Function::new(
            "touches",
            vec![
                Instr::Store {
                    obj: ObjId(0),
                    addr: 0,
                    src: 1,
                    width: crate::ir::Width::B1,
                },
                Instr::Ret,
            ],
        ));
        assert!(matches!(
            p.validate(),
            Err(ValidateError::SharedObjectMissing { .. })
        ));
        // Give the lambda a compatible object: accepted.
        p.lambdas[0].add_object(MemObject::zeroed("buf", 8));
        p.validate().expect("compatible caller validates");
        // An *unreferenced* shared function with object refs is fine even
        // if no lambda declares objects.
        let mut p2 = Program::new();
        p2.add_lambda(Lambda::new("a", WorkloadId(1), ret_fn()), vec![]);
        p2.shared.push(Function::new(
            "orphan",
            vec![
                Instr::Store {
                    obj: ObjId(3),
                    addr: 0,
                    src: 1,
                    width: crate::ir::Width::B1,
                },
                Instr::Ret,
            ],
        ));
        p2.validate().expect("unreachable shared function is fine");
    }

    #[test]
    fn lambda_used_header_fields() {
        let f = Function::new(
            "entry",
            vec![
                Instr::LoadHdr {
                    dst: 1,
                    field: HeaderField::SrcPort,
                },
                Instr::AluImm {
                    op: AluOp::Add,
                    dst: 1,
                    a: 1,
                    imm: 1,
                },
                Instr::Ret,
            ],
        );
        let l = Lambda::new("w", WorkloadId(1), f);
        let used = l.used_header_fields();
        assert!(used.contains(&HeaderField::SrcPort));
        assert_eq!(used.len(), 1);
    }
}
