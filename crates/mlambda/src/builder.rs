//! An ergonomic assembler for authoring Match+Lambda functions.
//!
//! Hand-writing `Vec<Instr>` with numeric branch targets is error-prone;
//! [`FnBuilder`] provides named labels with backpatching so the workloads
//! crate can express lambdas readably.
//!
//! # Examples
//!
//! ```
//! use lnic_mlambda::builder::FnBuilder;
//! use lnic_mlambda::ir::{AluOp, Cmp, Width};
//!
//! // Emit payload_len * 2 as a 4-byte value.
//! let f = FnBuilder::new("double")
//!     .load_payload_len(1)
//!     .alu_imm(AluOp::Mul, 1, 1, 2)
//!     .emit(1, Width::B4)
//!     .ret_const(0)
//!     .build();
//! assert_eq!(f.name, "double");
//! ```

use std::collections::HashMap;

use crate::ir::{AluOp, Cmp, FuncRef, Function, HeaderField, Instr, ObjId, Reg, Width};

/// A named jump target within a function being built.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds one [`Function`] with symbolic labels.
#[derive(Debug)]
pub struct FnBuilder {
    name: String,
    body: Vec<Instr>,
    /// Label definitions: label -> instruction index.
    defs: HashMap<Label, u32>,
    /// Uses awaiting backpatch: instruction index -> label.
    uses: Vec<(usize, Label)>,
    next_label: usize,
}

impl FnBuilder {
    /// Starts building a function.
    pub fn new(name: impl Into<String>) -> Self {
        FnBuilder {
            name: name.into(),
            body: Vec::new(),
            defs: HashMap::new(),
            uses: Vec::new(),
            next_label: 0,
        }
    }

    /// Allocates a fresh, not-yet-placed label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Places `label` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn place(mut self, label: Label) -> Self {
        let prev = self.defs.insert(label, self.body.len() as u32);
        assert!(prev.is_none(), "label placed twice");
        self
    }

    /// Appends a raw instruction.
    pub fn instr(mut self, i: Instr) -> Self {
        self.body.push(i);
        self
    }

    /// `r[dst] = value`
    pub fn constant(self, dst: Reg, value: u64) -> Self {
        self.instr(Instr::Const { dst, value })
    }

    /// `r[dst] = r[src]`
    pub fn mov(self, dst: Reg, src: Reg) -> Self {
        self.instr(Instr::Mov { dst, src })
    }

    /// `r[dst] = r[a] op r[b]`
    pub fn alu(self, op: AluOp, dst: Reg, a: Reg, b: Reg) -> Self {
        self.instr(Instr::Alu { op, dst, a, b })
    }

    /// `r[dst] = r[a] op imm`
    pub fn alu_imm(self, op: AluOp, dst: Reg, a: Reg, imm: u64) -> Self {
        self.instr(Instr::AluImm { op, dst, a, imm })
    }

    /// `r[dst] = headers[field]`
    pub fn load_hdr(self, dst: Reg, field: HeaderField) -> Self {
        self.instr(Instr::LoadHdr { dst, field })
    }

    /// `r[dst] = payload length`
    pub fn load_payload_len(self, dst: Reg) -> Self {
        self.load_hdr(dst, HeaderField::PayloadLen)
    }

    /// `r[dst] = match_data[idx]`
    pub fn load_match_data(self, dst: Reg, idx: u8) -> Self {
        self.instr(Instr::LoadMatchData { dst, idx })
    }

    /// Scalar object load.
    pub fn load(self, dst: Reg, obj: ObjId, addr: Reg, width: Width) -> Self {
        self.instr(Instr::Load {
            dst,
            obj,
            addr,
            width,
        })
    }

    /// Scalar object store.
    pub fn store(self, obj: ObjId, addr: Reg, src: Reg, width: Width) -> Self {
        self.instr(Instr::Store {
            obj,
            addr,
            src,
            width,
        })
    }

    /// Scalar payload load.
    pub fn load_payload(self, dst: Reg, addr: Reg, width: Width) -> Self {
        self.instr(Instr::LoadPayload { dst, addr, width })
    }

    /// Appends register bytes to the response.
    pub fn emit(self, src: Reg, width: Width) -> Self {
        self.instr(Instr::Emit { src, width })
    }

    /// Appends object bytes to the response.
    pub fn emit_obj(self, obj: ObjId, off: Reg, len: Reg) -> Self {
        self.instr(Instr::EmitObj { obj, off, len })
    }

    /// Copies payload bytes into an object.
    pub fn payload_to_obj(self, obj: ObjId, src_off: Reg, dst_off: Reg, len: Reg) -> Self {
        self.instr(Instr::PayloadToObj {
            obj,
            src_off,
            dst_off,
            len,
        })
    }

    /// Conditional branch to `label`.
    pub fn branch(mut self, cmp: Cmp, a: Reg, b: Reg, label: Label) -> Self {
        self.uses.push((self.body.len(), label));
        self.body.push(Instr::Branch {
            cmp,
            a,
            b,
            target: u32::MAX,
        });
        self
    }

    /// Unconditional jump to `label`.
    pub fn jump(mut self, label: Label) -> Self {
        self.uses.push((self.body.len(), label));
        self.body.push(Instr::Jump { target: u32::MAX });
        self
    }

    /// Calls a lambda-local function.
    pub fn call_local(self, func: u16) -> Self {
        self.instr(Instr::Call {
            func: FuncRef::Local(func),
        })
    }

    /// Issues a network RPC (see [`Instr::NetRpc`]).
    #[allow(clippy::too_many_arguments)]
    pub fn net_rpc(
        self,
        service: u16,
        req_obj: ObjId,
        req_off: Reg,
        req_len: Reg,
        resp_obj: ObjId,
        resp_off: Reg,
        resp_cap: Reg,
        resp_len_dst: Reg,
    ) -> Self {
        self.instr(Instr::NetRpc {
            service,
            req_obj,
            req_off,
            req_len,
            resp_obj,
            resp_off,
            resp_cap,
            resp_len_dst,
        })
    }

    /// Returns with `r0` unchanged.
    pub fn ret(self) -> Self {
        self.instr(Instr::Ret)
    }

    /// Sets `r0 = code` and returns.
    pub fn ret_const(self, code: u64) -> Self {
        self.constant(crate::ir::RET_REG, code).ret()
    }

    /// Finishes the function, backpatching all label uses.
    ///
    /// # Panics
    ///
    /// Panics if any used label was never placed.
    pub fn build(self) -> Function {
        let mut body = self.body;
        for (idx, label) in self.uses {
            let target = *self
                .defs
                .get(&label)
                .unwrap_or_else(|| panic!("label {label:?} used but never placed"));
            match &mut body[idx] {
                Instr::Branch { target: t, .. } | Instr::Jump { target: t } => *t = target,
                other => unreachable!("label use recorded on non-branch {other:?}"),
            }
        }
        Function::new(self.name, body)
    }
}

/// Builds a counted loop: `for i in 0..r[count]` running `body` with the
/// loop index in `idx_reg`. `scratch` must differ from `idx_reg`.
///
/// This is a convenience for the common memcpy/transform loops in the
/// benchmark lambdas.
pub fn counted_loop(
    mut b: FnBuilder,
    idx_reg: Reg,
    count_reg: Reg,
    body: impl FnOnce(FnBuilder) -> FnBuilder,
) -> FnBuilder {
    let head = b.label();
    let exit = b.label();
    b = b
        .constant(idx_reg, 0)
        .place(head)
        .branch(Cmp::Ge, idx_reg, count_reg, exit);
    b = body(b);
    b.alu_imm(AluOp::Add, idx_reg, idx_reg, 1)
        .jump(head)
        .place(exit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_to_completion, ObjectMemory, RequestCtx};
    use crate::program::{Lambda, MemObject, Program, WorkloadId};
    use bytes::Bytes;

    fn run_one(entry: Function, objects: Vec<MemObject>, ctx: RequestCtx) -> Bytes {
        let mut l = Lambda::new("t", WorkloadId(1), entry);
        for o in objects {
            l.add_object(o);
        }
        let mut p = Program::new();
        p.add_lambda(l, vec![]);
        p.validate().expect("valid");
        let p = std::sync::Arc::new(p);
        let mut mem = ObjectMemory::for_lambda(&p.lambdas[0]);
        run_to_completion(&p, 0, ctx, &mut mem, 1_000_000, |_, _| Bytes::new())
            .expect("completes")
            .response
    }

    #[test]
    fn labels_backpatch_forward_and_backward() {
        // Sum 0..5 via a backward loop label and a forward exit label.
        let mut b = FnBuilder::new("sum");
        let head = b.label();
        let exit = b.label();
        let f = b
            .constant(1, 0) // i
            .constant(2, 5) // n
            .constant(3, 0) // acc
            .place(head)
            .branch(Cmp::Ge, 1, 2, exit)
            .alu(AluOp::Add, 3, 3, 1)
            .alu_imm(AluOp::Add, 1, 1, 1)
            .jump(head)
            .place(exit)
            .emit(3, Width::B1)
            .ret_const(0)
            .build();
        let out = run_one(f, vec![], RequestCtx::default());
        assert_eq!(&out[..], &[10]);
    }

    #[test]
    fn counted_loop_helper_runs_body_n_times() {
        let b = FnBuilder::new("loop").constant(2, 4).constant(3, 0);
        let b = counted_loop(b, 1, 2, |b| b.alu_imm(AluOp::Add, 3, 3, 2));
        let f = b.emit(3, Width::B1).ret_const(0).build();
        let out = run_one(f, vec![], RequestCtx::default());
        assert_eq!(&out[..], &[8]);
    }

    #[test]
    #[should_panic(expected = "used but never placed")]
    fn unplaced_label_panics() {
        let mut b = FnBuilder::new("bad");
        let l = b.label();
        let _ = b.jump(l).ret().build();
    }

    #[test]
    #[should_panic(expected = "label placed twice")]
    fn double_place_panics() {
        let mut b = FnBuilder::new("bad");
        let l = b.label();
        let _ = b.place(l).place(l);
    }

    #[test]
    fn emit_obj_via_builder() {
        let f = FnBuilder::new("web")
            .constant(1, 0)
            .constant(2, 3)
            .emit_obj(ObjId(0), 1, 2)
            .ret_const(0)
            .build();
        let out = run_one(
            f,
            vec![MemObject::with_data("c", b"abc".to_vec())],
            RequestCtx::default(),
        );
        assert_eq!(&out[..], b"abc");
    }
}
