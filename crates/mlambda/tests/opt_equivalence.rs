//! Property-based semantics-preservation tests for the compiler.
//!
//! Generates random, valid, terminating Match+Lambda programs and checks
//! that the optimization pipeline (dead-code elimination, lambda
//! coalescing, match reduction, memory stratification) never changes
//! observable behaviour: response bytes, return code, dispatch decisions,
//! and final lambda memory are identical between the naive and optimized
//! builds.

use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;

use lnic_mlambda::compile::{compile, CompileOptions};
use lnic_mlambda::interp::{run_to_completion, HeaderValues, ObjectMemory, RequestCtx};
use lnic_mlambda::ir::{AluOp, Cmp, Function, HeaderField, Instr, ObjId, Width};
use lnic_mlambda::program::{DispatchCtx, DispatchResult, Lambda, MemObject, Program, WorkloadId};

const OBJ_SIZE: u64 = 64;
const PAYLOAD_LEN: usize = 64;

/// Small generation templates that always materialize into valid,
/// in-bounds, forward-branching code.
#[derive(Clone, Debug)]
enum Template {
    Const {
        dst: u8,
        value: u8,
    },
    Mov {
        dst: u8,
        src: u8,
    },
    Alu {
        op: AluOp,
        dst: u8,
        a: u8,
        b: u8,
    },
    AluImm {
        op: AluOp,
        dst: u8,
        a: u8,
        imm: u8,
    },
    LoadHdr {
        dst: u8,
        field: HeaderField,
    },
    LoadMatch {
        dst: u8,
        idx: u8,
    },
    ObjLoad {
        obj: u16,
        off: u8,
        dst: u8,
        width: Width,
    },
    ObjStore {
        obj: u16,
        off: u8,
        src: u8,
        width: Width,
    },
    PayloadLoad {
        off: u8,
        dst: u8,
        width: Width,
    },
    Emit {
        src: u8,
        width: Width,
    },
    EmitObj {
        obj: u16,
        off: u8,
        len: u8,
    },
    BranchFwd {
        cmp: Cmp,
        a: u8,
        b: u8,
        skip: u8,
    },
    CallHelper {
        idx: u8,
    },
    EarlyRet {
        code: u8,
    },
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::B1),
        Just(Width::B2),
        Just(Width::B4),
        Just(Width::B8)
    ]
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Div),
        Just(AluOp::Mod),
    ]
}

fn arb_cmp() -> impl Strategy<Value = Cmp> {
    prop_oneof![Just(Cmp::Eq), Just(Cmp::Ne), Just(Cmp::Lt), Just(Cmp::Ge)]
}

fn arb_field() -> impl Strategy<Value = HeaderField> {
    prop_oneof![
        Just(HeaderField::WorkloadId),
        Just(HeaderField::RequestId),
        Just(HeaderField::SrcPort),
        Just(HeaderField::DstPort),
        Just(HeaderField::SrcIp),
        Just(HeaderField::PayloadLen),
    ]
}

/// Registers 1..=8 (r0 is the return-code register).
fn reg() -> impl Strategy<Value = u8> {
    1u8..=8
}

fn arb_template(n_helpers: u8) -> impl Strategy<Value = Template> {
    let call = if n_helpers > 0 {
        (1u8..=n_helpers).boxed()
    } else {
        Just(1u8).boxed()
    };
    prop_oneof![
        (reg(), any::<u8>()).prop_map(|(dst, value)| Template::Const { dst, value }),
        (reg(), reg()).prop_map(|(dst, src)| Template::Mov { dst, src }),
        (arb_alu(), reg(), reg(), reg()).prop_map(|(op, dst, a, b)| Template::Alu {
            op,
            dst,
            a,
            b
        }),
        (arb_alu(), reg(), reg(), any::<u8>()).prop_map(|(op, dst, a, imm)| Template::AluImm {
            op,
            dst,
            a,
            imm
        }),
        (reg(), arb_field()).prop_map(|(dst, field)| Template::LoadHdr { dst, field }),
        (reg(), 0u8..4).prop_map(|(dst, idx)| Template::LoadMatch { dst, idx }),
        (0u16..2, 0u8..32, reg(), arb_width()).prop_map(|(obj, off, dst, width)| {
            Template::ObjLoad {
                obj,
                off,
                dst,
                width,
            }
        }),
        (0u16..2, 0u8..32, reg(), arb_width()).prop_map(|(obj, off, src, width)| {
            Template::ObjStore {
                obj,
                off,
                src,
                width,
            }
        }),
        (0u8..32, reg(), arb_width()).prop_map(|(off, dst, width)| Template::PayloadLoad {
            off,
            dst,
            width
        }),
        (reg(), arb_width()).prop_map(|(src, width)| Template::Emit { src, width }),
        (0u16..2, 0u8..24, 1u8..24).prop_map(|(obj, off, len)| Template::EmitObj { obj, off, len }),
        (arb_cmp(), reg(), reg(), 1u8..4).prop_map(|(cmp, a, b, skip)| Template::BranchFwd {
            cmp,
            a,
            b,
            skip
        }),
        call.prop_map(|idx| Template::CallHelper { idx }),
        (0u8..4).prop_map(|code| Template::EarlyRet { code }),
    ]
}

/// Materializes templates into instruction groups with forward-only,
/// group-aligned branch targets, then appends a terminator.
fn materialize(templates: &[Template], n_helpers: u8) -> Vec<Instr> {
    let mut groups: Vec<Vec<Instr>> = Vec::new();
    let mut branches: Vec<(usize, u8)> = Vec::new(); // (group idx, skip)
    for t in templates {
        let group = match *t {
            Template::Const { dst, value } => vec![Instr::Const {
                dst,
                value: value as u64,
            }],
            Template::Mov { dst, src } => vec![Instr::Mov { dst, src }],
            Template::Alu { op, dst, a, b } => vec![Instr::Alu { op, dst, a, b }],
            Template::AluImm { op, dst, a, imm } => vec![Instr::AluImm {
                op,
                dst,
                a,
                imm: imm as u64,
            }],
            Template::LoadHdr { dst, field } => vec![Instr::LoadHdr { dst, field }],
            Template::LoadMatch { dst, idx } => vec![Instr::LoadMatchData { dst, idx }],
            Template::ObjLoad {
                obj,
                off,
                dst,
                width,
            } => vec![
                Instr::Const {
                    dst: 9,
                    value: off.min((OBJ_SIZE - width.bytes() as u64) as u8) as u64,
                },
                Instr::Load {
                    dst,
                    obj: ObjId(obj),
                    addr: 9,
                    width,
                },
            ],
            Template::ObjStore {
                obj,
                off,
                src,
                width,
            } => vec![
                Instr::Const {
                    dst: 9,
                    value: off.min((OBJ_SIZE - width.bytes() as u64) as u8) as u64,
                },
                Instr::Store {
                    obj: ObjId(obj),
                    addr: 9,
                    src,
                    width,
                },
            ],
            Template::PayloadLoad { off, dst, width } => vec![
                Instr::Const {
                    dst: 9,
                    value: off.min((PAYLOAD_LEN - width.bytes()) as u8) as u64,
                },
                Instr::LoadPayload {
                    dst,
                    addr: 9,
                    width,
                },
            ],
            Template::Emit { src, width } => vec![Instr::Emit { src, width }],
            Template::EmitObj { obj, off, len } => {
                let off = off.min(24);
                let len = len.min((OBJ_SIZE - off as u64) as u8);
                vec![
                    Instr::Const {
                        dst: 10,
                        value: off as u64,
                    },
                    Instr::Const {
                        dst: 11,
                        value: len as u64,
                    },
                    Instr::EmitObj {
                        obj: ObjId(obj),
                        off: 10,
                        len: 11,
                    },
                ]
            }
            Template::BranchFwd { cmp, a, b, skip } => {
                branches.push((groups.len(), skip));
                vec![Instr::Branch {
                    cmp,
                    a,
                    b,
                    target: u32::MAX,
                }]
            }
            Template::CallHelper { idx } => {
                if n_helpers == 0 {
                    vec![Instr::Mov { dst: 1, src: 1 }]
                } else {
                    vec![Instr::Call {
                        func: lnic_mlambda::ir::FuncRef::Local(idx.min(n_helpers) as u16),
                    }]
                }
            }
            Template::EarlyRet { code } => vec![
                Instr::Const {
                    dst: 0,
                    value: code as u64,
                },
                Instr::Ret,
            ],
        };
        groups.push(group);
    }
    // Tail: set return code and return.
    groups.push(vec![Instr::Const { dst: 0, value: 0 }, Instr::Ret]);

    // Compute group offsets, patch branches.
    let mut offsets = Vec::with_capacity(groups.len());
    let mut total = 0u32;
    for g in &groups {
        offsets.push(total);
        total += g.len() as u32;
    }
    for (gidx, skip) in branches {
        let target_group = (gidx + 1 + skip as usize).min(groups.len() - 1);
        let target = offsets[target_group];
        if let Instr::Branch { target: t, .. } = &mut groups[gidx][0] {
            *t = target;
        }
    }
    groups.into_iter().flatten().collect()
}

/// A random straight-line helper body (register-only, shareable or not).
fn arb_helper() -> impl Strategy<Value = Vec<Instr>> {
    proptest::collection::vec(
        prop_oneof![
            (reg(), any::<u8>()).prop_map(|(dst, v)| Instr::Const {
                dst,
                value: v as u64
            }),
            (arb_alu(), reg(), reg(), reg()).prop_map(|(op, dst, a, b)| Instr::Alu {
                op,
                dst,
                a,
                b
            }),
            (reg(), arb_width()).prop_map(|(src, width)| Instr::Emit { src, width }),
        ],
        1..6,
    )
    .prop_map(|mut body| {
        body.push(Instr::Ret);
        body
    })
}

#[derive(Debug, Clone)]
struct ProgramSpec {
    /// Shared helper pool; lambdas reference copies of these.
    helper_pool: Vec<Vec<Instr>>,
    /// Per lambda: (templates, helper indices from the pool, obj inits).
    lambdas: Vec<(Vec<Template>, Vec<u8>, [u8; 2])>,
}

fn arb_program() -> impl Strategy<Value = ProgramSpec> {
    let helpers = proptest::collection::vec(arb_helper(), 0..3);
    helpers.prop_flat_map(|helper_pool| {
        let n = helper_pool.len() as u8;
        let lambda = (
            proptest::collection::vec(arb_template(n.max(1)), 1..24),
            proptest::collection::vec(0u8..n.max(1), n as usize..=n as usize),
            any::<[u8; 2]>(),
        );
        proptest::collection::vec(lambda, 1..4).prop_map(move |lambdas| ProgramSpec {
            helper_pool: helper_pool.clone(),
            lambdas,
        })
    })
}

fn build_program(spec: &ProgramSpec) -> Program {
    let mut p = Program::new();
    for (i, (templates, helper_sel, seeds)) in spec.lambdas.iter().enumerate() {
        let n_helpers = helper_sel.len() as u8;
        let body = materialize(templates, n_helpers);
        let mut lambda = Lambda::new(
            format!("rand{i}"),
            WorkloadId(i as u32 + 1),
            Function::new("entry", body),
        );
        for (oi, seed) in seeds.iter().enumerate() {
            lambda.add_object(MemObject::with_data(
                format!("obj{oi}"),
                (0..OBJ_SIZE as usize)
                    .map(|b| seed.wrapping_add(b as u8))
                    .collect(),
            ));
        }
        for &h in helper_sel {
            lambda.add_function(Function::new(
                format!("helper{h}"),
                spec.helper_pool[h as usize].clone(),
            ));
        }
        p.add_lambda(lambda, vec![i as u64, 42, 7]);
    }
    p
}

fn request() -> RequestCtx {
    RequestCtx {
        headers: HeaderValues {
            workload_id: 1,
            request_id: 0xABCD,
            src_port: 7000,
            dst_port: 8000,
            src_ip: 0x0a000001,
            ..Default::default()
        },
        payload: Bytes::from((0..PAYLOAD_LEN as u8).collect::<Vec<_>>()),
        match_data: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimized build behaves exactly like the naive build for
    /// every lambda of every random program.
    #[test]
    fn optimizations_preserve_semantics(spec in arb_program()) {
        let program = build_program(&spec);
        prop_assume!(program.validate().is_ok());

        let naive = compile(&program, &CompileOptions::naive()).expect("naive compiles");
        let opt = compile(&program, &CompileOptions::optimized()).expect("optimized compiles");
        prop_assert!(opt.instruction_words() <= naive.instruction_words());

        let naive_prog = Arc::new(naive.program.clone());
        let opt_prog = Arc::new(opt.program.clone());

        for li in 0..program.lambdas.len() {
            // Dispatch equivalence for this lambda's id.
            let dctx = DispatchCtx {
                workload_id: li as u32 + 1,
                dst_port: 8000,
                dst_ip: 0x0a000002,
                has_lambda_hdr: true,
            };
            let nd = naive_prog.dispatch(&dctx);
            let od = opt_prog.dispatch(&dctx);
            prop_assert_eq!(&nd, &od, "dispatch diverged for lambda {}", li);
            let DispatchResult::Invoke { lambda, params } = nd else {
                prop_assert!(false, "benchmark ids always dispatch");
                return Ok(());
            };

            let mut ctx = request();
            ctx.match_data = params;

            let mut mem_naive = ObjectMemory::for_lambda(&naive_prog.lambdas[lambda]);
            let mut mem_opt = ObjectMemory::for_lambda(&opt_prog.lambdas[lambda]);
            let serve = |_svc: u16, req: Bytes| -> Bytes { req };
            let dn = run_to_completion(&naive_prog, lambda, ctx.clone(), &mut mem_naive, 200_000, serve)
                .expect("naive run completes");
            let serve = |_svc: u16, req: Bytes| -> Bytes { req };
            let do_ = run_to_completion(&opt_prog, lambda, ctx, &mut mem_opt, 200_000, serve)
                .expect("optimized run completes");

            prop_assert_eq!(&dn.response, &do_.response, "response diverged");
            prop_assert_eq!(dn.return_code, do_.return_code, "return code diverged");
            prop_assert_eq!(
                dn.stats.instrs, do_.stats.instrs,
                "dynamic instruction count diverged"
            );
            for oi in 0..2 {
                prop_assert_eq!(
                    mem_naive.object(oi),
                    mem_opt.object(oi),
                    "object {} memory diverged",
                    oi
                );
            }
        }
    }

    /// Constant folding (the extension pass) also preserves semantics —
    /// responses, return codes, and memory — though it may *reduce* the
    /// dynamic instruction count.
    #[test]
    fn constant_folding_preserves_semantics(spec in arb_program()) {
        let program = build_program(&spec);
        prop_assume!(program.validate().is_ok());

        let mut folded_opts = CompileOptions::optimized();
        folded_opts.fold = true;
        let base = compile(&program, &CompileOptions::naive()).expect("naive compiles");
        let folded = compile(&program, &folded_opts).expect("folded compiles");
        folded.program.validate().expect("folded program validates");

        let base_prog = Arc::new(base.program.clone());
        let folded_prog = Arc::new(folded.program.clone());
        for li in 0..program.lambdas.len() {
            let ctx = request();
            let mut m1 = ObjectMemory::for_lambda(&base_prog.lambdas[li]);
            let mut m2 = ObjectMemory::for_lambda(&folded_prog.lambdas[li]);
            let d1 = run_to_completion(&base_prog, li, ctx.clone(), &mut m1, 200_000, |_s, r| r)
                .expect("base run completes");
            let d2 = run_to_completion(&folded_prog, li, ctx, &mut m2, 200_000, |_s, r| r)
                .expect("folded run completes");
            prop_assert_eq!(&d1.response, &d2.response, "response diverged");
            prop_assert_eq!(d1.return_code, d2.return_code, "return code diverged");
            prop_assert!(
                d2.stats.instrs <= d1.stats.instrs,
                "folding must not add dynamic instructions ({} -> {})",
                d1.stats.instrs,
                d2.stats.instrs
            );
            for oi in 0..2 {
                prop_assert_eq!(m1.object(oi), m2.object(oi), "object {} diverged", oi);
            }
        }
    }

    /// Random programs never fault under the generator's invariants
    /// (forward branches terminate, accesses are in bounds).
    #[test]
    fn random_programs_run_cleanly(spec in arb_program()) {
        let program = build_program(&spec);
        prop_assume!(program.validate().is_ok());
        let program = Arc::new(program);
        for li in 0..program.lambdas.len() {
            let mut mem = ObjectMemory::for_lambda(&program.lambdas[li]);
            let result = run_to_completion(
                &program,
                li,
                request(),
                &mut mem,
                200_000,
                |_s, req| req,
            );
            prop_assert!(result.is_ok(), "lambda {} faulted: {:?}", li, result);
        }
    }
}
