//! Property tests for interpreter memory semantics: stores and loads are
//! big-endian and width-masked, and emission truncates identically.

use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;

use lnic_mlambda::interp::{run_to_completion, ObjectMemory, RequestCtx};
use lnic_mlambda::ir::{Function, Instr, ObjId, Width};
use lnic_mlambda::program::{Lambda, MemObject, Program, WorkloadId};

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::B1),
        Just(Width::B2),
        Just(Width::B4),
        Just(Width::B8)
    ]
}

fn mask(width: Width) -> u64 {
    match width.bytes() {
        8 => u64::MAX,
        n => (1u64 << (n * 8)) - 1,
    }
}

proptest! {
    /// `store w; load w` at the same offset returns `value & mask(w)`,
    /// and the bytes land big-endian in the object.
    #[test]
    fn store_load_roundtrips_with_masking(
        value in any::<u64>(),
        offset in 0u64..56,
        width in arb_width(),
    ) {
        let entry = Function::new(
            "rt",
            vec![
                Instr::Const { dst: 1, value: offset },
                Instr::Const { dst: 2, value },
                Instr::Store { obj: ObjId(0), addr: 1, src: 2, width },
                Instr::Load { dst: 3, obj: ObjId(0), addr: 1, width },
                Instr::Emit { src: 3, width: Width::B8 },
                Instr::Const { dst: 0, value: 0 },
                Instr::Ret,
            ],
        );
        let mut l = Lambda::new("rt", WorkloadId(1), entry);
        l.add_object(MemObject::zeroed("buf", 64));
        let mut p = Program::new();
        p.add_lambda(l, vec![]);
        p.validate().unwrap();
        let p = Arc::new(p);
        let mut mem = ObjectMemory::for_lambda(&p.lambdas[0]);
        let done = run_to_completion(&p, 0, RequestCtx::default(), &mut mem, 1_000, |_, r| r)
            .expect("runs");
        let got = u64::from_be_bytes(done.response[..8].try_into().unwrap());
        prop_assert_eq!(got, value & mask(width));
        // Object bytes are the big-endian truncation at `offset`.
        let expect = &value.to_be_bytes()[8 - width.bytes()..];
        prop_assert_eq!(
            &mem.object(0)[offset as usize..offset as usize + width.bytes()],
            expect
        );
    }

    /// `Emit` appends exactly the low big-endian bytes of the register.
    #[test]
    fn emit_truncates_big_endian(value in any::<u64>(), width in arb_width()) {
        let entry = Function::new(
            "e",
            vec![
                Instr::Const { dst: 1, value },
                Instr::Emit { src: 1, width },
                Instr::Const { dst: 0, value: 0 },
                Instr::Ret,
            ],
        );
        let mut p = Program::new();
        p.add_lambda(Lambda::new("e", WorkloadId(1), entry), vec![]);
        let p = Arc::new(p);
        let mut mem = ObjectMemory::for_lambda(&p.lambdas[0]);
        let done = run_to_completion(&p, 0, RequestCtx::default(), &mut mem, 100, |_, r| r)
            .expect("runs");
        prop_assert_eq!(&done.response[..], &value.to_be_bytes()[8 - width.bytes()..]);
    }

    /// Payload loads read the same big-endian window the packet carries.
    #[test]
    fn payload_load_matches_wire_bytes(
        payload in proptest::collection::vec(any::<u8>(), 8..64),
        width in arb_width(),
        seed in any::<u64>(),
    ) {
        let offset = seed % (payload.len() - width.bytes() + 1) as u64;
        let entry = Function::new(
            "pl",
            vec![
                Instr::Const { dst: 1, value: offset },
                Instr::LoadPayload { dst: 2, addr: 1, width },
                Instr::Emit { src: 2, width },
                Instr::Const { dst: 0, value: 0 },
                Instr::Ret,
            ],
        );
        let mut p = Program::new();
        p.add_lambda(Lambda::new("pl", WorkloadId(1), entry), vec![]);
        let p = Arc::new(p);
        let mut mem = ObjectMemory::for_lambda(&p.lambdas[0]);
        let ctx = RequestCtx {
            payload: Bytes::from(payload.clone()),
            ..Default::default()
        };
        let done = run_to_completion(&p, 0, ctx, &mut mem, 100, |_, r| r).expect("runs");
        prop_assert_eq!(
            &done.response[..],
            &payload[offset as usize..offset as usize + width.bytes()]
        );
    }
}
