//! Property-based tests for the packet wire format.

use bytes::Bytes;
use proptest::prelude::*;

use lnic_net::addr::{Ipv4Addr, MacAddr, SocketAddr};
use lnic_net::packet::{ipv4_checksum, LambdaHdr, LambdaKind, Packet, LAMBDA_MAGIC};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_sock() -> impl Strategy<Value = SocketAddr> {
    (any::<u32>(), any::<u16>())
        .prop_map(|(ip, port)| SocketAddr::new(Ipv4Addr::from_bits(ip), port))
}

fn arb_kind() -> impl Strategy<Value = LambdaKind> {
    prop_oneof![
        Just(LambdaKind::Request),
        Just(LambdaKind::Response),
        Just(LambdaKind::RdmaWrite),
        Just(LambdaKind::RdmaComplete),
    ]
}

fn arb_lambda_hdr() -> impl Strategy<Value = LambdaHdr> {
    (
        any::<u32>(),
        any::<u64>(),
        0u16..64,
        1u16..=64,
        arb_kind(),
        any::<u16>(),
        any::<u64>(),
        any::<u16>(),
        any::<u64>(),
        any::<u32>(),
    )
        .prop_map(
            |(wid, rid, idx, count, kind, rc, dl, depth, epoch, tenant)| LambdaHdr {
                workload_id: wid,
                request_id: rid,
                frag_index: idx.min(count - 1),
                frag_count: count,
                kind,
                return_code: rc,
                deadline_ns: dl,
                queue_depth: depth,
                epoch,
                tenant_id: tenant,
            },
        )
}

/// Payloads that cannot be confused with a lambda header: either shorter
/// than a header or not opening with the magic.
fn arb_plain_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..2048).prop_map(|mut v| {
        if v.len() >= 2 && u16::from_be_bytes([v[0], v[1]]) == LAMBDA_MAGIC {
            v[0] ^= 0xFF;
        }
        v
    })
}

proptest! {
    /// encode ∘ decode is the identity for packets with a lambda header.
    #[test]
    fn lambda_packets_roundtrip(
        src_mac in arb_mac(),
        dst_mac in arb_mac(),
        src in arb_sock(),
        dst in arb_sock(),
        ident in any::<u16>(),
        hdr in arb_lambda_hdr(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let p = Packet::builder()
            .eth(src_mac, dst_mac)
            .udp(src, dst)
            .ident(ident)
            .lambda(hdr)
            .payload(Bytes::from(payload))
            .build();
        let decoded = Packet::decode(&p.encode()).expect("well-formed packets decode");
        prop_assert_eq!(decoded, p);
    }

    /// encode ∘ decode is the identity for plain UDP packets whose
    /// payload does not collide with the lambda magic.
    #[test]
    fn plain_packets_roundtrip(
        src_mac in arb_mac(),
        dst_mac in arb_mac(),
        src in arb_sock(),
        dst in arb_sock(),
        payload in arb_plain_payload(),
    ) {
        let p = Packet::builder()
            .eth(src_mac, dst_mac)
            .udp(src, dst)
            .payload(Bytes::from(payload))
            .build();
        let decoded = Packet::decode(&p.encode()).expect("well-formed packets decode");
        prop_assert_eq!(decoded, p);
    }

    /// Any single corrupted bit inside the IPv4 header is detected (the
    /// ones'-complement checksum catches all 1-bit errors).
    #[test]
    fn single_bit_flip_in_ipv4_header_detected(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        bit in 0usize..(20 * 8),
    ) {
        let p = Packet::builder()
            .eth(MacAddr::from_index(1), MacAddr::from_index(2))
            .udp(
                SocketAddr::new(Ipv4Addr::node(1), 1),
                SocketAddr::new(Ipv4Addr::node(2), 2),
            )
            .payload(Bytes::from(payload))
            .build();
        let mut wire = p.encode().to_vec();
        let byte = 14 + bit / 8;
        wire[byte] ^= 1 << (bit % 8);
        // Either the checksum fails or a field check rejects it; it must
        // never decode into a *different* well-formed packet silently
        // with an intact checksum claim.
        match Packet::decode(&wire) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(decoded, p, "corruption accepted silently"),
        }
    }

    /// The checksum of a correctly-checksummed header verifies to zero.
    #[test]
    fn checksum_self_verifies(data in proptest::collection::vec(any::<u8>(), 20..=20)) {
        let mut hdr = data;
        hdr[10] = 0;
        hdr[11] = 0;
        let csum = ipv4_checksum(&hdr);
        hdr[10..12].copy_from_slice(&csum.to_be_bytes());
        prop_assert_eq!(ipv4_checksum(&hdr), 0);
    }
}
