//! The weakly-consistent request-response transport (§4.2-D3).
//!
//! λ-NIC deliberately avoids TCP: serverless RPCs are independent,
//! mutually-exclusive request-response pairs, so the *sender* (gateway or
//! external service) tracks outstanding requests and retransmits on timeout
//! or loss, and duplicate responses are ignored. [`RpcTracker`] implements
//! that sender-side state machine as a plain library type so both the
//! gateway component and tests can drive it deterministically.

use std::collections::HashMap;

use bytes::Bytes;
use lnic_sim::time::{SimDuration, SimTime};

use crate::addr::SocketAddr;

/// Sender-side record of one in-flight RPC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outstanding {
    /// The targeted lambda.
    pub workload_id: u32,
    /// Where the request was sent.
    pub dst: SocketAddr,
    /// Request payload, kept for retransmission.
    pub payload: Bytes,
    /// When the *first* attempt was sent (latency is measured from here).
    pub first_sent_at: SimTime,
    /// Attempts sent so far (1 = original only).
    pub attempts: u32,
}

/// What the caller should do when a retransmission timer fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimeoutAction {
    /// Resend the recorded payload and arm another timer.
    Resend(Outstanding),
    /// Retry budget exhausted: report failure upstream.
    GiveUp(Outstanding),
    /// The RPC already completed; ignore the stale timer.
    Ignore,
}

/// Sender-side tracker for the weakly-consistent transport.
///
/// # Examples
///
/// ```
/// use lnic_net::transport::{RpcTracker, TimeoutAction};
/// use lnic_net::addr::{Ipv4Addr, SocketAddr};
/// use lnic_sim::time::{SimDuration, SimTime};
/// use bytes::Bytes;
///
/// let mut t = RpcTracker::new(SimDuration::from_millis(1), 3);
/// let dst = SocketAddr::new(Ipv4Addr::node(2), 9000);
/// let id = t.register(SimTime::ZERO, 7, dst, Bytes::from_static(b"req"));
///
/// // The response arrives before the timer: completion returns the record.
/// let done = t.on_response(id).expect("first response completes the RPC");
/// assert_eq!(done.workload_id, 7);
/// // A duplicate response is ignored.
/// assert!(t.on_response(id).is_none());
/// // The stale timer is ignored too.
/// assert_eq!(t.on_timeout(id), TimeoutAction::Ignore);
/// ```
#[derive(Debug)]
pub struct RpcTracker {
    timeout: SimDuration,
    max_attempts: u32,
    next_id: u64,
    outstanding: HashMap<u64, Outstanding>,
    completed: u64,
    retransmitted: u64,
    failed: u64,
    duplicates: u64,
}

impl RpcTracker {
    /// Creates a tracker with the given retransmission `timeout` and a
    /// total attempt budget of `max_attempts` (>= 1).
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn new(timeout: SimDuration, max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        RpcTracker {
            timeout,
            max_attempts,
            next_id: 1,
            outstanding: HashMap::new(),
            completed: 0,
            retransmitted: 0,
            failed: 0,
            duplicates: 0,
        }
    }

    /// The retransmission timeout; the caller arms a timer of this length
    /// after each send.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Registers a new RPC and returns its request id.
    pub fn register(
        &mut self,
        now: SimTime,
        workload_id: u32,
        dst: SocketAddr,
        payload: Bytes,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.outstanding.insert(
            id,
            Outstanding {
                workload_id,
                dst,
                payload,
                first_sent_at: now,
                attempts: 1,
            },
        );
        id
    }

    /// Records a response. Returns the completed record for the first
    /// response of each request and `None` for duplicates or unknown ids.
    pub fn on_response(&mut self, request_id: u64) -> Option<Outstanding> {
        match self.outstanding.remove(&request_id) {
            Some(rec) => {
                self.completed += 1;
                Some(rec)
            }
            None => {
                self.duplicates += 1;
                None
            }
        }
    }

    /// Handles a retransmission timer for `request_id`.
    pub fn on_timeout(&mut self, request_id: u64) -> TimeoutAction {
        let Some(rec) = self.outstanding.get_mut(&request_id) else {
            return TimeoutAction::Ignore;
        };
        if rec.attempts >= self.max_attempts {
            let rec = self.outstanding.remove(&request_id).expect("checked above");
            self.failed += 1;
            TimeoutAction::GiveUp(rec)
        } else {
            rec.attempts += 1;
            self.retransmitted += 1;
            TimeoutAction::Resend(rec.clone())
        }
    }

    /// Number of RPCs currently awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Successfully completed RPCs.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Retransmissions sent.
    pub fn retransmitted(&self) -> u64 {
        self.retransmitted
    }

    /// RPCs that exhausted their attempt budget.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Duplicate or unsolicited responses observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;

    fn dst() -> SocketAddr {
        SocketAddr::new(Ipv4Addr::node(2), 9000)
    }

    fn tracker() -> RpcTracker {
        RpcTracker::new(SimDuration::from_millis(1), 3)
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut t = tracker();
        let a = t.register(SimTime::ZERO, 1, dst(), Bytes::new());
        let b = t.register(SimTime::ZERO, 1, dst(), Bytes::new());
        assert!(b > a);
        assert_eq!(t.in_flight(), 2);
    }

    #[test]
    fn timeout_resends_until_budget_then_gives_up() {
        let mut t = tracker();
        let id = t.register(SimTime::ZERO, 1, dst(), Bytes::from_static(b"p"));

        match t.on_timeout(id) {
            TimeoutAction::Resend(rec) => assert_eq!(rec.attempts, 2),
            other => panic!("expected resend, got {other:?}"),
        }
        match t.on_timeout(id) {
            TimeoutAction::Resend(rec) => assert_eq!(rec.attempts, 3),
            other => panic!("expected resend, got {other:?}"),
        }
        match t.on_timeout(id) {
            TimeoutAction::GiveUp(rec) => {
                assert_eq!(rec.attempts, 3);
                assert_eq!(rec.payload, Bytes::from_static(b"p"));
            }
            other => panic!("expected give-up, got {other:?}"),
        }
        assert_eq!(t.failed(), 1);
        assert_eq!(t.retransmitted(), 2);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn late_response_after_giveup_counts_as_duplicate() {
        let mut t = RpcTracker::new(SimDuration::from_millis(1), 1);
        let id = t.register(SimTime::ZERO, 1, dst(), Bytes::new());
        assert!(matches!(t.on_timeout(id), TimeoutAction::GiveUp(_)));
        assert!(t.on_response(id).is_none());
        assert_eq!(t.duplicates(), 1);
    }

    #[test]
    fn response_then_timeout_is_ignored() {
        let mut t = tracker();
        let id = t.register(SimTime::from_nanos(5), 9, dst(), Bytes::new());
        let rec = t.on_response(id).unwrap();
        assert_eq!(rec.first_sent_at, SimTime::from_nanos(5));
        assert_eq!(t.on_timeout(id), TimeoutAction::Ignore);
        assert_eq!(t.completed(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = RpcTracker::new(SimDuration::ZERO, 0);
    }
}
