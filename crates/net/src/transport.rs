//! The weakly-consistent request-response transport (§4.2-D3).
//!
//! λ-NIC deliberately avoids TCP: serverless RPCs are independent,
//! mutually-exclusive request-response pairs, so the *sender* (gateway or
//! external service) tracks outstanding requests and retransmits on timeout
//! or loss, and duplicate responses are ignored. [`RpcTracker`] implements
//! that sender-side state machine as a plain library type so both the
//! gateway component and tests can drive it deterministically.
//!
//! Retransmission timing is governed by a [`RetryPolicy`]: a fixed
//! timeout for latency-critical in-cluster RPCs, or exponential backoff
//! with seeded jitter and a per-request deadline for paths that must
//! survive worker failures without synchronized retry storms.

use std::collections::HashMap;

use bytes::Bytes;
use lnic_sim::time::{SimDuration, SimTime};
use rand::Rng;

use crate::addr::{MacAddr, SocketAddr};

/// Control message: repoint one entry of a worker's service table.
///
/// Worker-side lambda RPCs resolve their target through a local service
/// table on *every* attempt, so retransmissions follow this update
/// instead of hammering an endpoint the failover controller has already
/// evicted. Both worker backends (SmartNIC and host) handle the same
/// message, which is why it lives in the shared transport layer rather
/// than either backend crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateService {
    /// The logical service id being re-pointed.
    pub service: u16,
    /// L2 address of the new serving node.
    pub mac: MacAddr,
    /// UDP endpoint of the new serving node.
    pub addr: SocketAddr,
}

/// Returns whether a sender that has already transmitted `attempts_sent`
/// copies of a request has exhausted a total budget of `max_attempts`.
///
/// The budget counts *total* attempts, so `max_attempts = 3` means one
/// original send plus two retransmissions; the third timer fires into
/// give-up. Every retry loop in the workspace (gateway, NIC lambda RPCs,
/// host lambda RPCs) shares this helper so the off-by-one semantics
/// cannot drift between backends.
#[inline]
pub fn retries_exhausted(attempts_sent: u32, max_attempts: u32) -> bool {
    attempts_sent >= max_attempts
}

/// When to retransmit and when to give up.
///
/// `timeout_for_attempt(n)` is the timer armed after the `n`-th send
/// (1-based): `base_timeout * multiplier^(n-1)`, capped at
/// `max_timeout`. When `jitter_frac > 0` each armed timer is scaled by a
/// uniform factor in `[1 - jitter_frac, 1 + jitter_frac]` drawn from the
/// caller's seeded RNG, de-synchronizing retry storms without breaking
/// determinism. An optional `deadline` bounds the whole request: once it
/// has been outstanding that long, the next timer gives up regardless of
/// remaining attempts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Timer after the first send.
    pub base_timeout: SimDuration,
    /// Upper bound on any single timer.
    pub max_timeout: SimDuration,
    /// Growth factor per retransmission (1.0 = fixed timeout).
    pub multiplier: f64,
    /// Uniform jitter fraction applied to each armed timer (0 = none).
    pub jitter_frac: f64,
    /// Total attempt budget (>= 1), original send included.
    pub max_attempts: u32,
    /// Give up once a request has been outstanding this long.
    pub deadline: Option<SimDuration>,
}

impl RetryPolicy {
    /// The legacy fixed-timeout policy: every timer is `timeout`, no
    /// jitter, no deadline.
    pub fn fixed(timeout: SimDuration, max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        RetryPolicy {
            base_timeout: timeout,
            max_timeout: timeout,
            multiplier: 1.0,
            jitter_frac: 0.0,
            max_attempts,
            deadline: None,
        }
    }

    /// Exponential backoff: timers double per retransmission from
    /// `base_timeout` up to `16 * base_timeout`, with ±10% seeded jitter
    /// and a deadline equal to twice the sum of the un-jittered timers.
    pub fn exponential(base_timeout: SimDuration, max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        let mut policy = RetryPolicy {
            base_timeout,
            max_timeout: base_timeout * 16,
            multiplier: 2.0,
            jitter_frac: 0.1,
            max_attempts,
            deadline: None,
        };
        let budget: SimDuration = (1..=max_attempts)
            .map(|n| policy.timeout_for_attempt(n))
            .sum();
        policy.deadline = Some(budget * 2);
        policy
    }

    /// The deterministic (pre-jitter) timer armed after the `attempt`-th
    /// send, 1-based.
    pub fn timeout_for_attempt(&self, attempt: u32) -> SimDuration {
        let growth = self.multiplier.powi(attempt.saturating_sub(1) as i32);
        self.base_timeout.mul_f64(growth).min(self.max_timeout)
    }

    /// The timer to arm after the `attempt`-th send, with jitter drawn
    /// from `rng` when the policy uses any.
    ///
    /// A policy with `jitter_frac == 0` never touches the RNG, so fixed
    /// policies leave the caller's random stream untouched.
    pub fn arm_timeout(&self, attempt: u32, rng: &mut impl Rng) -> SimDuration {
        let base = self.timeout_for_attempt(attempt);
        if self.jitter_frac <= 0.0 {
            return base;
        }
        let scale = 1.0 + rng.gen_range(-self.jitter_frac..=self.jitter_frac);
        base.mul_f64(scale.max(0.0))
    }
}

/// Sender-side record of one in-flight RPC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outstanding {
    /// The targeted lambda.
    pub workload_id: u32,
    /// Where the request was sent (updated when a retransmission is
    /// redirected to a re-placed worker).
    pub dst: SocketAddr,
    /// Request payload, kept for retransmission.
    pub payload: Bytes,
    /// When the *first* attempt was sent (latency is measured from here).
    pub first_sent_at: SimTime,
    /// Attempts sent so far (1 = original only).
    pub attempts: u32,
}

/// What the caller should do when a retransmission timer fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimeoutAction {
    /// Resend the recorded payload and arm another timer.
    Resend(Outstanding),
    /// Retry budget (attempts or deadline) exhausted: report failure
    /// upstream.
    GiveUp(Outstanding),
    /// The RPC already completed; ignore the stale timer.
    Ignore,
}

/// Sender-side tracker for the weakly-consistent transport.
///
/// # Examples
///
/// ```
/// use lnic_net::transport::{RpcTracker, TimeoutAction};
/// use lnic_net::addr::{Ipv4Addr, SocketAddr};
/// use lnic_sim::time::{SimDuration, SimTime};
/// use bytes::Bytes;
///
/// let mut t = RpcTracker::new(SimDuration::from_millis(1), 3);
/// let dst = SocketAddr::new(Ipv4Addr::node(2), 9000);
/// let id = t.register(SimTime::ZERO, 7, dst, Bytes::from_static(b"req"));
///
/// // The response arrives before the timer: completion returns the record.
/// let done = t.on_response(id).expect("first response completes the RPC");
/// assert_eq!(done.workload_id, 7);
/// // A duplicate response is ignored.
/// assert!(t.on_response(id).is_none());
/// // The stale timer is ignored too.
/// assert_eq!(t.on_timeout(SimTime::ZERO, id), TimeoutAction::Ignore);
/// ```
#[derive(Debug)]
pub struct RpcTracker {
    policy: RetryPolicy,
    next_id: u64,
    outstanding: HashMap<u64, Outstanding>,
    completed: u64,
    retransmitted: u64,
    failed: u64,
    duplicates: u64,
}

impl RpcTracker {
    /// Creates a tracker with a fixed retransmission `timeout` and a
    /// total attempt budget of `max_attempts` (>= 1).
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn new(timeout: SimDuration, max_attempts: u32) -> Self {
        RpcTracker::with_policy(RetryPolicy::fixed(timeout, max_attempts))
    }

    /// Creates a tracker governed by `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy's `max_attempts` is zero.
    pub fn with_policy(policy: RetryPolicy) -> Self {
        assert!(policy.max_attempts >= 1, "at least one attempt is required");
        RpcTracker {
            policy,
            next_id: 1,
            outstanding: HashMap::new(),
            completed: 0,
            retransmitted: 0,
            failed: 0,
            duplicates: 0,
        }
    }

    /// Offsets the id space: ids issued after this call start at
    /// `base + 1`. Multi-gateway deployments stamp the gateway's index
    /// into the high bits (`(gateway as u64) << 48`) so every request id
    /// on a shared trace stream is attributable to the gateway that
    /// issued it; a base of 0 leaves the id sequence unchanged.
    ///
    /// # Panics
    ///
    /// Panics if ids were already issued (the base must be set before
    /// first use, or attribution would be ambiguous).
    #[must_use]
    pub fn with_id_base(mut self, base: u64) -> Self {
        assert_eq!(
            self.next_id, 1,
            "id base must be set before any id is issued"
        );
        self.next_id = base + 1;
        self
    }

    /// The retransmission policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The in-flight record for `request_id`, if still outstanding.
    pub fn get(&self, request_id: u64) -> Option<&Outstanding> {
        self.outstanding.get(&request_id)
    }

    /// The timer armed after the first send (pre-jitter). Kept for
    /// callers that only need the fixed-policy value.
    pub fn timeout(&self) -> SimDuration {
        self.policy.base_timeout
    }

    /// The timer to arm at `now` for `request_id`'s most recent send,
    /// honoring backoff and jitter. When the policy carries a deadline
    /// the timer is clamped so it never fires past
    /// `first_sent_at + deadline`: a retry is never scheduled beyond the
    /// request's deadline, it gives up at the deadline instant instead.
    /// Falls back to the base timeout for unknown ids (the request may
    /// already have completed).
    pub fn arm_timeout(&self, now: SimTime, request_id: u64, rng: &mut impl Rng) -> SimDuration {
        let rec = self.outstanding.get(&request_id);
        let attempt = rec.map(|rec| rec.attempts).unwrap_or(1);
        let timer = self.policy.arm_timeout(attempt, rng);
        match (rec, self.policy.deadline) {
            (Some(rec), Some(deadline)) => {
                let remaining = (rec.first_sent_at + deadline).saturating_duration_since(now);
                timer.min(remaining)
            }
            _ => timer,
        }
    }

    /// Registers a new RPC and returns its request id.
    pub fn register(
        &mut self,
        now: SimTime,
        workload_id: u32,
        dst: SocketAddr,
        payload: Bytes,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.outstanding.insert(
            id,
            Outstanding {
                workload_id,
                dst,
                payload,
                first_sent_at: now,
                attempts: 1,
            },
        );
        id
    }

    /// Redirects a pending RPC to a new destination, so retransmissions
    /// (and deadline accounting) follow a re-placed worker.
    pub fn redirect(&mut self, request_id: u64, dst: SocketAddr) {
        if let Some(rec) = self.outstanding.get_mut(&request_id) {
            rec.dst = dst;
        }
    }

    /// Retires a pending RPC *without* recording a completion — handoff
    /// semantics: the caller surrenders the in-flight record (e.g. to a
    /// peer adopting the request), but the id sequence and completion
    /// counters are untouched, so ids are never reused and a late reply
    /// for the retired id still counts as a duplicate.
    pub fn abandon(&mut self, request_id: u64) -> Option<Outstanding> {
        self.outstanding.remove(&request_id)
    }

    /// Drops every pending RPC — crash semantics: all in-flight state is
    /// lost, but the id sequence survives so post-restart requests never
    /// collide with pre-crash ones. Returns the abandoned ids, sorted.
    pub fn abandon_all(&mut self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.outstanding.keys().copied().collect();
        ids.sort_unstable();
        self.outstanding.clear();
        ids
    }

    /// Records a response. Returns the completed record for the first
    /// response of each request and `None` for duplicates or unknown ids.
    pub fn on_response(&mut self, request_id: u64) -> Option<Outstanding> {
        match self.outstanding.remove(&request_id) {
            Some(rec) => {
                self.completed += 1;
                Some(rec)
            }
            None => {
                self.duplicates += 1;
                None
            }
        }
    }

    /// Handles a retransmission timer for `request_id` firing at `now`.
    ///
    /// Gives up when the attempt budget is exhausted, the policy
    /// deadline has passed, or the *next* timer would only fire past
    /// the deadline (a retransmission whose follow-up cannot complete
    /// inside the deadline is pure wasted load); otherwise returns the
    /// record to resend with its attempt count already incremented.
    pub fn on_timeout(&mut self, now: SimTime, request_id: u64) -> TimeoutAction {
        let Some(rec) = self.outstanding.get_mut(&request_id) else {
            return TimeoutAction::Ignore;
        };
        let over_deadline = self.policy.deadline.is_some_and(|d| {
            let outstanding_for = now.saturating_duration_since(rec.first_sent_at);
            outstanding_for >= d
                || outstanding_for + self.policy.timeout_for_attempt(rec.attempts + 1) > d
        });
        if over_deadline || retries_exhausted(rec.attempts, self.policy.max_attempts) {
            let rec = self.outstanding.remove(&request_id).expect("checked above");
            self.failed += 1;
            TimeoutAction::GiveUp(rec)
        } else {
            rec.attempts += 1;
            self.retransmitted += 1;
            TimeoutAction::Resend(rec.clone())
        }
    }

    /// Number of RPCs currently awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Successfully completed RPCs.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Retransmissions sent.
    pub fn retransmitted(&self) -> u64 {
        self.retransmitted
    }

    /// RPCs that exhausted their attempt budget.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Duplicate or unsolicited responses observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dst() -> SocketAddr {
        SocketAddr::new(Ipv4Addr::node(2), 9000)
    }

    fn tracker() -> RpcTracker {
        RpcTracker::new(SimDuration::from_millis(1), 3)
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut t = tracker();
        let a = t.register(SimTime::ZERO, 1, dst(), Bytes::new());
        let b = t.register(SimTime::ZERO, 1, dst(), Bytes::new());
        assert!(b > a);
        assert_eq!(t.in_flight(), 2);
    }

    #[test]
    fn id_base_offsets_the_sequence() {
        let base = 3u64 << 48;
        let mut t = tracker().with_id_base(base);
        let a = t.register(SimTime::ZERO, 1, dst(), Bytes::new());
        let b = t.register(SimTime::ZERO, 1, dst(), Bytes::new());
        assert_eq!(a, base + 1);
        assert_eq!(b, base + 2);
        assert_eq!(a >> 48, 3, "gateway index recoverable from the id");
    }

    #[test]
    #[should_panic(expected = "before any id is issued")]
    fn id_base_after_first_issue_panics() {
        let mut t = tracker();
        let _ = t.register(SimTime::ZERO, 1, dst(), Bytes::new());
        let _ = t.with_id_base(1 << 48);
    }

    #[test]
    fn timeout_resends_until_budget_then_gives_up() {
        let mut t = tracker();
        let id = t.register(SimTime::ZERO, 1, dst(), Bytes::from_static(b"p"));

        match t.on_timeout(SimTime::ZERO, id) {
            TimeoutAction::Resend(rec) => assert_eq!(rec.attempts, 2),
            other => panic!("expected resend, got {other:?}"),
        }
        match t.on_timeout(SimTime::ZERO, id) {
            TimeoutAction::Resend(rec) => assert_eq!(rec.attempts, 3),
            other => panic!("expected resend, got {other:?}"),
        }
        match t.on_timeout(SimTime::ZERO, id) {
            TimeoutAction::GiveUp(rec) => {
                assert_eq!(rec.attempts, 3);
                assert_eq!(rec.payload, Bytes::from_static(b"p"));
            }
            other => panic!("expected give-up, got {other:?}"),
        }
        assert_eq!(t.failed(), 1);
        assert_eq!(t.retransmitted(), 2);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn attempts_budget_means_one_send_plus_n_minus_one_resends() {
        // The shared helper pins the semantics every retry loop relies
        // on: a budget of 3 is 1 original + 2 retransmissions.
        assert!(!retries_exhausted(1, 3));
        assert!(!retries_exhausted(2, 3));
        assert!(retries_exhausted(3, 3));
        assert!(retries_exhausted(4, 3));
        // A budget of 1 permits no retransmission at all.
        assert!(retries_exhausted(1, 1));

        // And the tracker gives up on exactly the max_attempts-th timer.
        let mut t = RpcTracker::new(SimDuration::from_millis(1), 3);
        let id = t.register(SimTime::ZERO, 1, dst(), Bytes::new());
        let mut resends = 0;
        loop {
            match t.on_timeout(SimTime::ZERO, id) {
                TimeoutAction::Resend(_) => resends += 1,
                TimeoutAction::GiveUp(rec) => {
                    assert_eq!(rec.attempts, 3, "gave up at the attempt budget");
                    break;
                }
                TimeoutAction::Ignore => panic!("pending request cannot be ignored"),
            }
        }
        assert_eq!(resends, 2, "attempts=3 means 1 send + 2 resends");
    }

    #[test]
    fn late_response_after_giveup_counts_as_duplicate() {
        let mut t = RpcTracker::new(SimDuration::from_millis(1), 1);
        let id = t.register(SimTime::ZERO, 1, dst(), Bytes::new());
        assert!(matches!(
            t.on_timeout(SimTime::ZERO, id),
            TimeoutAction::GiveUp(_)
        ));
        assert!(t.on_response(id).is_none());
        assert_eq!(t.duplicates(), 1);
    }

    #[test]
    fn duplicate_response_after_completion_is_counted_not_replayed() {
        let mut t = tracker();
        let id = t.register(SimTime::ZERO, 4, dst(), Bytes::from_static(b"q"));
        assert!(t.on_response(id).is_some());
        // The retransmitted copy's response lands later: ignored.
        assert!(t.on_response(id).is_none());
        assert!(t.on_response(id).is_none());
        assert_eq!(t.completed(), 1);
        assert_eq!(t.duplicates(), 2);
    }

    #[test]
    fn response_then_timeout_is_ignored() {
        let mut t = tracker();
        let id = t.register(SimTime::from_nanos(5), 9, dst(), Bytes::new());
        let rec = t.on_response(id).unwrap();
        assert_eq!(rec.first_sent_at, SimTime::from_nanos(5));
        assert_eq!(
            t.on_timeout(SimTime::from_nanos(5), id),
            TimeoutAction::Ignore
        );
        assert_eq!(t.completed(), 1);
    }

    #[test]
    fn exponential_backoff_grows_then_caps() {
        let p = RetryPolicy::exponential(SimDuration::from_millis(1), 8);
        let seq: Vec<u64> = (1..=8)
            .map(|n| p.timeout_for_attempt(n).as_nanos())
            .collect();
        // Doubles each attempt: 1, 2, 4, 8, 16, then capped at 16 ms.
        assert_eq!(seq[0], 1_000_000);
        assert_eq!(seq[1], 2_000_000);
        assert_eq!(seq[4], 16_000_000);
        assert_eq!(seq[5], 16_000_000, "capped at max_timeout");
        for w in seq.windows(2) {
            assert!(w[0] <= w[1], "pre-jitter backoff is monotone");
        }
    }

    #[test]
    fn jittered_backoff_stays_near_schedule_and_is_seed_deterministic() {
        let p = RetryPolicy::exponential(SimDuration::from_millis(1), 5);
        let mut rng_a = SmallRng::seed_from_u64(7);
        let mut rng_b = SmallRng::seed_from_u64(7);
        for attempt in 1..=5 {
            let a = p.arm_timeout(attempt, &mut rng_a);
            let b = p.arm_timeout(attempt, &mut rng_b);
            assert_eq!(a, b, "same seed, same jitter");
            let base = p.timeout_for_attempt(attempt).as_nanos() as f64;
            let got = a.as_nanos() as f64;
            assert!(
                (got - base).abs() <= base * p.jitter_frac + 1.0,
                "attempt {attempt}: {got} vs base {base}"
            );
        }
        // Jitter never turns backoff decreasing by more than the jitter
        // band: the *floor* of attempt n+1 clears the *ceiling* of
        // attempt n whenever the schedule doubles below the cap.
        let floor2 = p.timeout_for_attempt(2).mul_f64(1.0 - p.jitter_frac);
        let ceil1 = p.timeout_for_attempt(1).mul_f64(1.0 + p.jitter_frac);
        assert!(floor2 > ceil1);
    }

    #[test]
    fn fixed_policy_never_draws_from_the_rng() {
        let p = RetryPolicy::fixed(SimDuration::from_millis(2), 3);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut witness = SmallRng::seed_from_u64(3);
        for attempt in 1..=3 {
            assert_eq!(
                p.arm_timeout(attempt, &mut rng),
                SimDuration::from_millis(2)
            );
        }
        use rand::Rng as _;
        assert_eq!(
            rng.gen_range(0..u64::MAX),
            witness.gen_range(0..u64::MAX),
            "rng stream untouched by fixed policy"
        );
    }

    #[test]
    fn deadline_gives_up_even_with_attempts_remaining() {
        let mut policy = RetryPolicy::fixed(SimDuration::from_millis(1), 100);
        policy.deadline = Some(SimDuration::from_millis(3));
        let mut t = RpcTracker::with_policy(policy);
        let id = t.register(SimTime::ZERO, 1, dst(), Bytes::new());
        // Timers at 1 ms and 2 ms resend; the 3 ms timer hits the
        // deadline with 97 attempts unspent.
        assert!(matches!(
            t.on_timeout(SimTime::ZERO + SimDuration::from_millis(1), id),
            TimeoutAction::Resend(_)
        ));
        assert!(matches!(
            t.on_timeout(SimTime::ZERO + SimDuration::from_millis(2), id),
            TimeoutAction::Resend(_)
        ));
        match t.on_timeout(SimTime::ZERO + SimDuration::from_millis(3), id) {
            TimeoutAction::GiveUp(rec) => assert_eq!(rec.attempts, 3),
            other => panic!("expected deadline give-up, got {other:?}"),
        }
        assert_eq!(t.failed(), 1);
    }

    #[test]
    fn no_retry_is_scheduled_past_the_deadline() {
        // Boundary case: a retransmission is allowed when its follow-up
        // timer lands *exactly on* the deadline, and refused when it
        // would land one nanosecond past it.
        let mut policy = RetryPolicy::fixed(SimDuration::from_millis(1), 100);
        policy.deadline = Some(SimDuration::from_millis(3));
        let mut t = RpcTracker::with_policy(policy);
        let id = t.register(SimTime::ZERO, 1, dst(), Bytes::new());
        // Fires at 2 ms: next timer lands exactly at the 3 ms deadline.
        assert!(matches!(
            t.on_timeout(SimTime::ZERO + SimDuration::from_millis(2), id),
            TimeoutAction::Resend(_)
        ));
        // Fires 1 ns later than 2 ms: the next timer would land at
        // 3 ms + 1 ns, past the deadline — give up instead of resending.
        match t.on_timeout(
            SimTime::ZERO + SimDuration::from_millis(2) + SimDuration::from_nanos(1),
            id,
        ) {
            TimeoutAction::GiveUp(rec) => assert_eq!(rec.attempts, 2),
            other => panic!("expected give-up, got {other:?}"),
        }

        // And the armed timer itself is clamped to the deadline: with
        // ±10% jitter a raw timer could overshoot, but the tracker
        // truncates it to the remaining deadline budget.
        let mut policy = RetryPolicy::exponential(SimDuration::from_millis(1), 8);
        policy.deadline = Some(SimDuration::from_micros(1_500));
        let t2 = RpcTracker::with_policy(policy);
        let mut t2 = {
            let mut t2 = t2;
            let _ = t2.register(SimTime::ZERO, 1, dst(), Bytes::new());
            t2
        };
        let id2 = t2.register(SimTime::ZERO, 1, dst(), Bytes::new());
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            let timer =
                t2.arm_timeout(SimTime::ZERO + SimDuration::from_micros(600), id2, &mut rng);
            assert!(
                timer <= SimDuration::from_micros(900),
                "timer {timer} fires past the deadline"
            );
        }
    }

    #[test]
    fn redirect_retargets_future_resends() {
        let mut t = tracker();
        let id = t.register(SimTime::ZERO, 1, dst(), Bytes::new());
        let new_dst = SocketAddr::new(Ipv4Addr::node(9), 8000);
        t.redirect(id, new_dst);
        match t.on_timeout(SimTime::ZERO, id) {
            TimeoutAction::Resend(rec) => assert_eq!(rec.dst, new_dst),
            other => panic!("expected resend, got {other:?}"),
        }
        // Redirecting a completed id is a no-op.
        assert!(t.on_response(id).is_some());
        t.redirect(id, dst());
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = RpcTracker::new(SimDuration::ZERO, 0);
    }
}
