//! A store-and-forward Ethernet switch.
//!
//! The testbed's Arista DCS-7124S (§6.1.2) is modeled as a switch with a
//! static forwarding table from destination MAC to output port. Each output
//! port is a [`crate::link::Link`] component, which provides the per-port
//! serialization and queueing behaviour; the switch itself adds a fixed
//! forwarding latency per frame.

use std::collections::HashMap;

use lnic_sim::prelude::*;

use crate::addr::MacAddr;
use crate::packet::Packet;
use crate::params::SwitchParams;

/// An N-port switch forwarding frames by destination MAC.
///
/// Frames addressed to an unknown MAC are counted and dropped (the testbed
/// uses static addressing, so an unknown MAC indicates a wiring bug in the
/// experiment, not normal flooding).
pub struct Switch {
    params: SwitchParams,
    /// Output port (a simplex `Link` component) per destination MAC.
    fib: HashMap<MacAddr, ComponentId>,
    forwarded: Counter,
    unroutable: Counter,
}

impl Switch {
    /// Creates a switch with the given parameters and an empty forwarding
    /// table.
    pub fn new(params: SwitchParams) -> Self {
        Switch {
            params,
            fib: HashMap::new(),
            forwarded: Counter::new(),
            unroutable: Counter::new(),
        }
    }

    /// Adds a forwarding entry: frames for `mac` leave through `port_link`.
    pub fn connect(&mut self, mac: MacAddr, port_link: ComponentId) {
        self.fib.insert(mac, port_link);
    }

    /// Number of frames forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.get()
    }

    /// Number of frames dropped for lack of a forwarding entry.
    pub fn unroutable(&self) -> u64 {
        self.unroutable.get()
    }
}

impl Component for Switch {
    fn name(&self) -> &str {
        "switch"
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
        let packet = msg
            .downcast::<Packet>()
            .expect("switches forward Packet frames");
        let bytes = packet.wire_len() as u64;
        match self.fib.get(&packet.eth.dst) {
            Some(&port) => {
                self.forwarded.incr();
                ctx.emit(|| TraceEvent::SwitchForward { bytes });
                ctx.send_boxed(port, self.params.forwarding_latency, packet);
            }
            None => {
                self.unroutable.incr();
                ctx.trace(|| format!("switch: no route for {}", packet.eth.dst));
                ctx.emit(|| TraceEvent::SwitchDrop { bytes });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Ipv4Addr, SocketAddr};
    use crate::link::Link;
    use crate::params::LinkParams;

    struct Sink {
        got: Vec<Packet>,
    }
    impl Component for Sink {
        fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: AnyMessage) {
            self.got.push(*msg.downcast::<Packet>().unwrap());
        }
    }

    fn packet_to(dst: MacAddr) -> Packet {
        Packet::builder()
            .eth(MacAddr::from_index(0), dst)
            .udp(
                SocketAddr::new(Ipv4Addr::node(1), 1),
                SocketAddr::new(Ipv4Addr::node(2), 2),
            )
            .build()
    }

    #[test]
    fn forwards_by_destination_mac() {
        let mut sim = Simulation::new(1);
        let sink_a = sim.add(Sink { got: vec![] });
        let sink_b = sim.add(Sink { got: vec![] });
        let link_a = sim.add(Link::new(sink_a, LinkParams::ten_gbps()));
        let link_b = sim.add(Link::new(sink_b, LinkParams::ten_gbps()));
        let mac_a = MacAddr::from_index(10);
        let mac_b = MacAddr::from_index(20);
        let mut sw = Switch::new(SwitchParams::default());
        sw.connect(mac_a, link_a);
        sw.connect(mac_b, link_b);
        let sw = sim.add(sw);

        sim.post(sw, SimDuration::ZERO, packet_to(mac_a));
        sim.post(sw, SimDuration::ZERO, packet_to(mac_b));
        sim.post(sw, SimDuration::ZERO, packet_to(mac_b));
        sim.run();

        assert_eq!(sim.get::<Sink>(sink_a).unwrap().got.len(), 1);
        assert_eq!(sim.get::<Sink>(sink_b).unwrap().got.len(), 2);
        assert_eq!(sim.get::<Switch>(sw).unwrap().forwarded(), 3);
    }

    #[test]
    fn unknown_mac_dropped_and_counted() {
        let mut sim = Simulation::new(1);
        let sw = sim.add(Switch::new(SwitchParams::default()));
        sim.post(sw, SimDuration::ZERO, packet_to(MacAddr::from_index(99)));
        sim.run();
        assert_eq!(sim.get::<Switch>(sw).unwrap().unroutable(), 1);
        assert_eq!(sim.get::<Switch>(sw).unwrap().forwarded(), 0);
    }

    #[test]
    fn forwarding_latency_applied() {
        let mut sim = Simulation::new(1);
        struct Stamp {
            at: Option<SimTime>,
        }
        impl Component for Stamp {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMessage) {
                self.at = Some(ctx.now());
            }
        }
        let sink = sim.add(Stamp { at: None });
        let mac = MacAddr::from_index(1);
        let mut sw = Switch::new(SwitchParams {
            forwarding_latency: SimDuration::from_nanos(777),
        });
        // Wire the MAC directly to the sink (no link) to isolate the
        // switch's own latency.
        sw.connect(mac, sink);
        let sw = sim.add(sw);
        sim.post(sw, SimDuration::ZERO, packet_to(mac));
        sim.run();
        assert_eq!(
            sim.get::<Stamp>(sink).unwrap().at,
            Some(SimTime::from_nanos(777))
        );
    }
}
