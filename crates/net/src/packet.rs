//! Packets and wire-format codecs.
//!
//! The simulated data plane carries Ethernet/IPv4/UDP frames, optionally
//! with the λ-NIC *lambda header* that the gateway inserts so the NIC's
//! match stage can dispatch requests to lambdas by workload id (§4.1 of the
//! paper). The headers have a real byte-level encoding so the Match+Lambda
//! parser stage operates on genuine wire bytes.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::addr::{Ipv4Addr, MacAddr, SocketAddr};

/// EtherType used for IPv4 frames.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;
/// Magic tag opening a λ-NIC lambda header.
pub const LAMBDA_MAGIC: u16 = 0x4C4E; // "LN"
/// Byte length of an Ethernet header.
pub const ETH_HDR_LEN: usize = 14;
/// Byte length of the (options-free) IPv4 header.
pub const IPV4_HDR_LEN: usize = 20;
/// Byte length of a UDP header.
pub const UDP_HDR_LEN: usize = 8;
/// Byte length of a λ-NIC lambda header.
pub const LAMBDA_HDR_LEN: usize = 44;

/// Return code: success.
pub const RC_OK: u16 = 0;
/// Return code: a replicated NIC-resident service received a request it
/// cannot serve because it is not (or no longer) the replica group's
/// leader. The gateway retries the request against another replica; the
/// leadership broadcast that follows repoints future traffic.
pub const RC_REDIRECT: u16 = 0xFFFB;
/// Return code: the worker refused the request or deploy because it
/// carried a stale fencing token (epoch), or because the worker's own
/// membership lease had lapsed and it must not execute until it rejoins.
pub const RC_FENCED: u16 = 0xFFFC;
/// Return code: the worker dropped the request at dequeue because its
/// propagated deadline had already passed (tail tolerance: do not burn
/// cycles on work nobody is waiting for).
pub const RC_EXPIRED: u16 = 0xFFFD;
/// Return code: the gateway shed the request at admission (token bucket,
/// concurrency cap, or infeasible deadline).
pub const RC_OVERLOADED: u16 = 0xFFFE;

/// Errors produced while decoding a packet from wire bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before a complete header.
    Truncated {
        /// Which header was being decoded.
        header: &'static str,
    },
    /// A field held a value the decoder does not understand.
    BadField {
        /// Which field was invalid.
        field: &'static str,
    },
    /// The IPv4 header checksum did not verify.
    BadChecksum,
    /// The UDP checksum over the pseudo-header and payload did not
    /// verify (the frame was mangled in flight).
    BadUdpChecksum,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { header } => write!(f, "truncated {header} header"),
            DecodeError::BadField { field } => write!(f, "invalid value in field {field}"),
            DecodeError::BadChecksum => write!(f, "ipv4 header checksum mismatch"),
            DecodeError::BadUdpChecksum => write!(f, "udp checksum mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Ethernet II header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct EthernetHdr {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: u16,
}

/// Options-free IPv4 header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Ipv4Hdr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol (17 = UDP).
    pub protocol: u8,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (used for tracing).
    pub ident: u16,
}

/// UDP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct UdpHdr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

/// Direction/kind of a lambda message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum LambdaKind {
    /// A request from the gateway to a lambda.
    Request = 1,
    /// A response from a lambda back to the gateway.
    Response = 2,
    /// An RDMA data fragment committed to NIC memory (§4.2-D3).
    RdmaWrite = 3,
    /// An event notifying a lambda that an RDMA message is complete.
    RdmaComplete = 4,
}

impl LambdaKind {
    fn from_u16(v: u16) -> Option<Self> {
        match v {
            1 => Some(LambdaKind::Request),
            2 => Some(LambdaKind::Response),
            3 => Some(LambdaKind::RdmaWrite),
            4 => Some(LambdaKind::RdmaComplete),
            _ => None,
        }
    }
}

/// The λ-NIC lambda header inserted by the gateway (§4.1).
///
/// `workload_id` selects the lambda in the NIC's match stage;
/// `request_id` correlates responses with outstanding requests for the
/// weakly-consistent transport; `frag_index`/`frag_count` support
/// multi-packet messages delivered over RDMA.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LambdaHdr {
    /// Which lambda the message targets.
    pub workload_id: u32,
    /// Correlates a response with its request.
    pub request_id: u64,
    /// Zero-based fragment index for multi-packet messages.
    pub frag_index: u16,
    /// Total fragment count (1 for single-packet messages).
    pub frag_count: u16,
    /// Message kind.
    pub kind: LambdaKind,
    /// Lambda return code (meaningful on responses).
    pub return_code: u16,
    /// Absolute request deadline as nanoseconds of virtual time
    /// (0 = no deadline). Workers drop expired requests at dequeue
    /// instead of executing them.
    pub deadline_ns: u64,
    /// Queue-depth backpressure signal: on responses, the depth of the
    /// worker's run queue at dequeue time (saturating; 0 on requests).
    pub queue_depth: u16,
    /// Fencing token (membership epoch) stamped by the control plane.
    /// On requests and deploys it names the epoch of the placement that
    /// routed the work; workers reject anything below their current
    /// epoch with [`RC_FENCED`]. On responses it carries the epoch the
    /// worker served under, so the gateway can discard late replies
    /// from fenced epochs. 0 = fencing disabled.
    pub epoch: u64,
    /// Owning tenant of the targeted workload, stamped by the gateway
    /// from the tenant directory. Workers account quotas, WFQ shares,
    /// and firmware pages against it; 0 = the untenanted default.
    pub tenant_id: u32,
}

impl Default for LambdaHdr {
    fn default() -> Self {
        LambdaHdr {
            workload_id: 0,
            request_id: 0,
            frag_index: 0,
            frag_count: 1,
            kind: LambdaKind::Request,
            return_code: 0,
            deadline_ns: 0,
            queue_depth: 0,
            epoch: 0,
            tenant_id: 0,
        }
    }
}

impl LambdaHdr {
    /// Creates a single-packet request header.
    pub fn request(workload_id: u32, request_id: u64) -> Self {
        LambdaHdr {
            workload_id,
            request_id,
            ..Default::default()
        }
    }

    /// Sets the absolute deadline (nanoseconds of virtual time).
    pub fn with_deadline_ns(mut self, deadline_ns: u64) -> Self {
        self.deadline_ns = deadline_ns;
        self
    }

    /// Sets the fencing token (membership epoch).
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Sets the owning tenant.
    pub fn with_tenant(mut self, tenant_id: u32) -> Self {
        self.tenant_id = tenant_id;
        self
    }

    /// Creates the response header matching this request.
    pub fn response_to(&self, return_code: u16) -> Self {
        LambdaHdr {
            kind: LambdaKind::Response,
            return_code,
            frag_index: 0,
            frag_count: 1,
            queue_depth: 0,
            ..*self
        }
    }

    /// Whether the deadline (if any) has passed at `now_ns`.
    pub fn expired_at(&self, now_ns: u64) -> bool {
        self.deadline_ns != 0 && now_ns >= self.deadline_ns
    }
}

/// A complete simulated frame: Ethernet + IPv4 + UDP (+ optional lambda
/// header) + payload.
///
/// # Examples
///
/// ```
/// use lnic_net::packet::{Packet, LambdaHdr};
/// use lnic_net::addr::{Ipv4Addr, MacAddr, SocketAddr};
/// use bytes::Bytes;
///
/// let p = Packet::builder()
///     .eth(MacAddr::from_index(1), MacAddr::from_index(2))
///     .udp(
///         SocketAddr::new(Ipv4Addr::node(1), 7000),
///         SocketAddr::new(Ipv4Addr::node(2), 8000),
///     )
///     .lambda(LambdaHdr::request(3, 99))
///     .payload(Bytes::from_static(b"hello"))
///     .build();
/// let wire = p.encode();
/// let back = Packet::decode(&wire).expect("round-trips");
/// assert_eq!(back, p);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Link-layer header.
    pub eth: EthernetHdr,
    /// Network-layer header.
    pub ipv4: Ipv4Hdr,
    /// Transport-layer header.
    pub udp: UdpHdr,
    /// Optional λ-NIC header.
    pub lambda: Option<LambdaHdr>,
    /// Application payload.
    pub payload: Bytes,
}

impl Packet {
    /// Starts building a packet.
    pub fn builder() -> PacketBuilder {
        PacketBuilder::default()
    }

    /// Total on-wire length in bytes (headers + payload).
    pub fn wire_len(&self) -> usize {
        ETH_HDR_LEN
            + IPV4_HDR_LEN
            + UDP_HDR_LEN
            + if self.lambda.is_some() {
                LAMBDA_HDR_LEN
            } else {
                0
            }
            + self.payload.len()
    }

    /// The source UDP endpoint.
    pub fn src_addr(&self) -> SocketAddr {
        SocketAddr::new(self.ipv4.src, self.udp.src_port)
    }

    /// The destination UDP endpoint.
    pub fn dst_addr(&self) -> SocketAddr {
        SocketAddr::new(self.ipv4.dst, self.udp.dst_port)
    }

    /// Builds the reply skeleton: swaps L2/L3/L4 source and destination.
    pub fn reply_to(&self) -> PacketBuilder {
        Packet::builder()
            .eth(self.eth.dst, self.eth.src)
            .udp(self.dst_addr(), self.src_addr())
    }

    /// Encodes the packet to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_slice(&self.eth.dst.octets());
        buf.put_slice(&self.eth.src.octets());
        buf.put_u16(self.eth.ethertype);

        let lambda_len = if self.lambda.is_some() {
            LAMBDA_HDR_LEN
        } else {
            0
        };
        let ip_total = (IPV4_HDR_LEN + UDP_HDR_LEN + lambda_len + self.payload.len()) as u16;
        let ip_start = buf.len();
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(ip_total);
        buf.put_u16(self.ipv4.ident);
        buf.put_u16(0); // flags/fragment offset
        buf.put_u8(self.ipv4.ttl);
        buf.put_u8(self.ipv4.protocol);
        buf.put_u16(0); // checksum placeholder
        buf.put_u32(self.ipv4.src.to_bits());
        buf.put_u32(self.ipv4.dst.to_bits());
        let csum = ipv4_checksum(&buf[ip_start..ip_start + IPV4_HDR_LEN]);
        buf[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());

        let udp_start = buf.len();
        buf.put_u16(self.udp.src_port);
        buf.put_u16(self.udp.dst_port);
        buf.put_u16((UDP_HDR_LEN + lambda_len + self.payload.len()) as u16);
        buf.put_u16(0); // UDP checksum placeholder, patched below

        if let Some(l) = &self.lambda {
            buf.put_u16(LAMBDA_MAGIC);
            buf.put_u32(l.workload_id);
            buf.put_u64(l.request_id);
            buf.put_u16(l.frag_index);
            buf.put_u16(l.frag_count);
            buf.put_u16(l.kind as u16);
            buf.put_u16(l.return_code);
            buf.put_u64(l.deadline_ns);
            buf.put_u16(l.queue_depth);
            buf.put_u64(l.epoch);
            buf.put_u32(l.tenant_id);
        }
        buf.put_slice(&self.payload);

        // UDP checksum over the RFC 768 pseudo-header plus the full UDP
        // datagram, so any in-flight bit flip past the IP header is
        // caught at decode instead of executed.
        let csum = udp_checksum(self.ipv4.src, self.ipv4.dst, &buf[udp_start..]);
        buf[udp_start + 6..udp_start + 8].copy_from_slice(&csum.to_be_bytes());
        buf.freeze()
    }

    /// Decodes a packet from wire bytes, verifying the IPv4 checksum.
    ///
    /// A lambda header is parsed when the UDP payload opens with
    /// [`LAMBDA_MAGIC`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the buffer is truncated, a field is
    /// invalid, or the IPv4 checksum does not verify.
    pub fn decode(wire: &[u8]) -> Result<Packet, DecodeError> {
        let mut buf = wire;
        if buf.remaining() < ETH_HDR_LEN {
            return Err(DecodeError::Truncated { header: "ethernet" });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        buf.copy_to_slice(&mut dst);
        buf.copy_to_slice(&mut src);
        let ethertype = buf.get_u16();
        let eth = EthernetHdr {
            dst: dst.into(),
            src: src.into(),
            ethertype,
        };
        if ethertype != ETHERTYPE_IPV4 {
            return Err(DecodeError::BadField { field: "ethertype" });
        }

        if buf.remaining() < IPV4_HDR_LEN {
            return Err(DecodeError::Truncated { header: "ipv4" });
        }
        if ipv4_checksum(&buf[..IPV4_HDR_LEN]) != 0 {
            return Err(DecodeError::BadChecksum);
        }
        let vihl = buf.get_u8();
        if vihl != 0x45 {
            return Err(DecodeError::BadField {
                field: "version/ihl",
            });
        }
        let _tos = buf.get_u8();
        let total_len = buf.get_u16() as usize;
        let ident = buf.get_u16();
        let _frag = buf.get_u16();
        let ttl = buf.get_u8();
        let protocol = buf.get_u8();
        let _csum = buf.get_u16();
        let src_ip = Ipv4Addr::from_bits(buf.get_u32());
        let dst_ip = Ipv4Addr::from_bits(buf.get_u32());
        if protocol != IPPROTO_UDP {
            return Err(DecodeError::BadField { field: "protocol" });
        }
        if total_len < IPV4_HDR_LEN + UDP_HDR_LEN || total_len - IPV4_HDR_LEN > buf.remaining() {
            return Err(DecodeError::BadField { field: "total_len" });
        }
        let ipv4 = Ipv4Hdr {
            src: src_ip,
            dst: dst_ip,
            protocol,
            ttl,
            ident,
        };

        if buf.remaining() < UDP_HDR_LEN {
            return Err(DecodeError::Truncated { header: "udp" });
        }
        let udp_len_peek = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        if udp_len_peek < UDP_HDR_LEN || udp_len_peek > buf.remaining() {
            return Err(DecodeError::BadField { field: "udp_len" });
        }
        if udp_checksum(src_ip, dst_ip, &buf[..udp_len_peek]) != 0 {
            return Err(DecodeError::BadUdpChecksum);
        }
        let src_port = buf.get_u16();
        let dst_port = buf.get_u16();
        let udp_len = buf.get_u16() as usize;
        let _udp_csum = buf.get_u16();
        let udp = UdpHdr { src_port, dst_port };
        let mut rest = &buf[..udp_len - UDP_HDR_LEN];

        let lambda = if rest.remaining() >= LAMBDA_HDR_LEN
            && u16::from_be_bytes([rest[0], rest[1]]) == LAMBDA_MAGIC
        {
            let _magic = rest.get_u16();
            let workload_id = rest.get_u32();
            let request_id = rest.get_u64();
            let frag_index = rest.get_u16();
            let frag_count = rest.get_u16();
            let kind = LambdaKind::from_u16(rest.get_u16()).ok_or(DecodeError::BadField {
                field: "lambda.kind",
            })?;
            let return_code = rest.get_u16();
            let deadline_ns = rest.get_u64();
            let queue_depth = rest.get_u16();
            let epoch = rest.get_u64();
            let tenant_id = rest.get_u32();
            if frag_count == 0 || frag_index >= frag_count {
                return Err(DecodeError::BadField {
                    field: "lambda.frag",
                });
            }
            Some(LambdaHdr {
                workload_id,
                request_id,
                frag_index,
                frag_count,
                kind,
                return_code,
                deadline_ns,
                queue_depth,
                epoch,
                tenant_id,
            })
        } else {
            None
        };

        Ok(Packet {
            eth,
            ipv4,
            udp,
            lambda,
            payload: Bytes::copy_from_slice(rest),
        })
    }
}

/// Incremental [`Packet`] construction.
#[derive(Clone, Debug)]
pub struct PacketBuilder {
    packet: Packet,
}

impl Default for PacketBuilder {
    fn default() -> Self {
        PacketBuilder {
            packet: Packet {
                eth: EthernetHdr {
                    ethertype: ETHERTYPE_IPV4,
                    ..Default::default()
                },
                ipv4: Ipv4Hdr {
                    protocol: IPPROTO_UDP,
                    ttl: 64,
                    ..Default::default()
                },
                udp: UdpHdr::default(),
                lambda: None,
                payload: Bytes::new(),
            },
        }
    }
}

impl PacketBuilder {
    /// Sets link-layer source and destination.
    pub fn eth(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.packet.eth.src = src;
        self.packet.eth.dst = dst;
        self
    }

    /// Sets network- and transport-layer source and destination.
    pub fn udp(mut self, src: SocketAddr, dst: SocketAddr) -> Self {
        self.packet.ipv4.src = src.ip;
        self.packet.ipv4.dst = dst.ip;
        self.packet.udp.src_port = src.port;
        self.packet.udp.dst_port = dst.port;
        self
    }

    /// Sets the IPv4 identification field.
    pub fn ident(mut self, ident: u16) -> Self {
        self.packet.ipv4.ident = ident;
        self
    }

    /// Attaches a λ-NIC lambda header.
    pub fn lambda(mut self, hdr: LambdaHdr) -> Self {
        self.packet.lambda = Some(hdr);
        self
    }

    /// Sets the application payload.
    pub fn payload(mut self, payload: Bytes) -> Self {
        self.packet.payload = payload;
        self
    }

    /// Finishes the packet.
    pub fn build(self) -> Packet {
        self.packet
    }
}

/// Computes the RFC 1071 ones'-complement checksum over `data`.
///
/// Over a header with a zeroed checksum field this yields the value to
/// store; over a header that includes a correct checksum it yields zero.
pub fn ipv4_checksum(data: &[u8]) -> u16 {
    fold(sum_words(0, data))
}

/// Computes the RFC 768 UDP checksum: ones'-complement sum over the
/// IPv4 pseudo-header (source, destination, protocol, UDP length) and
/// the UDP datagram `udp` (header + payload).
///
/// Same convention as [`ipv4_checksum`]: over a datagram whose checksum
/// field is zero this yields the value to store; over a datagram that
/// carries a correct checksum it yields zero. Unlike real UDP the zero
/// value is not special-cased — the simulation always verifies.
pub fn udp_checksum(src: Ipv4Addr, dst: Ipv4Addr, udp: &[u8]) -> u16 {
    let mut pseudo = [0u8; 12];
    pseudo[0..4].copy_from_slice(&src.to_bits().to_be_bytes());
    pseudo[4..8].copy_from_slice(&dst.to_bits().to_be_bytes());
    pseudo[9] = IPPROTO_UDP;
    pseudo[10..12].copy_from_slice(&(udp.len() as u16).to_be_bytes());
    fold(sum_words(sum_words(0, &pseudo), udp))
}

/// Adds `data` to a running 16-bit ones'-complement sum. `data` slices
/// fed in sequence must each be even-length except the last.
fn sum_words(mut sum: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds carries and complements, finishing an RFC 1071 checksum.
fn fold(mut sum: u32) -> u16 {
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet(lambda: Option<LambdaHdr>, payload: &[u8]) -> Packet {
        let mut b = Packet::builder()
            .eth(MacAddr::from_index(1), MacAddr::from_index(2))
            .udp(
                SocketAddr::new(Ipv4Addr::node(1), 7000),
                SocketAddr::new(Ipv4Addr::node(2), 8000),
            )
            .ident(42)
            .payload(Bytes::copy_from_slice(payload));
        if let Some(l) = lambda {
            b = b.lambda(l);
        }
        b.build()
    }

    #[test]
    fn encode_decode_roundtrip_plain() {
        let p = sample_packet(None, b"plain udp payload");
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn encode_decode_roundtrip_lambda() {
        let hdr = LambdaHdr {
            workload_id: 7,
            request_id: 0xdead_beef,
            frag_index: 2,
            frag_count: 5,
            kind: LambdaKind::RdmaWrite,
            return_code: 0,
            ..Default::default()
        };
        let p = sample_packet(Some(hdr), &[0xab; 300]);
        let decoded = Packet::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(decoded.lambda.unwrap().kind, LambdaKind::RdmaWrite);
    }

    #[test]
    fn wire_len_matches_encoding() {
        let p = sample_packet(Some(LambdaHdr::request(1, 2)), &[0; 100]);
        assert_eq!(p.wire_len(), p.encode().len());
        let q = sample_packet(None, &[]);
        assert_eq!(q.wire_len(), q.encode().len());
        assert_eq!(q.wire_len(), ETH_HDR_LEN + IPV4_HDR_LEN + UDP_HDR_LEN);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let p = sample_packet(None, b"x");
        let mut wire = p.encode().to_vec();
        wire[ETH_HDR_LEN + 12] ^= 0x01; // flip a bit in the IPv4 src address
        assert_eq!(Packet::decode(&wire), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn truncated_buffers_rejected() {
        let p = sample_packet(Some(LambdaHdr::request(1, 2)), b"payload");
        let wire = p.encode();
        assert_eq!(
            Packet::decode(&wire[..10]),
            Err(DecodeError::Truncated { header: "ethernet" })
        );
        assert!(Packet::decode(&wire[..ETH_HDR_LEN + 5]).is_err());
    }

    /// Recomputes the UDP checksum of a hand-mutated wire buffer so
    /// field-validation tests get past checksum verification.
    fn refresh_udp_checksum(wire: &mut [u8]) {
        let udp_start = ETH_HDR_LEN + IPV4_HDR_LEN;
        let src = Ipv4Addr::from_bits(u32::from_be_bytes(
            wire[ETH_HDR_LEN + 12..ETH_HDR_LEN + 16].try_into().unwrap(),
        ));
        let dst = Ipv4Addr::from_bits(u32::from_be_bytes(
            wire[ETH_HDR_LEN + 16..ETH_HDR_LEN + 20].try_into().unwrap(),
        ));
        wire[udp_start + 6..udp_start + 8].copy_from_slice(&[0, 0]);
        let csum = udp_checksum(src, dst, &wire[udp_start..]);
        wire[udp_start + 6..udp_start + 8].copy_from_slice(&csum.to_be_bytes());
    }

    #[test]
    fn bad_lambda_kind_rejected() {
        let hdr = LambdaHdr::request(1, 2);
        let p = sample_packet(Some(hdr), b"");
        let mut wire = p.encode().to_vec();
        // kind field sits 18 bytes into the lambda header.
        let off = ETH_HDR_LEN + IPV4_HDR_LEN + UDP_HDR_LEN + 18;
        wire[off] = 0xff;
        wire[off + 1] = 0xff;
        refresh_udp_checksum(&mut wire);
        assert_eq!(
            Packet::decode(&wire),
            Err(DecodeError::BadField {
                field: "lambda.kind"
            })
        );
    }

    #[test]
    fn udp_checksum_catches_payload_corruption() {
        let p = sample_packet(Some(LambdaHdr::request(1, 2)), b"payload bytes");
        let mut wire = p.encode().to_vec();
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        assert_eq!(Packet::decode(&wire), Err(DecodeError::BadUdpChecksum));
    }

    #[test]
    fn checksums_catch_every_single_bit_flip_past_ethernet() {
        // The Corrupt fault model flips one bit anywhere in the IP
        // packet; between the IPv4 header checksum and the UDP checksum
        // (pseudo-header + datagram) every such flip must surface as a
        // decode error rather than decode to a different packet.
        let p = sample_packet(
            Some(LambdaHdr::request(7, 99).with_deadline_ns(123_456)),
            b"some payload that is long enough to matter",
        );
        let wire = p.encode().to_vec();
        for byte in ETH_HDR_LEN..wire.len() {
            for bit in 0..8 {
                let mut mangled = wire.clone();
                mangled[byte] ^= 1 << bit;
                assert!(
                    Packet::decode(&mangled).is_err(),
                    "flip at byte {byte} bit {bit} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn deadline_roundtrips_and_expiry_math() {
        let hdr = LambdaHdr::request(3, 4).with_deadline_ns(1_000);
        let p = sample_packet(Some(hdr), b"x");
        let d = Packet::decode(&p.encode()).unwrap();
        assert_eq!(d.lambda.unwrap().deadline_ns, 1_000);
        assert!(!hdr.expired_at(999));
        assert!(hdr.expired_at(1_000));
        // No deadline set => never expires.
        assert!(!LambdaHdr::request(3, 4).expired_at(u64::MAX));
        // Responses keep the request's deadline but clear the depth.
        let resp = LambdaHdr {
            queue_depth: 9,
            ..hdr
        }
        .response_to(0);
        assert_eq!(resp.deadline_ns, 1_000);
        assert_eq!(resp.queue_depth, 0);
    }

    #[test]
    fn epoch_roundtrips_and_survives_response() {
        let hdr = LambdaHdr::request(3, 4).with_epoch(17);
        let p = sample_packet(Some(hdr), b"x");
        let d = Packet::decode(&p.encode()).unwrap();
        assert_eq!(d.lambda.unwrap().epoch, 17);
        let resp = hdr.response_to(RC_FENCED);
        assert_eq!(resp.epoch, 17);
        assert_eq!(resp.return_code, RC_FENCED);
    }

    #[test]
    fn tenant_roundtrips_and_survives_response() {
        let hdr = LambdaHdr::request(3, 4).with_tenant(1234);
        let p = sample_packet(Some(hdr), b"x");
        let d = Packet::decode(&p.encode()).unwrap();
        assert_eq!(d.lambda.unwrap().tenant_id, 1234);
        let resp = hdr.response_to(RC_OK);
        assert_eq!(resp.tenant_id, 1234);
        // Untenanted headers carry tenant 0.
        assert_eq!(LambdaHdr::request(3, 4).tenant_id, 0);
    }

    #[test]
    fn reply_to_swaps_endpoints() {
        let p = sample_packet(None, b"req");
        let r = p.reply_to().payload(Bytes::from_static(b"resp")).build();
        assert_eq!(r.src_addr(), p.dst_addr());
        assert_eq!(r.dst_addr(), p.src_addr());
        assert_eq!(r.eth.src, p.eth.dst);
        assert_eq!(r.eth.dst, p.eth.src);
    }

    #[test]
    fn checksum_verifies_to_zero() {
        let p = sample_packet(None, b"abc");
        let wire = p.encode();
        assert_eq!(
            ipv4_checksum(&wire[ETH_HDR_LEN..ETH_HDR_LEN + IPV4_HDR_LEN]),
            0
        );
    }

    #[test]
    fn response_header_mirrors_request() {
        let req = LambdaHdr::request(9, 1234);
        let resp = req.response_to(0);
        assert_eq!(resp.workload_id, 9);
        assert_eq!(resp.request_id, 1234);
        assert_eq!(resp.kind, LambdaKind::Response);
    }

    #[test]
    fn payload_magic_collision_requires_full_header() {
        // A plain payload starting with the magic but shorter than a lambda
        // header must stay a plain payload.
        let magic = LAMBDA_MAGIC.to_be_bytes();
        let p = sample_packet(None, &magic);
        let d = Packet::decode(&p.encode()).unwrap();
        assert!(d.lambda.is_none());
        assert_eq!(&d.payload[..], &magic);
    }
}
