//! Addressing primitives for the simulated network.

use std::fmt;

/// A 48-bit Ethernet MAC address.
///
/// # Examples
///
/// ```
/// use lnic_net::addr::MacAddr;
///
/// let mac = MacAddr::new([0x02, 0, 0, 0, 0, 0x2a]);
/// assert_eq!(mac.to_string(), "02:00:00:00:00:2a");
/// assert_eq!(MacAddr::from_index(42), mac);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Creates an address from raw octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Creates a locally-administered unicast address from a small index;
    /// convenient for assigning testbed NICs stable addresses.
    pub const fn from_index(index: u32) -> Self {
        let b = index.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Returns the raw octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Returns `true` for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

/// A 32-bit IPv4 address.
///
/// # Examples
///
/// ```
/// use lnic_net::addr::Ipv4Addr;
///
/// let a = Ipv4Addr::new(10, 0, 0, 1);
/// assert_eq!(a.to_string(), "10.0.0.1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Addr(u32);

impl Ipv4Addr {
    /// Creates an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }

    /// Creates an address from its 32-bit big-endian value.
    pub const fn from_bits(bits: u32) -> Self {
        Ipv4Addr(bits)
    }

    /// Returns the 32-bit big-endian value.
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// A testbed convention: node `i` lives at `10.0.0.i`.
    pub const fn node(i: u8) -> Self {
        Ipv4Addr::new(10, 0, 0, i)
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// A UDP endpoint: IPv4 address plus port.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SocketAddr {
    /// The IPv4 address.
    pub ip: Ipv4Addr,
    /// The UDP port.
    pub port: u16,
}

impl SocketAddr {
    /// Creates an endpoint.
    pub const fn new(ip: Ipv4Addr, port: u16) -> Self {
        SocketAddr { ip, port }
    }
}

impl fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_from_index_is_stable_and_unique() {
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        assert_ne!(a, b);
        assert_eq!(a, MacAddr::from_index(1));
        assert!(!a.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
    }

    #[test]
    fn ipv4_bits_roundtrip() {
        let a = Ipv4Addr::new(192, 168, 1, 7);
        assert_eq!(Ipv4Addr::from_bits(a.to_bits()), a);
        assert_eq!(a.to_string(), "192.168.1.7");
        assert_eq!(Ipv4Addr::node(3).to_string(), "10.0.0.3");
    }

    #[test]
    fn socket_addr_display() {
        let s = SocketAddr::new(Ipv4Addr::node(1), 8080);
        assert_eq!(s.to_string(), "10.0.0.1:8080");
    }
}
