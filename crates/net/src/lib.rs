//! # lnic-net: the simulated network substrate
//!
//! Models the paper's testbed fabric (§6.1.2): Ethernet/IPv4/UDP packets
//! with a byte-accurate λ-NIC lambda header, 10 Gbps point-to-point
//! [`link::Link`]s, a store-and-forward [`switch::Switch`], the
//! weakly-consistent sender-tracked RPC transport of §4.2-D3
//! ([`transport::RpcTracker`]), and fragmentation/reassembly with
//! reorder-cost accounting for multi-packet RDMA messages ([`frag`]).
//!
//! ## Example: a frame across a switch
//!
//! ```
//! use lnic_sim::prelude::*;
//! use lnic_net::addr::{Ipv4Addr, MacAddr, SocketAddr};
//! use lnic_net::link::Link;
//! use lnic_net::packet::Packet;
//! use lnic_net::params::{LinkParams, SwitchParams};
//! use lnic_net::switch::Switch;
//!
//! struct Nic {
//!     received: u32,
//! }
//! impl Component for Nic {
//!     fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: AnyMessage) {
//!         msg.downcast::<Packet>().expect("frame");
//!         self.received += 1;
//!     }
//! }
//!
//! let mut sim = Simulation::new(1);
//! let nic = sim.add(Nic { received: 0 });
//! let port = sim.add(Link::new(nic, LinkParams::ten_gbps()));
//! let mut switch = Switch::new(SwitchParams::default());
//! let mac = MacAddr::from_index(4);
//! switch.connect(mac, port);
//! let switch = sim.add(switch);
//!
//! let frame = Packet::builder()
//!     .eth(MacAddr::from_index(1), mac)
//!     .udp(
//!         SocketAddr::new(Ipv4Addr::node(1), 1000),
//!         SocketAddr::new(Ipv4Addr::node(4), 2000),
//!     )
//!     .build();
//! sim.post(switch, SimDuration::ZERO, frame);
//! sim.run();
//! assert_eq!(sim.get::<Nic>(nic).unwrap().received, 1);
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod frag;
pub mod link;
pub mod packet;
pub mod params;
pub mod switch;
pub mod transport;

pub use addr::{Ipv4Addr, MacAddr, SocketAddr};
pub use packet::{LambdaHdr, LambdaKind, Packet};
