//! Tunable parameters of the simulated network fabric.
//!
//! Defaults model the paper's testbed (§6.1.2): 10 Gbps links into an
//! Arista DCS-7124S cut-through-class switch.

use lnic_sim::time::SimDuration;

/// Parameters of one simplex [`crate::link::Link`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay (cable + PHY).
    pub propagation: SimDuration,
    /// Transmit queue capacity in bytes; excess frames are dropped.
    pub queue_capacity_bytes: usize,
    /// Probability of losing a frame in flight (bit errors, pause-frame
    /// corner cases); the weakly-consistent transport recovers via
    /// retransmission.
    pub loss_probability: f64,
}

impl LinkParams {
    /// A 10 Gbps data-center link, as in the paper's testbed.
    pub fn ten_gbps() -> Self {
        LinkParams {
            bandwidth_bps: 10_000_000_000,
            propagation: SimDuration::from_nanos(500),
            queue_capacity_bytes: 512 * 1024,
            loss_probability: 0.0,
        }
    }

    /// A 1 Gbps management link (the testbed's Broadcom quad-port NIC).
    pub fn one_gbps() -> Self {
        LinkParams {
            bandwidth_bps: 1_000_000_000,
            propagation: SimDuration::from_nanos(500),
            queue_capacity_bytes: 256 * 1024,
            loss_probability: 0.0,
        }
    }

    /// Time to clock `bytes` onto the wire, rounded to nanoseconds.
    pub fn serialization_delay(&self, bytes: usize) -> SimDuration {
        let ns = (bytes as u128 * 8 * 1_000_000_000) / self.bandwidth_bps as u128;
        SimDuration::from_nanos(ns as u64)
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams::ten_gbps()
    }
}

impl LinkParams {
    /// Returns a copy with the given loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss probability out of range");
        self.loss_probability = p;
        self
    }
}

/// Parameters of the [`crate::switch::Switch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchParams {
    /// Fixed per-frame forwarding latency (lookup + crossbar).
    pub forwarding_latency: SimDuration,
}

impl Default for SwitchParams {
    fn default() -> Self {
        SwitchParams {
            // A 10 G data-center switch forwards in roughly a microsecond.
            forwarding_latency: SimDuration::from_nanos(1_000),
        }
    }
}

/// The maximum transmission unit used when fragmenting multi-packet
/// messages (standard Ethernet payload).
pub const MTU_PAYLOAD_BYTES: usize = 1_400;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_scales_linearly() {
        let p = LinkParams::ten_gbps();
        assert_eq!(
            p.serialization_delay(2_000).as_nanos(),
            2 * p.serialization_delay(1_000).as_nanos()
        );
        assert_eq!(p.serialization_delay(0), SimDuration::ZERO);
    }

    #[test]
    fn one_gbps_is_ten_times_slower() {
        let fast = LinkParams::ten_gbps().serialization_delay(1_000);
        let slow = LinkParams::one_gbps().serialization_delay(1_000);
        assert_eq!(slow.as_nanos(), 10 * fast.as_nanos());
    }
}
