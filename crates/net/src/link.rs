//! Point-to-point links with serialization, propagation, and queueing.
//!
//! A [`Link`] is *simplex*: it carries frames from whoever sends to it
//! toward a single destination component. A full-duplex cable is modeled as
//! two `Link` components, one per direction. Frames serialize one at a time
//! at the link bandwidth (transmission starts when the previous frame's last
//! bit leaves), then propagate for a fixed delay. A bounded transmit queue
//! drops excess frames, which the weakly-consistent transport recovers via
//! retransmission.

use lnic_sim::prelude::*;
use rand::Rng;

use crate::packet::{Packet, ETH_HDR_LEN};
use crate::params::LinkParams;

/// A unidirectional network link.
///
/// Send it [`Packet`] messages; it delivers them to `dst` after
/// serialization + propagation delay.
///
/// # Examples
///
/// ```
/// use lnic_sim::prelude::*;
/// use lnic_net::link::Link;
/// use lnic_net::params::LinkParams;
/// use lnic_net::packet::Packet;
/// use lnic_net::addr::{Ipv4Addr, MacAddr, SocketAddr};
///
/// struct Sink(u32);
/// impl Component for Sink {
///     fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: AnyMessage) {
///         msg.downcast::<Packet>().expect("packet");
///         self.0 += 1;
///     }
/// }
///
/// let mut sim = Simulation::new(1);
/// let sink = sim.add(Sink(0));
/// let link = sim.add(Link::new(sink, LinkParams::ten_gbps()));
/// let p = Packet::builder()
///     .eth(MacAddr::from_index(1), MacAddr::from_index(2))
///     .udp(
///         SocketAddr::new(Ipv4Addr::node(1), 1),
///         SocketAddr::new(Ipv4Addr::node(2), 2),
///     )
///     .build();
/// sim.post(link, SimDuration::ZERO, p);
/// sim.run();
/// assert_eq!(sim.get::<Sink>(sink).unwrap().0, 1);
/// ```
pub struct Link {
    dst: ComponentId,
    params: LinkParams,
    /// Virtual time at which the transmitter becomes free.
    tx_free_at: SimTime,
    /// Bytes currently queued or in flight on the transmitter.
    queued_bytes: usize,
    /// The link is dark (flapped) until this instant.
    down_until: SimTime,
    /// A loss burst elevates the drop probability until this instant.
    burst_until: SimTime,
    /// Drop probability while the burst window is active.
    burst_prob: f64,
    /// Frames get extra uniform delay (reordering) until this instant.
    reorder_until: SimTime,
    /// Maximum extra delay while the reorder window is active.
    reorder_spread: SimDuration,
    /// Frames are duplicated with `dup_prob` until this instant.
    dup_until: SimTime,
    /// Duplication probability while the window is active.
    dup_prob: f64,
    /// Frames get one bit flipped with `corrupt_prob` until this instant.
    corrupt_until: SimTime,
    /// Corruption probability while the window is active.
    corrupt_prob: f64,
    delivered: Counter,
    dropped: Counter,
    fault_drops: Counter,
    duplicated: Counter,
    corrupt_detected: Counter,
}

impl Link {
    /// Creates a link that delivers frames to `dst`.
    pub fn new(dst: ComponentId, params: LinkParams) -> Self {
        Link {
            dst,
            params,
            tx_free_at: SimTime::ZERO,
            queued_bytes: 0,
            down_until: SimTime::ZERO,
            burst_until: SimTime::ZERO,
            burst_prob: 0.0,
            reorder_until: SimTime::ZERO,
            reorder_spread: SimDuration::ZERO,
            dup_until: SimTime::ZERO,
            dup_prob: 0.0,
            corrupt_until: SimTime::ZERO,
            corrupt_prob: 0.0,
            delivered: Counter::new(),
            dropped: Counter::new(),
            fault_drops: Counter::new(),
            duplicated: Counter::new(),
            corrupt_detected: Counter::new(),
        }
    }

    /// Frames delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// Frames dropped (loss, queue overflow, or fault windows) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Frames dropped specifically by flap or loss-burst windows.
    pub fn fault_drops(&self) -> u64 {
        self.fault_drops.get()
    }

    /// Extra copies delivered by duplication windows.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.get()
    }

    /// Frames mangled by corruption windows and caught by the receiving
    /// NIC's checksum verification (dropped, not executed).
    pub fn corrupt_detected(&self) -> u64 {
        self.corrupt_detected.get()
    }

    /// Whether the link is inside a flap window at `now`.
    pub fn is_down(&self, now: SimTime) -> bool {
        now < self.down_until
    }

    /// Time to clock `bytes` onto the wire at this link's bandwidth.
    pub fn serialization_delay(&self, bytes: usize) -> SimDuration {
        self.params.serialization_delay(bytes)
    }

    /// Attributes a dropped frame to its owning request when it was one
    /// fragment of a multi-packet message. Losing a fragment silently
    /// stalls the whole reassembly at the receiver, so conservation
    /// accounting needs the request id of the loss, not just its bytes.
    fn attribute_frag_drop(ctx: &mut Ctx<'_>, packet: &Packet, reason: &'static str) {
        let Some(hdr) = packet.lambda else {
            return;
        };
        if hdr.frag_count > 1 {
            ctx.emit(|| TraceEvent::FragDrop {
                request_id: hdr.request_id,
                frag_index: hdr.frag_index.into(),
                frag_count: hdr.frag_count.into(),
                reason,
            });
        }
    }
}

/// Internal marker telling a link that a frame's last bit left the
/// transmitter (used to decrement the queue occupancy).
#[derive(Debug)]
struct TxDone {
    bytes: usize,
}

impl Component for Link {
    fn name(&self) -> &str {
        "link"
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
        let msg = match msg.downcast::<TxDone>() {
            Ok(done) => {
                self.queued_bytes = self.queued_bytes.saturating_sub(done.bytes);
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<lnic_sim::fault::LinkDown>() {
            Ok(flap) => {
                self.down_until = self.down_until.max(ctx.now() + flap.0);
                ctx.trace(|| format!("link down for {:?}", flap.0));
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<lnic_sim::fault::LossBurst>() {
            Ok(burst) => {
                self.burst_until = self.burst_until.max(ctx.now() + burst.duration);
                self.burst_prob = burst.prob;
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<lnic_sim::fault::Reorder>() {
            Ok(r) => {
                self.reorder_until = self.reorder_until.max(ctx.now() + r.duration);
                self.reorder_spread = r.spread;
                ctx.trace(|| {
                    format!(
                        "link reordering for {:?} (spread {:?})",
                        r.duration, r.spread
                    )
                });
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<lnic_sim::fault::Duplicate>() {
            Ok(d) => {
                self.dup_until = self.dup_until.max(ctx.now() + d.duration);
                self.dup_prob = d.prob;
                ctx.trace(|| format!("link duplicating for {:?} (p={})", d.duration, d.prob));
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<lnic_sim::fault::Corrupt>() {
            Ok(c) => {
                self.corrupt_until = self.corrupt_until.max(ctx.now() + c.duration);
                self.corrupt_prob = c.prob;
                ctx.trace(|| format!("link corrupting for {:?} (p={})", c.duration, c.prob));
                return;
            }
            Err(other) => other,
        };
        let packet = msg.downcast::<Packet>().expect("links carry Packet frames");
        let bytes = packet.wire_len();

        if ctx.now() < self.down_until {
            self.dropped.incr();
            self.fault_drops.incr();
            ctx.emit(|| TraceEvent::LinkDrop {
                bytes: bytes as u64,
                reason: "down",
            });
            Self::attribute_frag_drop(ctx, &packet, "down");
            return;
        }
        if ctx.now() < self.burst_until
            && self.burst_prob > 0.0
            && ctx.rng().gen_bool(self.burst_prob)
        {
            self.dropped.incr();
            self.fault_drops.incr();
            ctx.emit(|| TraceEvent::LinkDrop {
                bytes: bytes as u64,
                reason: "burst",
            });
            Self::attribute_frag_drop(ctx, &packet, "burst");
            return;
        }
        if self.params.loss_probability > 0.0 && ctx.rng().gen_bool(self.params.loss_probability) {
            self.dropped.incr();
            ctx.emit(|| TraceEvent::LinkDrop {
                bytes: bytes as u64,
                reason: "loss",
            });
            Self::attribute_frag_drop(ctx, &packet, "loss");
            return;
        }
        if self.queued_bytes + bytes > self.params.queue_capacity_bytes {
            self.dropped.incr();
            ctx.trace(|| format!("link drop ({} queued bytes)", self.queued_bytes));
            ctx.emit(|| TraceEvent::LinkDrop {
                bytes: bytes as u64,
                reason: "overflow",
            });
            Self::attribute_frag_drop(ctx, &packet, "overflow");
            return;
        }
        self.queued_bytes += bytes;

        let start = self.tx_free_at.max(ctx.now());
        let tx_end = start + self.params.serialization_delay(bytes);
        self.tx_free_at = tx_end;
        let mut arrival = tx_end + self.params.propagation;

        ctx.send_self(tx_end - ctx.now(), TxDone { bytes });

        // Corruption window: the frame still occupies the wire, but one bit
        // arrives flipped. The receiver's checksum verification catches the
        // mangled frame, so it dies on arrival instead of being executed.
        if ctx.now() < self.corrupt_until
            && self.corrupt_prob > 0.0
            && ctx.rng().gen_bool(self.corrupt_prob)
        {
            let mut wire = packet.encode().to_vec();
            let bit = ctx.rng().gen_range(ETH_HDR_LEN * 8..wire.len() * 8);
            wire[bit / 8] ^= 1 << (bit % 8);
            if Packet::decode(&wire).is_err() {
                self.dropped.incr();
                self.fault_drops.incr();
                self.corrupt_detected.incr();
                ctx.emit(|| TraceEvent::LinkDrop {
                    bytes: bytes as u64,
                    reason: "corrupt",
                });
                Self::attribute_frag_drop(ctx, &packet, "corrupt");
                return;
            }
            // A flip the checksums cannot see (only possible inside the
            // Ethernet header, which is excluded above); deliver as-is.
        }

        // Reorder window: add a uniform extra delay so later frames can
        // overtake this one in flight.
        if ctx.now() < self.reorder_until && !self.reorder_spread.is_zero() {
            let jitter = ctx.rng().gen_range(0..=self.reorder_spread.as_nanos());
            arrival += SimDuration::from_nanos(jitter);
        }

        ctx.send_boxed(self.dst, arrival - ctx.now(), Box::new((*packet).clone()));
        self.delivered.incr();
        ctx.emit(|| TraceEvent::LinkTx {
            bytes: bytes as u64,
        });

        // Duplication window: deliver a second copy back-to-back behind the
        // first, as a misbehaving switch would.
        if ctx.now() < self.dup_until && self.dup_prob > 0.0 && ctx.rng().gen_bool(self.dup_prob) {
            let dup_arrival = arrival + self.params.serialization_delay(bytes);
            ctx.send_boxed(self.dst, dup_arrival - ctx.now(), Box::new(*packet));
            self.duplicated.incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Ipv4Addr, MacAddr, SocketAddr};
    use bytes::Bytes;

    struct Recorder {
        arrivals: Vec<(SimTime, usize)>,
    }
    impl Component for Recorder {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
            let p = msg.downcast::<Packet>().unwrap();
            self.arrivals.push((ctx.now(), p.wire_len()));
        }
    }

    fn packet_with_payload(len: usize) -> Packet {
        Packet::builder()
            .eth(MacAddr::from_index(1), MacAddr::from_index(2))
            .udp(
                SocketAddr::new(Ipv4Addr::node(1), 1),
                SocketAddr::new(Ipv4Addr::node(2), 2),
            )
            .payload(Bytes::from(vec![0u8; len]))
            .build()
    }

    fn setup(params: LinkParams) -> (Simulation, ComponentId, ComponentId) {
        let mut sim = Simulation::new(1);
        let sink = sim.add(Recorder { arrivals: vec![] });
        let link = sim.add(Link::new(sink, params));
        (sim, link, sink)
    }

    #[test]
    fn single_frame_sees_serialization_plus_propagation() {
        // 1 Gbps: 8 ns per byte; propagation 100 ns.
        let params = LinkParams {
            bandwidth_bps: 1_000_000_000,
            propagation: SimDuration::from_nanos(100),
            queue_capacity_bytes: 1 << 20,
            loss_probability: 0.0,
        };
        let (mut sim, link, sink) = setup(params);
        let p = packet_with_payload(0); // 42-byte wire frame
        let expect = SimDuration::from_nanos(42 * 8 + 100);
        sim.post(link, SimDuration::ZERO, p);
        sim.run();
        let arr = &sim.get::<Recorder>(sink).unwrap().arrivals;
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].0, SimTime::ZERO + expect);
    }

    #[test]
    fn back_to_back_frames_serialize_sequentially() {
        let params = LinkParams {
            bandwidth_bps: 1_000_000_000,
            propagation: SimDuration::ZERO,
            queue_capacity_bytes: 1 << 20,
            loss_probability: 0.0,
        };
        let (mut sim, link, sink) = setup(params);
        for _ in 0..3 {
            sim.post(link, SimDuration::ZERO, packet_with_payload(58)); // 100 B
        }
        sim.run();
        let arr = &sim.get::<Recorder>(sink).unwrap().arrivals;
        let times: Vec<u64> = arr.iter().map(|(t, _)| t.as_nanos()).collect();
        assert_eq!(times, vec![800, 1_600, 2_400]);
    }

    #[test]
    fn queue_overflow_drops() {
        let params = LinkParams {
            bandwidth_bps: 1_000_000_000,
            propagation: SimDuration::ZERO,
            queue_capacity_bytes: 150, // fits one 100 B frame only
            loss_probability: 0.0,
        };
        let (mut sim, link, sink) = setup(params);
        for _ in 0..5 {
            sim.post(link, SimDuration::ZERO, packet_with_payload(58));
        }
        sim.run();
        assert_eq!(sim.get::<Recorder>(sink).unwrap().arrivals.len(), 1);
        assert_eq!(sim.get::<Link>(link).unwrap().dropped(), 4);
        assert_eq!(sim.get::<Link>(link).unwrap().delivered(), 1);
    }

    #[test]
    fn queue_drains_and_accepts_later_frames() {
        let params = LinkParams {
            bandwidth_bps: 1_000_000_000,
            propagation: SimDuration::ZERO,
            queue_capacity_bytes: 150,
            loss_probability: 0.0,
        };
        let (mut sim, link, sink) = setup(params);
        sim.post(link, SimDuration::ZERO, packet_with_payload(58));
        // Arrives after the first frame finished (800 ns): accepted.
        sim.post(
            link,
            SimDuration::from_nanos(1_000),
            packet_with_payload(58),
        );
        sim.run();
        assert_eq!(sim.get::<Recorder>(sink).unwrap().arrivals.len(), 2);
        assert_eq!(sim.get::<Link>(link).unwrap().dropped(), 0);
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let params = LinkParams::ten_gbps().with_loss(0.3);
        let (mut sim, link, sink) = setup(params);
        for i in 0..1_000 {
            sim.post(
                link,
                SimDuration::from_micros(i * 10),
                packet_with_payload(10),
            );
        }
        sim.run();
        let delivered = sim.get::<Recorder>(sink).unwrap().arrivals.len();
        let dropped = sim.get::<Link>(link).unwrap().dropped() as usize;
        assert_eq!(delivered + dropped, 1_000);
        assert!((200..400).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn flap_window_blackholes_then_recovers() {
        let params = LinkParams {
            bandwidth_bps: 1_000_000_000,
            propagation: SimDuration::ZERO,
            queue_capacity_bytes: 1 << 20,
            loss_probability: 0.0,
        };
        let (mut sim, link, sink) = setup(params);
        sim.post(
            link,
            SimDuration::from_micros(10),
            lnic_sim::fault::LinkDown(SimDuration::from_micros(20)),
        );
        // Before, during, and after the flap window.
        sim.post(link, SimDuration::from_micros(5), packet_with_payload(10));
        sim.post(link, SimDuration::from_micros(15), packet_with_payload(10));
        sim.post(link, SimDuration::from_micros(29), packet_with_payload(10));
        sim.post(link, SimDuration::from_micros(31), packet_with_payload(10));
        sim.run();
        assert_eq!(sim.get::<Recorder>(sink).unwrap().arrivals.len(), 2);
        let l = sim.get::<Link>(link).unwrap();
        assert_eq!(l.dropped(), 2);
        assert_eq!(l.fault_drops(), 2);
    }

    #[test]
    fn flapped_fragment_drops_are_attributed_to_their_request() {
        use crate::packet::{LambdaHdr, LambdaKind};
        use lnic_sim::trace::{RingSink, TraceEvent};

        let params = LinkParams {
            bandwidth_bps: 1_000_000_000,
            propagation: SimDuration::ZERO,
            queue_capacity_bytes: 1 << 20,
            loss_probability: 0.0,
        };
        let mut sim = Simulation::new(1);
        sim.add_trace_sink(Box::new(RingSink::new(64)));
        let sink = sim.add(Recorder { arrivals: vec![] });
        let link = sim.add(Link::new(sink, params));
        sim.post(
            link,
            SimDuration::ZERO,
            lnic_sim::fault::LinkDown(SimDuration::from_micros(20)),
        );
        // One mid-reassembly RDMA fragment and one plain single-packet
        // request, both inside the flap window.
        let frag = Packet::builder()
            .eth(MacAddr::from_index(1), MacAddr::from_index(2))
            .udp(
                SocketAddr::new(Ipv4Addr::node(1), 1),
                SocketAddr::new(Ipv4Addr::node(2), 2),
            )
            .lambda(LambdaHdr {
                workload_id: 4,
                request_id: 77,
                frag_index: 1,
                frag_count: 3,
                kind: LambdaKind::RdmaWrite,
                ..Default::default()
            })
            .payload(Bytes::from(vec![0u8; 64]))
            .build();
        sim.post(link, SimDuration::from_micros(5), frag);
        sim.post(link, SimDuration::from_micros(6), packet_with_payload(10));
        sim.run();
        assert_eq!(sim.get::<Link>(link).unwrap().fault_drops(), 2);
        let ring = sim.trace_sink::<RingSink>().unwrap();
        let frag_drops: Vec<_> = ring
            .records()
            .filter_map(|r| match r.event {
                TraceEvent::FragDrop {
                    request_id,
                    frag_index,
                    frag_count,
                    reason,
                } => Some((request_id, frag_index, frag_count, reason)),
                _ => None,
            })
            .collect();
        // Only the fragment loss is attributed; the single-packet drop
        // already shows up in request conservation via retransmission.
        assert_eq!(frag_drops, vec![(77, 1, 3, "down")]);
    }

    #[test]
    fn loss_burst_elevates_drop_rate_only_within_window() {
        let params = LinkParams {
            bandwidth_bps: 10_000_000_000,
            propagation: SimDuration::ZERO,
            queue_capacity_bytes: 1 << 20,
            loss_probability: 0.0,
        };
        let (mut sim, link, sink) = setup(params);
        // Burst covering the first 500 frames (sent 1 us apart).
        sim.post(
            link,
            SimDuration::ZERO,
            lnic_sim::fault::LossBurst {
                duration: SimDuration::from_micros(500),
                prob: 0.9,
            },
        );
        for i in 0..1_000u64 {
            sim.post(link, SimDuration::from_micros(i), packet_with_payload(10));
        }
        sim.run();
        let l = sim.get::<Link>(link).unwrap();
        let dropped = l.fault_drops();
        assert!((350..=500).contains(&dropped), "burst dropped {dropped}");
        // Everything after the window sailed through.
        let delivered = sim.get::<Recorder>(sink).unwrap().arrivals.len() as u64;
        assert_eq!(delivered + dropped, 1_000);
        assert!(delivered >= 500);
    }

    #[test]
    fn reorder_window_lets_frames_overtake() {
        let params = LinkParams {
            bandwidth_bps: 100_000_000_000,
            propagation: SimDuration::ZERO,
            queue_capacity_bytes: 1 << 20,
            loss_probability: 0.0,
        };
        let (mut sim, link, sink) = setup(params);
        sim.post(
            link,
            SimDuration::ZERO,
            lnic_sim::fault::Reorder {
                duration: SimDuration::from_millis(1),
                spread: SimDuration::from_micros(50),
            },
        );
        // Distinct payload sizes identify each frame at the receiver.
        for i in 0..20usize {
            sim.post(
                link,
                SimDuration::from_micros(i as u64),
                packet_with_payload(i),
            );
        }
        sim.run();
        let arr = &sim.get::<Recorder>(sink).unwrap().arrivals;
        assert_eq!(arr.len(), 20, "reordering must not lose frames");
        let sizes: Vec<usize> = arr.iter().map(|(_, len)| *len).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_ne!(sizes, sorted, "expected at least one overtake");
    }

    #[test]
    fn duplicate_window_delivers_each_frame_twice() {
        let params = LinkParams {
            bandwidth_bps: 1_000_000_000,
            propagation: SimDuration::ZERO,
            queue_capacity_bytes: 1 << 20,
            loss_probability: 0.0,
        };
        let (mut sim, link, sink) = setup(params);
        sim.post(
            link,
            SimDuration::ZERO,
            lnic_sim::fault::Duplicate {
                duration: SimDuration::from_millis(1),
                prob: 1.0,
            },
        );
        for i in 0..5u64 {
            sim.post(
                link,
                SimDuration::from_micros(i * 10),
                packet_with_payload(10),
            );
        }
        sim.run();
        assert_eq!(sim.get::<Recorder>(sink).unwrap().arrivals.len(), 10);
        let l = sim.get::<Link>(link).unwrap();
        assert_eq!(l.delivered(), 5);
        assert_eq!(l.duplicated(), 5);
        assert_eq!(l.dropped(), 0);
    }

    #[test]
    fn corrupt_window_frames_are_detected_and_dropped() {
        let params = LinkParams {
            bandwidth_bps: 1_000_000_000,
            propagation: SimDuration::ZERO,
            queue_capacity_bytes: 1 << 20,
            loss_probability: 0.0,
        };
        let (mut sim, link, sink) = setup(params);
        sim.post(
            link,
            SimDuration::ZERO,
            lnic_sim::fault::Corrupt {
                duration: SimDuration::from_millis(10),
                prob: 1.0,
            },
        );
        for i in 0..100u64 {
            sim.post(
                link,
                SimDuration::from_micros(i * 10),
                packet_with_payload(32),
            );
        }
        // One clean frame after the window closes.
        sim.post(link, SimDuration::from_millis(20), packet_with_payload(32));
        sim.run();
        let l = sim.get::<Link>(link).unwrap();
        // Every single-bit flip past the Ethernet header is caught by the
        // IPv4/UDP checksums, so nothing mangled reaches the receiver.
        assert_eq!(l.corrupt_detected(), 100);
        assert_eq!(l.dropped(), 100);
        assert_eq!(sim.get::<Recorder>(sink).unwrap().arrivals.len(), 1);
    }

    #[test]
    fn ten_gbps_preset_rate() {
        let params = LinkParams::ten_gbps();
        // 10 Gbps = 0.8 ns per byte.
        assert_eq!(
            params.serialization_delay(1_000),
            SimDuration::from_nanos(800)
        );
    }
}
