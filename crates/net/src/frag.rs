//! Fragmentation and reassembly for multi-packet messages.
//!
//! Large requests (e.g. images for the image-transformer lambda) span
//! multiple packets. On the λ-NIC path they are committed to NIC memory
//! over RDMA and the lambda is triggered once the message is complete
//! (§4.2-D3). The NIC performs packet *reordering* for multi-packet RPCs;
//! the paper's footnote 3 measures that reordering four 100 B packets costs
//! 120 NPU instructions, i.e. [`REORDER_INSTRS_PER_FRAGMENT`] = 30.

use std::collections::HashMap;

use bytes::{Bytes, BytesMut};

use crate::packet::LambdaHdr;

/// NPU instructions charged per fragment that participates in reordering
/// (footnote 3: 120 instructions / 4 packets).
pub const REORDER_INSTRS_PER_FRAGMENT: u64 = 30;

/// Splits `payload` into at-most-`mtu`-byte fragments.
///
/// Returns at least one fragment (an empty payload yields one empty
/// fragment so a request always has a packet to carry its header).
///
/// # Panics
///
/// Panics if `mtu` is zero.
///
/// # Examples
///
/// ```
/// use lnic_net::frag::fragment;
/// use bytes::Bytes;
///
/// let frags = fragment(Bytes::from(vec![7u8; 2_500]), 1_000);
/// assert_eq!(frags.len(), 3);
/// assert_eq!(frags[2].len(), 500);
/// ```
pub fn fragment(payload: Bytes, mtu: usize) -> Vec<Bytes> {
    assert!(mtu > 0, "mtu must be positive");
    if payload.is_empty() {
        return vec![Bytes::new()];
    }
    let mut frags = Vec::with_capacity(payload.len().div_ceil(mtu));
    let mut rest = payload;
    while rest.len() > mtu {
        frags.push(rest.split_to(mtu));
    }
    frags.push(rest);
    frags
}

/// A message successfully reassembled by a [`Reassembler`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reassembled {
    /// The request id shared by all fragments.
    pub request_id: u64,
    /// The targeted lambda.
    pub workload_id: u32,
    /// The reassembled payload.
    pub payload: Bytes,
    /// Fragments that arrived out of order (needed reorder work).
    pub out_of_order_frags: u64,
    /// NPU instruction cost of the reordering that was performed.
    pub reorder_instrs: u64,
}

/// In-progress reassembly state for one request.
#[derive(Debug)]
struct Partial {
    workload_id: u32,
    frag_count: u16,
    received: Vec<Option<Bytes>>,
    received_count: u16,
    next_expected: u16,
    out_of_order: u64,
}

/// Reassembles multi-packet messages, tolerating arbitrary arrival order
/// and duplicated fragments.
///
/// # Examples
///
/// ```
/// use lnic_net::frag::{fragment, Reassembler};
/// use lnic_net::packet::{LambdaHdr, LambdaKind};
/// use bytes::Bytes;
///
/// let payload = Bytes::from(vec![1u8; 3_000]);
/// let frags = fragment(payload.clone(), 1_400);
/// let mut r = Reassembler::new();
/// let mut done = None;
/// // Deliver in reverse order to force reordering.
/// for (i, f) in frags.iter().enumerate().rev() {
///     let hdr = LambdaHdr {
///         workload_id: 5,
///         request_id: 77,
///         frag_index: i as u16,
///         frag_count: frags.len() as u16,
///         kind: LambdaKind::RdmaWrite,
///         return_code: 0,
///         ..Default::default()
///     };
///     if let Some(msg) = r.accept(hdr, f.clone()) {
///         done = Some(msg);
///     }
/// }
/// let msg = done.expect("all fragments delivered");
/// assert_eq!(msg.payload, payload);
/// assert!(msg.out_of_order_frags > 0);
/// ```
#[derive(Debug, Default)]
pub struct Reassembler {
    partials: HashMap<u64, Partial>,
    duplicates: u64,
    mismatched: u64,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// Accepts one fragment. Returns the completed message when this
    /// fragment was the last missing piece.
    ///
    /// Fragments whose `frag_count` disagrees with earlier fragments of the
    /// same request are dropped and counted in [`Reassembler::mismatched`].
    pub fn accept(&mut self, hdr: LambdaHdr, payload: Bytes) -> Option<Reassembled> {
        let partial = self
            .partials
            .entry(hdr.request_id)
            .or_insert_with(|| Partial {
                workload_id: hdr.workload_id,
                frag_count: hdr.frag_count,
                received: vec![None; hdr.frag_count as usize],
                received_count: 0,
                next_expected: 0,
                out_of_order: 0,
            });
        if partial.frag_count != hdr.frag_count
            || partial.workload_id != hdr.workload_id
            || hdr.frag_index >= hdr.frag_count
        {
            self.mismatched += 1;
            return None;
        }
        let slot = &mut partial.received[hdr.frag_index as usize];
        if slot.is_some() {
            self.duplicates += 1;
            return None;
        }
        *slot = Some(payload);
        partial.received_count += 1;
        if hdr.frag_index != partial.next_expected {
            partial.out_of_order += 1;
        } else {
            partial.next_expected += 1;
            // Skip over already-buffered out-of-order fragments.
            while (partial.next_expected as usize) < partial.received.len()
                && partial.received[partial.next_expected as usize].is_some()
            {
                partial.next_expected += 1;
            }
        }

        if partial.received_count < partial.frag_count {
            return None;
        }
        let partial = self
            .partials
            .remove(&hdr.request_id)
            .expect("just inserted");
        let mut payload = BytesMut::new();
        for frag in partial.received.into_iter() {
            payload.extend_from_slice(&frag.expect("all fragments received"));
        }
        Some(Reassembled {
            request_id: hdr.request_id,
            workload_id: partial.workload_id,
            payload: payload.freeze(),
            out_of_order_frags: partial.out_of_order,
            reorder_instrs: partial.out_of_order * REORDER_INSTRS_PER_FRAGMENT,
        })
    }

    /// Number of requests still awaiting fragments.
    pub fn in_progress(&self) -> usize {
        self.partials.len()
    }

    /// Duplicate fragments observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Fragments dropped for inconsistent headers.
    pub fn mismatched(&self) -> u64 {
        self.mismatched
    }

    /// Drops partial state for `request_id` (e.g. on sender give-up).
    pub fn abort(&mut self, request_id: u64) -> bool {
        self.partials.remove(&request_id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::LambdaKind;
    use proptest::prelude::*;

    fn hdr(request_id: u64, idx: u16, count: u16) -> LambdaHdr {
        LambdaHdr {
            workload_id: 1,
            request_id,
            frag_index: idx,
            frag_count: count,
            kind: LambdaKind::RdmaWrite,
            return_code: 0,
            ..Default::default()
        }
    }

    #[test]
    fn fragment_covers_payload_exactly() {
        let payload = Bytes::from((0u8..=255).collect::<Vec<_>>());
        let frags = fragment(payload.clone(), 100);
        assert_eq!(frags.len(), 3);
        assert_eq!(frags[0].len(), 100);
        assert_eq!(frags[2].len(), 56);
        let joined: Vec<u8> = frags.iter().flat_map(|f| f.iter().copied()).collect();
        assert_eq!(&joined[..], &payload[..]);
    }

    #[test]
    fn empty_payload_yields_single_empty_fragment() {
        let frags = fragment(Bytes::new(), 100);
        assert_eq!(frags, vec![Bytes::new()]);
    }

    #[test]
    fn in_order_delivery_needs_no_reorder() {
        let mut r = Reassembler::new();
        let frags = fragment(Bytes::from(vec![9u8; 450]), 100);
        let n = frags.len() as u16;
        let mut done = None;
        for (i, f) in frags.into_iter().enumerate() {
            done = r.accept(hdr(1, i as u16, n), f);
        }
        let msg = done.unwrap();
        assert_eq!(msg.out_of_order_frags, 0);
        assert_eq!(msg.reorder_instrs, 0);
        assert_eq!(msg.payload.len(), 450);
        assert_eq!(r.in_progress(), 0);
    }

    #[test]
    fn four_packet_reorder_costs_120_instructions() {
        // Reproduces footnote 3: four 100 B packets fully reversed.
        let mut r = Reassembler::new();
        let frags = fragment(Bytes::from(vec![7u8; 400]), 100);
        let mut done = None;
        for (i, f) in frags.iter().enumerate().rev() {
            done = r.accept(hdr(2, i as u16, 4), f.clone());
        }
        let msg = done.unwrap();
        assert_eq!(msg.out_of_order_frags, 3); // all but the final in-order tail
                                               // Paper charges per *reordered packet*; a fully-reversed burst of 4
                                               // reorders at most 4 fragments: 120 instructions at 30 each.
        assert!(msg.reorder_instrs <= 4 * REORDER_INSTRS_PER_FRAGMENT);
        assert_eq!(msg.reorder_instrs, 90);
    }

    #[test]
    fn duplicates_are_counted_not_double_assembled() {
        let mut r = Reassembler::new();
        assert!(r.accept(hdr(3, 0, 2), Bytes::from_static(b"a")).is_none());
        assert!(r.accept(hdr(3, 0, 2), Bytes::from_static(b"a")).is_none());
        assert_eq!(r.duplicates(), 1);
        let msg = r.accept(hdr(3, 1, 2), Bytes::from_static(b"b")).unwrap();
        assert_eq!(&msg.payload[..], b"ab");
    }

    #[test]
    fn mismatched_frag_count_rejected() {
        let mut r = Reassembler::new();
        assert!(r.accept(hdr(4, 0, 3), Bytes::new()).is_none());
        assert!(r.accept(hdr(4, 1, 2), Bytes::new()).is_none());
        assert_eq!(r.mismatched(), 1);
        assert_eq!(r.in_progress(), 1);
    }

    #[test]
    fn abort_discards_partial_state() {
        let mut r = Reassembler::new();
        assert!(r.accept(hdr(5, 0, 2), Bytes::new()).is_none());
        assert!(r.abort(5));
        assert!(!r.abort(5));
        assert_eq!(r.in_progress(), 0);
    }

    #[test]
    fn fragment_exact_mtu_boundaries() {
        // len == mtu: one full fragment, no empty tail.
        assert_eq!(fragment(Bytes::from(vec![1u8; 100]), 100).len(), 1);
        // len == mtu + 1: the tail carries exactly the overflow byte.
        let frags = fragment(Bytes::from(vec![2u8; 101]), 100);
        assert_eq!(frags.len(), 2);
        assert_eq!(frags[1].len(), 1);
        // mtu == 1 degenerates to one fragment per byte.
        assert_eq!(fragment(Bytes::from(vec![3u8; 7]), 1).len(), 7);
    }

    #[test]
    fn single_fragment_message_completes_immediately() {
        let mut r = Reassembler::new();
        let msg = r
            .accept(hdr(20, 0, 1), Bytes::from_static(b"solo"))
            .unwrap();
        assert_eq!(&msg.payload[..], b"solo");
        assert_eq!(msg.out_of_order_frags, 0);
        assert_eq!(msg.reorder_instrs, 0);
        assert_eq!(r.in_progress(), 0);
    }

    #[test]
    fn out_of_range_frag_index_rejected() {
        let mut r = Reassembler::new();
        // index == count is one past the end and must never land in a slot.
        assert!(r
            .accept(hdr(21, 2, 2), Bytes::from_static(b"junk"))
            .is_none());
        assert_eq!(r.mismatched(), 1);
        // The request still assembles from its valid fragments.
        assert!(r.accept(hdr(21, 0, 2), Bytes::from_static(b"a")).is_none());
        let msg = r.accept(hdr(21, 1, 2), Bytes::from_static(b"b")).unwrap();
        assert_eq!(&msg.payload[..], b"ab");
    }

    #[test]
    fn zero_frag_count_rejected_but_stalls_until_abort() {
        // A zero-count header can never complete (there is no last
        // missing piece); the guard drops it, and the empty partial it
        // seeded is reclaimed through the sender give-up path.
        let mut r = Reassembler::new();
        assert!(r.accept(hdr(22, 0, 0), Bytes::new()).is_none());
        assert_eq!(r.mismatched(), 1);
        assert_eq!(r.in_progress(), 1);
        assert!(r.abort(22));
        assert_eq!(r.in_progress(), 0);
    }

    #[test]
    fn workload_id_mismatch_rejected() {
        let mut r = Reassembler::new();
        assert!(r.accept(hdr(23, 0, 2), Bytes::from_static(b"a")).is_none());
        let mut stray = hdr(23, 1, 2);
        stray.workload_id = 9;
        assert!(r.accept(stray, Bytes::from_static(b"?")).is_none());
        assert_eq!(r.mismatched(), 1);
        // The honest fragment still completes the message under the
        // original workload id.
        let msg = r.accept(hdr(23, 1, 2), Bytes::from_static(b"b")).unwrap();
        assert_eq!(msg.workload_id, 1);
        assert_eq!(&msg.payload[..], b"ab");
    }

    #[test]
    fn late_replay_after_completion_seeds_fresh_partial() {
        let mut r = Reassembler::new();
        assert!(r.accept(hdr(24, 0, 2), Bytes::from_static(b"a")).is_none());
        assert!(r.accept(hdr(24, 1, 2), Bytes::from_static(b"b")).is_some());
        // Completion dropped the request's state, so a straggler replay
        // is indistinguishable from a new request: it opens a fresh
        // partial (not a duplicate) that only abort/give-up reclaims.
        assert!(r.accept(hdr(24, 0, 2), Bytes::from_static(b"a")).is_none());
        assert_eq!(r.duplicates(), 0);
        assert_eq!(r.in_progress(), 1);
        assert!(r.abort(24));
    }

    #[test]
    fn gap_fill_skips_buffered_run_when_counting_reorders() {
        // 0, 2, 3, 1 of four: fragments 2 and 3 arrive early (two
        // reorders), then 1 lands exactly at next_expected and the
        // cursor skips the buffered run — no extra reorder charged.
        let mut r = Reassembler::new();
        let frags = fragment(Bytes::from(vec![5u8; 400]), 100);
        let mut done = None;
        for &i in &[0usize, 2, 3, 1] {
            done = r.accept(hdr(25, i as u16, 4), frags[i].clone());
        }
        let msg = done.unwrap();
        assert_eq!(msg.out_of_order_frags, 2);
        assert_eq!(msg.reorder_instrs, 2 * REORDER_INSTRS_PER_FRAGMENT);
        assert_eq!(msg.payload.len(), 400);
    }

    #[test]
    fn interleaved_requests_assemble_independently() {
        let mut r = Reassembler::new();
        assert!(r.accept(hdr(10, 0, 2), Bytes::from_static(b"x")).is_none());
        assert!(r.accept(hdr(11, 1, 2), Bytes::from_static(b"B")).is_none());
        let m10 = r.accept(hdr(10, 1, 2), Bytes::from_static(b"y")).unwrap();
        let m11 = r.accept(hdr(11, 0, 2), Bytes::from_static(b"A")).unwrap();
        assert_eq!(&m10.payload[..], b"xy");
        assert_eq!(&m11.payload[..], b"AB");
        assert_eq!(m10.out_of_order_frags, 0);
        assert_eq!(m11.out_of_order_frags, 1);
    }

    proptest! {
        /// Reassembly inverts fragmentation under any permutation of
        /// fragment arrival order.
        #[test]
        fn reassembly_inverts_fragmentation(
            payload in proptest::collection::vec(any::<u8>(), 1..5_000),
            mtu in 1usize..1_500,
            seed in any::<u64>(),
        ) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let payload = Bytes::from(payload);
            let frags = fragment(payload.clone(), mtu);
            let n = frags.len() as u16;
            let mut order: Vec<usize> = (0..frags.len()).collect();
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            order.shuffle(&mut rng);

            let mut r = Reassembler::new();
            let mut done = None;
            for &i in &order {
                let out = r.accept(hdr(99, i as u16, n), frags[i].clone());
                if out.is_some() {
                    prop_assert!(done.is_none());
                    done = out;
                }
            }
            let msg = done.expect("complete after all fragments");
            prop_assert_eq!(msg.payload, payload);
            prop_assert_eq!(r.in_progress(), 0);
            prop_assert_eq!(r.duplicates(), 0);
        }

        /// A Duplicate fault replays fragments; under any interleaving of
        /// originals and replays the message completes exactly once, with
        /// the replays counted and the payload intact.
        #[test]
        fn reassembly_survives_duplication_and_reorder(
            payload in proptest::collection::vec(any::<u8>(), 1..4_000),
            mtu in 1usize..1_200,
            copies in proptest::collection::vec(1usize..4, 64),
            seed in any::<u64>(),
        ) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let payload = Bytes::from(payload);
            let frags = fragment(payload.clone(), mtu);
            let n = frags.len() as u16;
            let mut deliveries: Vec<usize> = Vec::new();
            for i in 0..frags.len() {
                for _ in 0..copies[i % copies.len()] {
                    deliveries.push(i);
                }
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            deliveries.shuffle(&mut rng);

            let mut r = Reassembler::new();
            let mut fed = 0u64;
            let mut done = None;
            for &i in &deliveries {
                fed += 1;
                if let Some(msg) = r.accept(hdr(42, i as u16, n), frags[i].clone()) {
                    done = Some(msg);
                    break; // sender stops once the message completed
                }
            }
            let msg = done.expect("complete once every index appeared");
            prop_assert_eq!(msg.payload, payload);
            prop_assert_eq!(r.in_progress(), 0);
            // Everything fed beyond one copy per fragment was a replay.
            prop_assert_eq!(r.duplicates(), fed - u64::from(n));
        }

        /// A loss burst drops a subset of fragments; the message stays
        /// incomplete until the sender retransmits the whole set, after
        /// which it completes exactly once with the payload intact.
        #[test]
        fn reassembly_completes_after_loss_burst_and_retransmit(
            payload in proptest::collection::vec(any::<u8>(), 1..4_000),
            mtu in 1usize..600,
            loss_seed in any::<u64>(),
            order_seed in any::<u64>(),
        ) {
            use rand::seq::SliceRandom;
            use rand::{Rng, SeedableRng};
            let payload = Bytes::from(payload);
            let frags = fragment(payload.clone(), mtu);
            let n = frags.len() as u16;
            let mut loss_rng = rand::rngs::SmallRng::seed_from_u64(loss_seed);
            // Lose at least one fragment so the first pass cannot finish.
            let mut lost: Vec<bool> = (0..frags.len()).map(|_| loss_rng.gen_bool(0.4)).collect();
            if lost.iter().all(|l| !l) {
                lost[0] = true;
            }
            let survivors = lost.iter().filter(|l| !**l).count();

            let mut r = Reassembler::new();
            let mut order: Vec<usize> = (0..frags.len()).collect();
            let mut rng = rand::rngs::SmallRng::seed_from_u64(order_seed);
            order.shuffle(&mut rng);
            for &i in &order {
                if !lost[i] {
                    prop_assert!(r.accept(hdr(7, i as u16, n), frags[i].clone()).is_none());
                }
            }
            prop_assert_eq!(r.in_progress(), usize::from(survivors > 0));

            // Timeout: the sender retransmits the complete fragment set
            // and stops as soon as the message completes.
            order.shuffle(&mut rng);
            let mut done = None;
            let mut redelivered_survivors = 0u64;
            for &i in &order {
                if !lost[i] {
                    redelivered_survivors += 1;
                }
                if let Some(msg) = r.accept(hdr(7, i as u16, n), frags[i].clone()) {
                    done = Some(msg);
                    break;
                }
            }
            let msg = done.expect("complete after retransmit");
            prop_assert_eq!(msg.payload, payload);
            prop_assert_eq!(r.in_progress(), 0);
            // Only re-deliveries of first-pass survivors are replays.
            prop_assert_eq!(r.duplicates(), redelivered_survivors);
        }

        /// A Corrupt fault that mangles a fragment header (and slips past
        /// the packet checksums) is rejected by the consistency guard
        /// without poisoning the assembly of the valid fragments.
        #[test]
        fn corrupted_headers_are_rejected_without_poisoning_assembly(
            // Payload strictly larger than the mtu: at least two
            // fragments, so the corrupt frame lands mid-assembly (a
            // corrupt frame arriving *first* seeds the partial and the
            // request stalls until abort — covered by the abort test).
            payload in proptest::collection::vec(any::<u8>(), 601..3_000),
            mtu in 1usize..600,
            seed in any::<u64>(),
            bogus_at in any::<u64>(),
        ) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let payload = Bytes::from(payload);
            let frags = fragment(payload.clone(), mtu);
            let n = frags.len() as u16;
            let mut order: Vec<usize> = (0..frags.len()).collect();
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
            let bogus_pos = 1 + (bogus_at as usize) % (order.len() - 1);

            let mut r = Reassembler::new();
            let mut done = None;
            for (pos, &i) in order.iter().enumerate() {
                if pos == bogus_pos {
                    // Same request, inconsistent frag_count: must be
                    // dropped, not spliced into the message.
                    let out = r.accept(hdr(13, 0, n + 1), Bytes::from_static(b"junk"));
                    prop_assert!(out.is_none());
                }
                let out = r.accept(hdr(13, i as u16, n), frags[i].clone());
                if out.is_some() {
                    prop_assert!(done.is_none());
                    done = out;
                }
            }
            let msg = done.expect("valid fragments still assemble");
            prop_assert_eq!(msg.payload, payload);
            prop_assert_eq!(r.mismatched(), 1);
            prop_assert_eq!(r.in_progress(), 0);
        }
    }
}
