//! Criterion micro-benchmarks for the substrate hot paths: the
//! discrete-event engine, packet codecs, fragmentation/reordering
//! (footnote 3), the Match+Lambda interpreter and compiler, the WFQ,
//! the memcached protocol, and Raft leader election.

use std::sync::Arc;

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

use lnic_mlambda::compile::{compile, CompileOptions};
use lnic_mlambda::interp::{run_to_completion, ObjectMemory, RequestCtx};
use lnic_mlambda::program::DispatchCtx;
use lnic_net::addr::{Ipv4Addr, MacAddr, SocketAddr};
use lnic_net::frag::{fragment, Reassembler};
use lnic_net::packet::{LambdaHdr, LambdaKind, Packet};
use lnic_sim::prelude::*;
use lnic_workloads::image::RgbaImage;
use lnic_workloads::{benchmark_program, web_program, SuiteConfig};

fn bench_event_queue(c: &mut Criterion) {
    #[derive(Debug)]
    struct Tick(u32);
    struct Counter {
        n: u64,
    }
    impl Component for Counter {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMessage) {
            let t = msg.downcast::<Tick>().unwrap();
            self.n += 1;
            if t.0 > 0 {
                ctx.send_self(SimDuration::from_nanos(10), Tick(t.0 - 1));
            }
        }
    }
    c.bench_function("sim/10k_chained_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let id = sim.add(Counter { n: 0 });
            sim.post(id, SimDuration::ZERO, Tick(10_000));
            sim.run();
            black_box(sim.events_processed())
        })
    });
}

fn bench_packet_codec(c: &mut Criterion) {
    let packet = Packet::builder()
        .eth(MacAddr::from_index(1), MacAddr::from_index(2))
        .udp(
            SocketAddr::new(Ipv4Addr::node(1), 7000),
            SocketAddr::new(Ipv4Addr::node(2), 8000),
        )
        .lambda(LambdaHdr::request(3, 99))
        .payload(Bytes::from(vec![7u8; 1400]))
        .build();
    c.bench_function("net/encode_1400B", |b| {
        b.iter(|| black_box(packet.encode()))
    });
    let wire = packet.encode();
    c.bench_function("net/decode_1400B", |b| {
        b.iter(|| black_box(Packet::decode(&wire).unwrap()))
    });
}

fn bench_reorder(c: &mut Criterion) {
    // Footnote 3: reordering four 100 B packets.
    c.bench_function("net/reorder_4x100B", |b| {
        let frags = fragment(Bytes::from(vec![7u8; 400]), 100);
        b.iter(|| {
            let mut r = Reassembler::new();
            let mut out = None;
            for (i, f) in frags.iter().enumerate().rev() {
                let hdr = LambdaHdr {
                    workload_id: 1,
                    request_id: 1,
                    frag_index: i as u16,
                    frag_count: 4,
                    kind: LambdaKind::RdmaWrite,
                    return_code: 0,
                    ..Default::default()
                };
                out = r.accept(hdr, f.clone());
            }
            black_box(out.unwrap().reorder_instrs)
        })
    });
    c.bench_function("net/reassemble_64KiB", |b| {
        let frags = fragment(Bytes::from(vec![7u8; 64 * 1024]), 1400);
        let n = frags.len() as u16;
        b.iter(|| {
            let mut r = Reassembler::new();
            let mut out = None;
            for (i, f) in frags.iter().enumerate() {
                let hdr = LambdaHdr {
                    workload_id: 1,
                    request_id: 1,
                    frag_index: i as u16,
                    frag_count: n,
                    kind: LambdaKind::RdmaWrite,
                    return_code: 0,
                    ..Default::default()
                };
                out = r.accept(hdr, f.clone());
            }
            black_box(out.unwrap().payload.len())
        })
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let cfg = SuiteConfig::default();
    let web = Arc::new(web_program(&cfg));
    c.bench_function("mlambda/web_server_exec", |b| {
        let mut mem = ObjectMemory::for_lambda(&web.lambdas[0]);
        b.iter(|| {
            let ctx = RequestCtx {
                payload: Bytes::copy_from_slice(&3u16.to_be_bytes()),
                ..Default::default()
            };
            black_box(
                run_to_completion(&web, 0, ctx, &mut mem, 10_000_000, |_, _| Bytes::new())
                    .unwrap()
                    .stats
                    .instrs,
            )
        })
    });

    let image = Arc::new(lnic_workloads::image_program(&cfg));
    let rgba = Bytes::from(RgbaImage::synthetic(32, 32).data);
    c.bench_function("mlambda/image_32x32_exec", |b| {
        let mut mem = ObjectMemory::for_lambda(&image.lambdas[0]);
        b.iter(|| {
            let ctx = RequestCtx {
                payload: rgba.clone(),
                ..Default::default()
            };
            black_box(
                run_to_completion(&image, 0, ctx, &mut mem, 100_000_000, |_, _| Bytes::new())
                    .unwrap()
                    .response
                    .len(),
            )
        })
    });
}

fn bench_compiler(c: &mut Criterion) {
    let program = benchmark_program(&SuiteConfig::default());
    c.bench_function("mlambda/compile_naive", |b| {
        b.iter(|| {
            black_box(
                compile(&program, &CompileOptions::naive())
                    .unwrap()
                    .binary
                    .len(),
            )
        })
    });
    c.bench_function("mlambda/compile_optimized", |b| {
        b.iter(|| {
            black_box(
                compile(&program, &CompileOptions::optimized())
                    .unwrap()
                    .binary
                    .len(),
            )
        })
    });
    let fw = compile(&program, &CompileOptions::optimized()).unwrap();
    c.bench_function("mlambda/match_dispatch", |b| {
        let ctx = DispatchCtx {
            workload_id: 4,
            has_lambda_hdr: true,
            ..Default::default()
        };
        b.iter(|| black_box(fw.program.dispatch(&ctx)))
    });
}

fn bench_wfq(c: &mut Criterion) {
    use lnic_nic::WeightedFairQueue;
    c.bench_function("nic/wfq_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = WeightedFairQueue::new();
            q.set_weight(0, 2.0);
            q.set_weight(1, 1.0);
            q.set_weight(2, 4.0);
            for i in 0..1_000 {
                q.push(i % 3, i);
            }
            let mut sum = 0usize;
            while let Some((l, _)) = q.pop() {
                sum += l;
            }
            black_box(sum)
        })
    });
}

fn bench_kv_protocol(c: &mut Criterion) {
    use lnic_kv::protocol::{Request, Response};
    let set = Request::Set {
        key: "user:12345".into(),
        flags: 0,
        value: Bytes::from(vec![9u8; 512]),
    };
    let wire = set.encode();
    c.bench_function("kv/parse_set_512B", |b| {
        b.iter(|| black_box(Request::decode(&wire).unwrap()))
    });
    let value = Response::Value {
        key: "user:12345".into(),
        flags: 0,
        value: Bytes::from(vec![9u8; 512]),
    }
    .encode();
    c.bench_function("kv/parse_value_512B", |b| {
        b.iter(|| black_box(Response::decode(&value).unwrap()))
    });
}

fn bench_raft_election(c: &mut Criterion) {
    use lnic_raft::{NodeId, RaftConfig, RaftNet, RaftNode, Role, StartNode};
    c.bench_function("raft/3node_election", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(9);
            let net = sim.add(RaftNet::new(
                Vec::new(),
                SimDuration::from_micros(50),
                SimDuration::from_micros(200),
                0.0,
            ));
            let nodes: Vec<ComponentId> = (0..3)
                .map(|i| sim.add(RaftNode::new(NodeId(i), 3, net, RaftConfig::default())))
                .collect();
            *sim.get_mut::<RaftNet>(net).unwrap() = RaftNet::new(
                nodes.clone(),
                SimDuration::from_micros(50),
                SimDuration::from_micros(200),
                0.0,
            );
            for &n in &nodes {
                sim.post(n, SimDuration::ZERO, StartNode);
            }
            sim.run_for(SimDuration::from_secs(1));
            let leaders = nodes
                .iter()
                .filter(|&&n| sim.get::<RaftNode>(n).unwrap().role() == Role::Leader)
                .count();
            black_box(leaders)
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    use lnic::prelude::*;
    c.bench_function("e2e/nic_web_request_sim", |b| {
        b.iter(|| {
            let mut bed = build_testbed(TestbedConfig::new(BackendKind::Nic).seed(1).workers(1));
            bed.preload(&Arc::new(web_program(&SuiteConfig::default())));
            let gateway = bed.gateway;
            let driver = bed.sim.add(ClosedLoopDriver::new(
                gateway,
                vec![JobSpec {
                    workload_id: lnic_workloads::WEB_ID.0,
                    payload: PayloadSpec::Page(0),
                }],
                1,
                SimDuration::from_micros(10),
                Some(10),
            ));
            bed.sim.post(driver, SimDuration::ZERO, StartDriver);
            bed.sim.run();
            black_box(
                bed.sim
                    .get::<ClosedLoopDriver>(driver)
                    .unwrap()
                    .completed()
                    .len(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_packet_codec,
    bench_reorder,
    bench_interpreter,
    bench_compiler,
    bench_wfq,
    bench_kv_protocol,
    bench_raft_election,
    bench_end_to_end,
);
criterion_main!(benches);
