//! # lnic-bench: experiment harnesses for every table and figure
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§6), printing the measured series next to the
//! paper's reported values. This library holds the shared experiment
//! plumbing: testbed setup per workload, latency/throughput runs, and
//! report formatting.
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig6_latency_ecdf` | Figure 6 (isolation latency ECDFs) |
//! | `fig7_throughput` | Figure 7 (1-thread / 56-thread throughput) |
//! | `fig8_context_switch` | Figure 8 + Table 2 (three-lambda contention) |
//! | `fig9_optimizer` | Figure 9 (optimizer effectiveness) |
//! | `table1_nic_classes` | Table 1 (SmartNIC class survey) |
//! | `table3_resources` | Table 3 (resource utilization) |
//! | `table4_startup` | Table 4 (workload size & startup time) |
//! | `ablations` | design-choice studies beyond the paper |
//! | `sweep_concurrency` | closed-loop saturation knees (extension) |
//! | `sweep_load` | open-loop tail latency vs offered load (extension) |

#![warn(missing_docs)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use lnic::prelude::*;
use lnic_kv::KvServer;
use lnic_sim::prelude::*;
use lnic_workloads::image::RgbaImage;
use lnic_workloads::{benchmark_program, SuiteConfig, IMAGE_ID, KV_GET_ID, WEB_ID};

/// The three benchmark workloads of §6.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Web server (§6.2a).
    Web,
    /// Key-value client (§6.2b); GETs against a populated store.
    KvClient,
    /// Image transformer (§6.2c).
    Image,
}

impl Workload {
    /// All three, in the paper's order.
    pub const ALL: [Workload; 3] = [Workload::Web, Workload::KvClient, Workload::Image];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Web => "Web Server",
            Workload::KvClient => "Key-Value Client",
            Workload::Image => "Image Transformer",
        }
    }

    /// The workload id driven by the experiment.
    pub fn workload_id(self) -> u32 {
        match self {
            Workload::Web => WEB_ID.0,
            Workload::KvClient => KV_GET_ID.0,
            Workload::Image => IMAGE_ID.0,
        }
    }

    /// The request generator for this workload.
    pub fn payload_spec(self) -> PayloadSpec {
        match self {
            Workload::Web => PayloadSpec::RandomPage { count: 64 },
            Workload::KvClient => PayloadSpec::KvGet { id_range: KV_KEYS },
            Workload::Image => {
                PayloadSpec::Fixed(Bytes::from(RgbaImage::synthetic(IMAGE_DIM, IMAGE_DIM).data))
            }
        }
    }
}

/// Keys pre-populated in the memcached store for the KV workload.
pub const KV_KEYS: u32 = 1_000;
/// Image dimension used by the image-transformer workload.
pub const IMAGE_DIM: usize = 128;
/// Client think time of the closed-loop driver (request preparation on
/// the load-generating host).
pub const THINK_TIME: SimDuration = SimDuration::from_micros(80);

/// Parsed form of the shared `--trace` command-line flag.
///
/// Every bench binary accepts:
///
/// * `--trace` — attach a [`HashSink`] to each simulation and print the
///   stable 64-bit trace hash when the run finishes;
/// * `--trace=DIR` — additionally stream every structured event to
///   `DIR/<n>-<label>.jsonl` through a [`JsonlSink`].
#[derive(Debug, Default)]
pub struct TraceOpts {
    /// `--trace` was present on the command line.
    pub enabled: bool,
    /// Directory for JSONL trace files (`--trace=DIR` form).
    pub dir: Option<PathBuf>,
}

/// The process-wide `--trace` options, parsed from `std::env::args` on
/// first use.
pub fn trace_opts() -> &'static TraceOpts {
    static OPTS: OnceLock<TraceOpts> = OnceLock::new();
    OPTS.get_or_init(|| {
        let mut opts = TraceOpts::default();
        for arg in std::env::args().skip(1) {
            if arg == "--trace" {
                opts.enabled = true;
            } else if let Some(dir) = arg.strip_prefix("--trace=") {
                opts.enabled = true;
                opts.dir = Some(PathBuf::from(dir));
            }
        }
        opts
    })
}

/// Monotone run counter so JSONL files from multi-run binaries don't
/// collide.
static TRACE_RUNS: AtomicU64 = AtomicU64::new(0);

/// Attaches the `--trace` sinks to a testbed. Must be called before the
/// simulation first runs (sinks attached later would miss events). A
/// no-op — and zero per-event cost — when the flag is absent.
pub fn attach_trace(bed: &mut Testbed, label: &str) {
    let opts = trace_opts();
    if !opts.enabled {
        return;
    }
    bed.sim.add_trace_sink(Box::new(HashSink::new()));
    if let Some(dir) = &opts.dir {
        std::fs::create_dir_all(dir).expect("create trace dir");
        let n = TRACE_RUNS.fetch_add(1, Ordering::Relaxed);
        let slug: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = dir.join(format!("{n:03}-{slug}.jsonl"));
        bed.sim.add_trace_sink(Box::new(
            JsonlSink::create(&path).expect("create trace file"),
        ));
    }
}

/// Finishes tracing on `bed` and prints the run's stable 64-bit trace
/// hash. A no-op without `--trace`.
pub fn finish_trace(bed: &mut Testbed, label: &str) {
    if !trace_opts().enabled {
        return;
    }
    bed.finish_tracing();
    if let Some(h) = bed.sim.trace_sink::<HashSink>() {
        println!(
            "trace {label}: events={} hash={:#018x}",
            h.count(),
            h.hash()
        );
    }
}

/// Builds a testbed with the benchmark suite deployed and the KV store
/// populated.
pub fn standard_testbed(backend: BackendKind, seed: u64, worker_threads: usize) -> Testbed {
    let cfg = SuiteConfig::default();
    let mut bed = build_testbed(
        TestbedConfig::new(backend)
            .seed(seed)
            .worker_threads(worker_threads),
    );
    bed.preload(&Arc::new(benchmark_program(&cfg)));
    populate_kv(&mut bed, KV_KEYS);
    bed
}

/// Pre-populates `user:0..n` in the memcached store.
pub fn populate_kv(bed: &mut Testbed, n: u32) {
    let kv = bed
        .sim
        .get_mut::<KvServer>(bed.kv_server)
        .expect("kv server exists");
    for id in 0..n {
        kv.insert(
            format!("user:{id}"),
            0,
            Bytes::from(format!("profile-record-{id:08}")),
        );
    }
}

/// The outcome of one experiment run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Wire-to-wire latencies (post-warmup, successful requests).
    pub latency: Series,
    /// Successful-request throughput over the active window.
    pub throughput_rps: f64,
    /// Requests that failed.
    pub failed: u64,
}

/// Runs `workload` on `backend` with a closed-loop driver.
///
/// `concurrency` logical client threads each issue
/// `requests_per_thread` requests; the first `warmup` completions are
/// excluded from the latency series.
pub fn run_workload(
    backend: BackendKind,
    workload: Workload,
    concurrency: usize,
    requests_per_thread: u64,
    warmup: usize,
    seed: u64,
) -> RunResult {
    let mut bed = standard_testbed(backend, seed, 56.max(concurrency));
    let label = format!(
        "{}-{}-c{concurrency}-seed{seed}",
        backend.name(),
        workload.name()
    );
    attach_trace(&mut bed, &label);
    let gateway = bed.gateway;
    let driver = bed.sim.add(ClosedLoopDriver::new(
        gateway,
        vec![JobSpec {
            workload_id: workload.workload_id(),
            payload: workload.payload_spec(),
        }],
        concurrency,
        THINK_TIME,
        Some(requests_per_thread),
    ));
    bed.sim.post(driver, SimDuration::ZERO, StartDriver);
    bed.sim.run();
    finish_trace(&mut bed, &label);
    let d = bed.sim.get::<ClosedLoopDriver>(driver).unwrap();
    RunResult {
        latency: d.latency_series(warmup),
        throughput_rps: d.throughput_rps(),
        failed: d.completed().iter().filter(|c| c.failed).count() as u64,
    }
}

/// Formats a nanosecond quantity the way the paper's figures do
/// (milliseconds with three significant digits).
pub fn fmt_ms(ns: f64) -> String {
    format!("{:.4}", ns / 1e6)
}

/// Prints an ECDF as `value_ms fraction` rows, downsampled to at most
/// `points` rows (gnuplot/matplotlib-ready).
pub fn print_ecdf(label: &str, series: &Series, points: usize) {
    let ecdf = series.ecdf();
    let all = ecdf.points();
    println!("# ECDF {label} ({} samples)", series.len());
    println!("# latency_ms cumulative_fraction");
    let step = all.len().div_ceil(points.max(1)).max(1);
    for (i, (v, f)) in all.iter().enumerate() {
        if i % step == 0 || i + 1 == all.len() {
            println!("{} {f:.4}", fmt_ms(*v as f64));
        }
    }
}

/// A `paper vs measured` comparison row.
pub struct Comparison {
    /// Row label.
    pub label: String,
    /// The paper's reported value (display form).
    pub paper: String,
    /// The measured value (display form).
    pub measured: String,
}

/// Prints a paper-vs-measured table.
pub fn print_comparison(title: &str, rows: &[Comparison]) {
    println!("\n== {title} ==");
    println!("{:<42} {:>18} {:>18}", "", "paper", "this reproduction");
    for r in rows {
        println!("{:<42} {:>18} {:>18}", r.label, r.paper, r.measured);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_testbed_serves_all_workloads() {
        for workload in Workload::ALL {
            let r = run_workload(BackendKind::Nic, workload, 1, 3, 0, 7);
            assert_eq!(r.failed, 0, "{workload:?}");
            assert_eq!(r.latency.len(), 3, "{workload:?}");
            assert!(r.throughput_rps > 0.0, "{workload:?}");
        }
    }

    #[test]
    fn kv_population_prevents_misses() {
        let r = run_workload(BackendKind::Nic, Workload::KvClient, 2, 10, 0, 3);
        assert_eq!(r.failed, 0, "all GETs hit pre-populated keys");
    }

    #[test]
    fn fmt_and_ecdf_helpers() {
        assert_eq!(fmt_ms(1_500_000.0), "1.5000");
        let mut s = Series::new("x");
        for i in 1..=10u64 {
            s.record_ns(i * 1000);
        }
        // Smoke: printing must not panic.
        print_ecdf("test", &s, 5);
    }
}
