//! Disaster-recovery drill: per-cell RTO for correlated failures, with
//! a re-adoption vs. resubmit-timer ablation.
//!
//! The robustness claim under test: after a correlated failure
//! (restart storm, rack loss, controller+shard co-crash) the tier loses
//! zero acked completions, delivers zero duplicates, and the recovery
//! time for requests orphaned on the failed shard(s) is bounded by the
//! lease horizon — not the router's resubmit watchdog. The baseline arm
//! disables incarnation-triggered re-adoption (`TierConfig.readopt =
//! false`), so a stormed shard's orphans must wait out the 1 s resubmit
//! timer instead of being re-homed the moment the shard's ack reveals a
//! new incarnation.
//!
//! RTO here is measured per orphan: the set of client requests pending
//! on a shard at the instant it crashes, each scored as `delivered_at -
//! crash_at`; a cell reports the max (worst orphan) and mean.
//!
//! Cells (× {readopt, baseline} arms):
//!
//! * `restart_storm` — staggered crash/restart of all three shards,
//!   each back inside its lease window.
//! * `rack_loss` — a shard and the worker behind it fail together; the
//!   deployment controller re-images the recovered NIC (its instruction
//!   store is volatile) and the failover controller re-places the dead
//!   worker's lambdas meanwhile.
//! * `ctrl_co_crash` — the tier controller and a shard crash together;
//!   the controller restores from its snapshot and the restored
//!   controller deposes the still-dark shard.
//!
//! Emits `results/BENCH_disaster.json`. `--smoke` shrinks the request
//! budget for CI; `--trace=DIR` writes per-run JSONL traces.
//!
//! Run with: `cargo run --release -p lnic-bench --bin disaster_recovery`

use std::fmt::Write as _;
use std::sync::Arc;

use lnic::failover::FailoverConfig;
use lnic::gwtier::{ShardMap, ShardRouter, TierConfig, TierController};
use lnic::prelude::*;
use lnic_bench::{attach_trace, finish_trace};
use lnic_sim::prelude::*;
use lnic_workloads::three_web_servers;

const WORKERS: usize = 3;
const THREADS: usize = 8;
/// Zero think: every thread keeps one request in flight at all times,
/// so the instant a shard crashes there are live requests pending on
/// it — the orphans the RTO is scored over.
const THINK: SimDuration = SimDuration::ZERO;
const EXTRA_SHARDS: usize = 2; // three shards total
/// Both arms run with the watchdog slowed to 1 s so the re-adoption
/// path (bounded by the 150 ms lease horizon) is clearly separable
/// from resubmit-timer recovery.
const RESUBMIT: SimDuration = SimDuration::from_secs(1);

#[derive(Clone, Copy, PartialEq, Eq)]
enum Cell {
    RestartStorm,
    RackLoss,
    CtrlCoCrash,
}

impl Cell {
    fn name(self) -> &'static str {
        match self {
            Cell::RestartStorm => "restart_storm",
            Cell::RackLoss => "rack_loss",
            Cell::CtrlCoCrash => "ctrl_co_crash",
        }
    }
}

/// The shard the fault is aimed at: whichever one owns client 0 under
/// the initial map — guaranteed to carry closed-loop traffic.
fn fault_target(cfg: &TierConfig) -> usize {
    let members: Vec<u32> = (0..=EXTRA_SHARDS as u32).collect();
    ShardMap::new(1, &members, cfg.vnodes).route(0) as usize
}

struct CellResult {
    cell: &'static str,
    readopt: bool,
    issued: u64,
    completed: u64,
    failed: u64,
    duplicates: u64,
    orphans: usize,
    lost_orphans: usize,
    rto_max: SimDuration,
    rto_mean: SimDuration,
    readopts: u64,
    deposed: u64,
    rejoined: u64,
    restores: u64,
    snapshots: u64,
}

fn run_cell(seed: u64, cell: Cell, readopt: bool, budget: u64) -> CellResult {
    let mut config = TestbedConfig::new(BackendKind::Nic)
        .seed(seed)
        .workers(WORKERS);
    config.gateway.rpc_timeout = SimDuration::from_millis(50);
    config.gateway.rpc_attempts = 5;
    config.gateway = config.gateway.resilient();
    let gw_params = config.gateway.clone();
    let link = config.link;
    let mut bed = build_testbed(config);
    let program = Arc::new(three_web_servers());
    bed.preload(&program);
    let tier_cfg = TierConfig {
        resubmit_timeout: RESUBMIT,
        readopt,
        ..TierConfig::default()
    };
    let target = fault_target(&tier_cfg) as u32;
    let (router, controller) = bed.enable_gateway_tier(EXTRA_SHARDS, gw_params, link, tier_cfg);
    // Rack loss takes a worker down with its shard: the dead worker's
    // lambdas must be re-placed on the survivors.
    bed.enable_failover(FailoverConfig {
        heartbeat_interval: SimDuration::from_millis(25),
        missed_beats: 3,
        ..FailoverConfig::default()
    });
    let label = format!(
        "disaster-{}-{}",
        cell.name(),
        if readopt { "readopt" } else { "baseline" }
    );
    attach_trace(&mut bed, &label);

    let jobs: Vec<JobSpec> = program
        .lambdas
        .iter()
        .map(|l| JobSpec {
            workload_id: l.id.0,
            payload: PayloadSpec::Page(0),
        })
        .collect();
    let driver = bed.sim.add(ClosedLoopDriver::new(
        router,
        jobs,
        THREADS,
        THINK,
        Some(budget),
    ));
    bed.sim
        .post(driver, SimDuration::from_millis(50), StartDriver);

    // (crash instant, shards crashing at it)
    let at = SimTime::ZERO + SimDuration::from_millis(200);
    let stagger = SimDuration::from_millis(80);
    let crashes: Vec<(SimTime, Vec<u32>)> = match cell {
        Cell::RestartStorm => {
            bed.inject_faults(&FaultPlan::new().restart_storm(
                0,
                EXTRA_SHARDS + 1,
                at,
                stagger,
                SimDuration::from_millis(60),
            ));
            (0..=EXTRA_SHARDS as u32)
                .map(|k| (at + stagger * u64::from(k), vec![k]))
                .collect()
        }
        Cell::RackLoss => {
            bed.inject_faults(&FaultPlan::new().rack_loss(
                target as usize,
                &[1],
                at,
                SimDuration::from_millis(120),
            ));
            vec![(at, vec![target])]
        }
        Cell::CtrlCoCrash => {
            bed.inject_faults(
                &FaultPlan::new()
                    .tier_controller_crash(at)
                    .gateway_crash(target as usize, at)
                    .tier_controller_restart(SimTime::ZERO + SimDuration::from_millis(300))
                    .gateway_restart(
                        target as usize,
                        SimTime::ZERO + SimDuration::from_millis(800),
                    ),
            );
            vec![(at, vec![target])]
        }
    };

    // Pause just before each crash and snapshot the requests pending on
    // the shards about to die: those are the orphans the RTO is scored
    // over.
    let mut orphans: Vec<(u64, SimTime)> = Vec::new();
    for (crash_at, shards) in &crashes {
        bed.sim.run_until(*crash_at - SimDuration::from_micros(1));
        let r = bed.sim.get::<ShardRouter>(router).unwrap();
        for &g in shards {
            orphans.extend(
                r.pending_owned_by(g)
                    .into_iter()
                    .map(|uid| (uid, *crash_at)),
            );
        }
    }
    if cell == Cell::RackLoss {
        // The rack's NIC lost its volatile instruction store: pause
        // just after the restart and re-image it, as the deployment
        // controller would on rack recovery.
        bed.sim
            .run_until(SimTime::ZERO + SimDuration::from_millis(330));
        bed.redeploy_worker(1, &program);
    }
    bed.sim.run_until(SimTime::ZERO + SimDuration::from_secs(6));
    bed.finish_tracing();
    finish_trace(&mut bed, &label);

    let d = bed.sim.get::<ClosedLoopDriver>(driver).unwrap();
    assert!(d.is_done(), "{label}: all budgeted requests must terminate");
    let failed = d.completed().iter().filter(|c| c.failed).count() as u64;

    let r = bed.sim.get::<ShardRouter>(router).unwrap();
    let mut rto_max = SimDuration::ZERO;
    let mut rto_sum = SimDuration::ZERO;
    let mut lost_orphans = 0usize;
    for &(uid, crash_at) in &orphans {
        match r.delivered_at(uid) {
            Some(t) => {
                let rto = t.saturating_duration_since(crash_at);
                rto_max = rto_max.max(rto);
                rto_sum += rto;
            }
            None => lost_orphans += 1,
        }
    }
    let served = orphans.len() - lost_orphans;
    let rto_mean = if served == 0 {
        SimDuration::ZERO
    } else {
        rto_sum / served as u64
    };
    let rc = r.counters();
    let tc = bed
        .sim
        .get::<TierController>(controller)
        .unwrap()
        .counters();
    let res = CellResult {
        cell: cell.name(),
        readopt,
        issued: d.issued(),
        completed: d.completed().len() as u64,
        failed,
        duplicates: rc.duplicates,
        orphans: orphans.len(),
        lost_orphans,
        rto_max,
        rto_mean,
        readopts: tc.readopts,
        deposed: tc.deposed,
        rejoined: tc.rejoined,
        restores: tc.restores,
        snapshots: tc.snapshots,
    };
    // The non-negotiable contract in every cell and both arms.
    assert_eq!(
        res.completed,
        budget * THREADS as u64,
        "{label}: lost completions"
    );
    assert_eq!(res.failed, 0, "{label}: no client request may fail");
    assert_eq!(res.duplicates, 0, "{label}: no duplicate deliveries");
    assert_eq!(res.lost_orphans, 0, "{label}: every orphan must be served");
    assert!(res.orphans > 0, "{label}: the fault must orphan something");
    res
}

fn commit_id() -> String {
    std::env::var("LNIC_COMMIT")
        .ok()
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .or_else(|| {
            std::process::Command::new("git")
                .args(["rev-parse", "HEAD"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn ms(d: SimDuration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

fn cell_json(r: &CellResult) -> String {
    format!(
        "    {{\"cell\": \"{}\", \"arm\": \"{}\", \"issued\": {}, \"completed\": {}, \
         \"failed\": {}, \"duplicates\": {},\n     \"orphans\": {}, \"lost_orphans\": {}, \
         \"rto_max_ms\": {:.3}, \"rto_mean_ms\": {:.3},\n     \"readopts\": {}, \
         \"deposed\": {}, \"rejoined\": {}, \"restores\": {}, \"snapshots\": {}}}",
        r.cell,
        if r.readopt { "readopt" } else { "baseline" },
        r.issued,
        r.completed,
        r.failed,
        r.duplicates,
        r.orphans,
        r.lost_orphans,
        ms(r.rto_max),
        ms(r.rto_mean),
        r.readopts,
        r.deposed,
        r.rejoined,
        r.restores,
        r.snapshots,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = 42 + seed_offset();
    let budget: u64 = if smoke { 3_000 } else { 6_000 };
    let lease = TierConfig::default().lease;
    println!(
        "disaster recovery: {WORKERS} workers, {} shards, seed {seed}, budget {budget}/thread{}",
        EXTRA_SHARDS + 1,
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "lease horizon {} ms, resubmit watchdog {} ms (both arms)",
        ms(lease) as u64,
        ms(RESUBMIT) as u64
    );

    let cells = [Cell::RestartStorm, Cell::RackLoss, Cell::CtrlCoCrash];
    let mut results: Vec<CellResult> = Vec::new();
    for &cell in &cells {
        for &readopt in &[true, false] {
            results.push(run_cell(seed, cell, readopt, budget));
        }
    }

    println!("cell            arm       orphans  rto_max_ms  rto_mean_ms  deposed  readopts");
    for r in &results {
        println!(
            "{:<15} {:<9} {:>7}  {:>10.2} {:>12.2} {:>8} {:>9}",
            r.cell,
            if r.readopt { "readopt" } else { "baseline" },
            r.orphans,
            ms(r.rto_max),
            ms(r.rto_mean),
            r.deposed,
            r.readopts,
        );
    }

    // RTO contract: with re-adoption on, the worst orphan of every cell
    // recovers within a small multiple of the lease horizon; the storm
    // baseline (no deposition, no re-adoption — only the watchdog) is
    // pinned to the 1 s resubmit timer and must be strictly worse.
    let storm_readopt = &results[0];
    let storm_baseline = &results[1];
    for r in results.iter().filter(|r| r.readopt) {
        // Deposition cannot begin before the controller is back: the
        // co-crash cell's bound includes its 100 ms controller outage.
        let bound = if r.cell == Cell::CtrlCoCrash.name() {
            lease * 2 + SimDuration::from_millis(100)
        } else {
            lease * 2
        };
        assert!(
            r.rto_max <= bound,
            "{}: readopt rto_max {:.2} ms above its lease-horizon bound {:.0} ms",
            r.cell,
            ms(r.rto_max),
            ms(bound)
        );
    }
    assert!(
        storm_baseline.rto_max >= RESUBMIT,
        "storm baseline must be bounded by the resubmit timer (got {:.2} ms)",
        ms(storm_baseline.rto_max)
    );
    assert!(
        storm_readopt.rto_max * 2 < storm_baseline.rto_max,
        "re-adoption must beat the resubmit-timer baseline ({:.2} ms vs {:.2} ms)",
        ms(storm_readopt.rto_max),
        ms(storm_baseline.rto_max)
    );
    println!(
        "storm rto_max: readopt {:.2} ms vs baseline {:.2} ms (lease horizon {} ms)",
        ms(storm_readopt.rto_max),
        ms(storm_baseline.rto_max),
        ms(lease) as u64
    );

    let mut json = String::new();
    json.push_str("{\n  \"experiment\": \"disaster_recovery\",\n");
    let _ = writeln!(
        json,
        "  \"seed\": {seed}, \"commit\": \"{}\", \"smoke\": {smoke},",
        commit_id()
    );
    let _ = writeln!(
        json,
        "  \"workers\": {WORKERS}, \"threads\": {THREADS}, \"tier_shards\": {}, \"budget_per_thread\": {budget},",
        EXTRA_SHARDS + 1
    );
    let _ = writeln!(
        json,
        "  \"lease_ms\": {:.1}, \"resubmit_ms\": {:.1},",
        ms(lease),
        ms(RESUBMIT)
    );
    json.push_str("  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(json, "{}{comma}", cell_json(r));
    }
    json.push_str("  ]\n}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_disaster.json", json).expect("write bench json");
    println!("wrote results/BENCH_disaster.json");
}
