//! Ablation studies beyond the paper's tables: design choices DESIGN.md
//! calls out, isolated one at a time.
//!
//! 1. **NIC class** (Table 1 quantified): the same web workload on
//!    FPGA-, ASIC-, and SoC-class NIC parameters.
//! 2. **Memory stratification off**: latency impact of leaving every
//!    object in external memory.
//! 3. **Dispatch policy**: uniform-random (Netronome hardware) vs
//!    round-robin thread selection.
//! 4. **Gateway-on-NIC** (§7 "accelerating other forms of workloads"):
//!    throughput with the gateway's proxy cost reduced to NIC speeds.
//! 5. **WFQ weights**: per-lambda service shares under overload.
//! 6. **Run-to-completion vs pipelined stages** (the paper's footnote 4
//!    future work): dedicating an island to parse/match vs running all
//!    stages on every core.
//! 7. **Native host runtime**: how much of the paper's gap is Python?
//!    A hypothetical compiled, GIL-free bare-metal backend vs λ-NIC.
//! 8. **Constant folding**: a fourth compiler pass beyond the paper's
//!    three, validated by the semantics-preservation property tests.
//!
//! Run with: `cargo run --release -p lnic-bench --bin ablations`

use std::sync::Arc;

use lnic::prelude::*;
use lnic_bench::{attach_trace, finish_trace, fmt_ms, THINK_TIME};
use lnic_mlambda::compile::CompileOptions;
use lnic_nic::{DispatchPolicy, Nic, NicClass, NicParams};
use lnic_sim::prelude::*;
use lnic_workloads::{web_program, SuiteConfig, WEB_ID};

fn web_jobs() -> Vec<JobSpec> {
    vec![JobSpec {
        workload_id: WEB_ID.0,
        payload: PayloadSpec::RandomPage { count: 64 },
    }]
}

fn drive(bed: &mut Testbed, concurrency: usize, per_thread: u64) -> (Series, f64) {
    attach_trace(bed, "ablation");
    let gateway = bed.gateway;
    let driver = bed.sim.add(ClosedLoopDriver::new(
        gateway,
        web_jobs(),
        concurrency,
        THINK_TIME,
        Some(per_thread),
    ));
    bed.sim.post(driver, SimDuration::ZERO, StartDriver);
    bed.sim.run();
    finish_trace(bed, "ablation");
    let d = bed.sim.get::<ClosedLoopDriver>(driver).unwrap();
    (d.latency_series(20), d.throughput_rps())
}

fn nic_class_study() {
    // The image transformer exposes the class differences: its compute
    // saturates the FPGA's few cores and the SoC's slower ones, while
    // the ASIC's 448 threads absorb the burst.
    println!("## 1. NIC class (image transformer, 8 concurrent clients)\n");
    println!(
        "{:<14} {:>10} {:>12} {:>12}",
        "class", "mean", "p99", "req/s"
    );
    let image = PayloadSpec::Fixed(bytes::Bytes::from(
        lnic_workloads::image::RgbaImage::synthetic(128, 128).data,
    ));
    for class in [NicClass::Fpga, NicClass::Asic, NicClass::Soc] {
        let mut config = TestbedConfig::new(BackendKind::Nic).seed(51).workers(1);
        config.nic = class.params();
        let mut bed = build_testbed(config);
        attach_trace(&mut bed, &format!("ablation-nic-class-{}", class.name()));
        bed.preload(&Arc::new(lnic_workloads::image_program(
            &SuiteConfig::default(),
        )));
        let gateway = bed.gateway;
        let driver = bed.sim.add(ClosedLoopDriver::new(
            gateway,
            vec![JobSpec {
                workload_id: lnic_workloads::IMAGE_ID.0,
                payload: image.clone(),
            }],
            8,
            SimDuration::from_millis(1),
            Some(8),
        ));
        bed.sim.post(driver, SimDuration::ZERO, StartDriver);
        bed.sim.run();
        finish_trace(&mut bed, &format!("ablation-nic-class-{}", class.name()));
        let d = bed.sim.get::<ClosedLoopDriver>(driver).unwrap();
        let s = d.latency_series(8).summary();
        println!(
            "{:<14} {:>8} ms {:>10} ms {:>12.0}",
            class.name(),
            fmt_ms(s.mean_ns),
            fmt_ms(s.p99_ns as f64),
            d.throughput_rps()
        );
    }
    println!();
}

fn stratification_study() {
    println!("## 2. Memory stratification (web server, 8 clients)\n");
    let mut rows = Vec::new();
    for (label, opts) in [
        ("stratified (paper)", CompileOptions::optimized()),
        ("all objects in EMEM", {
            let mut o = CompileOptions::optimized();
            o.stratify = false;
            o
        }),
    ] {
        let mut bed = build_testbed(TestbedConfig::new(BackendKind::Nic).seed(52));
        bed.preload_with(&Arc::new(web_program(&SuiteConfig::default())), &opts);
        let (lat, _) = drive(&mut bed, 8, 50);
        rows.push((label, lat.summary()));
    }
    println!("{:<24} {:>10} {:>12}", "placement", "mean", "p99");
    for (label, s) in &rows {
        println!(
            "{:<24} {:>8} ms {:>10} ms",
            label,
            fmt_ms(s.mean_ns),
            fmt_ms(s.p99_ns as f64)
        );
    }
    let slowdown = rows[1].1.mean_ns / rows[0].1.mean_ns;
    println!(
        "=> naive placement costs {:.2}x in mean latency\n",
        slowdown
    );
    assert!(slowdown > 1.0, "stratification must help");
}

fn dispatch_policy_study() {
    println!("## 3. Dispatch policy (web server, 32 clients)\n");
    for policy in [DispatchPolicy::UniformRandom, DispatchPolicy::RoundRobin] {
        let mut bed = build_testbed(TestbedConfig::new(BackendKind::Nic).seed(53));
        bed.preload(&Arc::new(web_program(&SuiteConfig::default())));
        for w in &bed.workers {
            let component = w.component;
            bed.sim
                .get_mut::<Nic>(component)
                .unwrap()
                .set_dispatch_policy(policy);
        }
        let (lat, rps) = drive(&mut bed, 32, 30);
        let s = lat.summary();
        println!(
            "{:<16?} mean={} ms p99={} ms {:.0} req/s",
            policy,
            fmt_ms(s.mean_ns),
            fmt_ms(s.p99_ns as f64),
            rps
        );
    }
    println!("=> with 448 threads and short lambdas, both policies are equivalent\n");
}

fn gateway_on_nic_study() {
    println!("## 4. Gateway-on-NIC (§7; web server, 56 clients)\n");
    for (label, proxy_us) in [
        ("host gateway (paper)", 15u64),
        ("gateway on a SmartNIC", 1),
    ] {
        let mut config = TestbedConfig::new(BackendKind::Nic).seed(54);
        config.gateway.proxy_cost = SimDuration::from_micros(proxy_us);
        config.gateway.response_cost = SimDuration::from_nanos(proxy_us * 100);
        let mut bed = build_testbed(config);
        bed.preload(&Arc::new(web_program(&SuiteConfig::default())));
        let (_, rps) = drive(&mut bed, 56, 30);
        println!("{label:<26} {rps:>10.0} req/s");
    }
    println!("=> the host gateway is the aggregate-throughput ceiling (Table 2)\n");
}

fn wfq_study() {
    println!("## 5. WFQ weights under overload (two lambdas, tiny NIC)\n");
    // A 2-thread NIC under 32-way load: the WFQ arbitrates the backlog.
    let mut config = TestbedConfig::new(BackendKind::Nic).seed(55).workers(1);
    config.nic = NicParams {
        islands: 1,
        cores_per_island: 1,
        threads_per_core: 2,
        ..NicParams::agilio_cx()
    };
    let mut bed = build_testbed(config);
    attach_trace(&mut bed, "ablation-wfq");
    let program = Arc::new(lnic_workloads::three_web_servers());
    bed.preload(&program);
    for lambda in &program.lambdas {
        bed.place(lambda.id.0, 0);
    }
    // Favor the first lambda 4:1:1.
    {
        let component = bed.workers[0].component;
        let nic = bed.sim.get_mut::<Nic>(component).unwrap();
        nic.set_weight(0, 4.0);
        nic.set_weight(1, 1.0);
        nic.set_weight(2, 1.0);
    }
    let jobs: Vec<JobSpec> = program
        .lambdas
        .iter()
        .map(|l| JobSpec {
            workload_id: l.id.0,
            payload: PayloadSpec::Page(0),
        })
        .collect();
    let gateway = bed.gateway;
    let driver = bed.sim.add(ClosedLoopDriver::new(
        gateway,
        jobs,
        32,
        SimDuration::from_nanos(100),
        Some(60),
    ));
    bed.sim.post(driver, SimDuration::ZERO, StartDriver);
    bed.sim.run();
    finish_trace(&mut bed, "ablation-wfq");
    let d = bed.sim.get::<ClosedLoopDriver>(driver).unwrap();
    for lambda in &program.lambdas {
        let mut s = Series::new("l");
        for c in d
            .completed()
            .iter()
            .filter(|c| c.workload_id == lambda.id.0)
        {
            s.record(c.latency);
        }
        println!(
            "  {:<12} weight={} mean latency {} ms (n={})",
            lambda.name,
            if lambda.id.0 == program.lambdas[0].id.0 {
                4
            } else {
                1
            },
            fmt_ms(s.summary().mean_ns),
            s.len()
        );
    }
    println!("=> the heavier-weighted lambda sees shorter queueing under overload\n");
}

fn rtc_vs_pipelined_study() {
    println!("## 6. Run-to-completion vs pipelined stages (web server, 32 clients)\n");
    for (label, params) in [
        ("run-to-completion (paper)", NicParams::agilio_cx()),
        ("pipelined (footnote 4)", NicParams::agilio_cx_pipelined()),
    ] {
        let mut config = TestbedConfig::new(BackendKind::Nic).seed(56);
        config.nic = params;
        let mut bed = build_testbed(config);
        bed.preload(&Arc::new(web_program(&SuiteConfig::default())));
        let (lat, rps) = drive(&mut bed, 32, 40);
        let s = lat.summary();
        println!(
            "{:<28} mean={} ms p99={} ms {:.0} req/s",
            label,
            fmt_ms(s.mean_ns),
            fmt_ms(s.p99_ns as f64),
            rps
        );
    }
    println!("=> pipelining pays a handoff penalty with no benefit for short lambdas,");
    println!("   validating the paper's run-to-completion choice (§4.2-D1)\n");
}

fn native_runtime_study() {
    use lnic_host::{HostBackend, HostParams};
    use lnic_mlambda::compile::{compile, CompileOptions};
    use lnic_net::link::Link;
    use lnic_net::params::LinkParams;
    use lnic_net::switch::Switch;

    println!("## 7. Native host runtime vs lambda-NIC (web server, 8 clients)\n");
    let mut results = Vec::new();

    // lambda-NIC and the paper's Python bare metal: standard testbeds.
    for (label, backend) in [
        ("lambda-NIC", BackendKind::Nic),
        ("bare metal (Python, paper)", BackendKind::BareMetal),
    ] {
        let mut bed = build_testbed(TestbedConfig::new(backend).seed(57));
        bed.preload(&Arc::new(web_program(&SuiteConfig::default())));
        let (lat, _) = drive(&mut bed, 8, 50);
        results.push((label, lat.summary()));
    }

    // Hypothetical native runtime: replace the worker with a
    // HostParams::native backend on the same switch port.
    {
        let mut bed = build_testbed(
            TestbedConfig::new(BackendKind::BareMetal)
                .seed(57)
                .workers(1),
        );
        let w = bed.workers[0];
        let uplink = bed.sim.add(Link::new(bed.switch, LinkParams::ten_gbps()));
        let program = web_program(&SuiteConfig::default());
        let fw = compile(&program, &CompileOptions::optimized()).unwrap();
        let native = HostBackend::new(HostParams::native(56), w.mac, w.addr.ip, uplink)
            .preload(Arc::new(fw.program.clone()));
        let id = bed.sim.add(native);
        let port = bed.sim.add(Link::new(id, LinkParams::ten_gbps()));
        bed.sim
            .get_mut::<Switch>(bed.switch)
            .unwrap()
            .connect(w.mac, port);
        bed.place(lnic_workloads::WEB_ID.0, 0);
        let (lat, _) = drive(&mut bed, 8, 50);
        results.push(("bare metal (native, no GIL)", lat.summary()));
    }

    println!("{:<30} {:>10} {:>12}", "runtime", "mean", "p99");
    for (label, s) in &results {
        println!(
            "{:<30} {:>8} ms {:>10} ms",
            label,
            fmt_ms(s.mean_ns),
            fmt_ms(s.p99_ns as f64)
        );
    }
    let nic = results[0].1.mean_ns;
    let python = results[1].1.mean_ns;
    let native = results[2].1.mean_ns;
    println!(
        "=> a native runtime closes {:.0}% of Python's gap, but lambda-NIC keeps a {:.0}x lead",
        100.0 * (python - native) / (python - nic),
        native / nic
    );
    println!("   (the kernel network path remains, as the paper argues in S3)\n");
}

fn const_fold_study() {
    use lnic_mlambda::builder::FnBuilder;
    use lnic_mlambda::compile::{compile, CompileOptions};
    use lnic_mlambda::ir::{AluOp, Cmp, ObjId, Width};
    use lnic_mlambda::program::{Lambda, MemObject, Program, WorkloadId};
    use lnic_workloads::benchmark_program;

    println!("## 8. Constant folding (extension pass beyond the paper)\n");

    // On the hand-written benchmark lambdas the pass finds nothing —
    // they are already constant-minimal.
    let program = benchmark_program(&SuiteConfig::default());
    let base = compile(&program, &CompileOptions::optimized()).unwrap();
    let mut fold_opts = CompileOptions::optimized();
    fold_opts.fold = true;
    let folded = compile(&program, &fold_opts).unwrap();
    println!(
        "hand-written S6.4 program:   {} -> {} words (nothing to fold)",
        base.instruction_words(),
        folded.instruction_words()
    );

    // Its value shows on *template-specialized* code: a generic lambda
    // instantiated with configuration constants (offsets, sizes, limits)
    // computed at runtime in the generic form.
    let mut b = FnBuilder::new("specialized")
        // Header geometry computed from constants (a template would
        // inline these as expressions).
        .constant(1, 14)
        .alu_imm(AluOp::Add, 1, 1, 20)
        .alu_imm(AluOp::Add, 1, 1, 8) // r1 = 42: header bytes
        .constant(2, 4)
        .alu(AluOp::Mul, 3, 1, 2) // r3 = 168: ring stride
        .alu_imm(AluOp::Shr, 4, 3, 3) // r4 = 21
        .constant(5, 0)
        .alu_imm(AluOp::Add, 5, 5, 0); // no-op
    let skip = b.label();
    b = b
        .branch(Cmp::Lt, 1, 3, skip) // always taken: 42 < 168
        .constant(9, 99) // dead
        .place(skip)
        .mov(6, 4)
        .load(7, ObjId(0), 6, Width::B8)
        .emit(7, Width::B8);
    let f = b.ret_const(0).build();
    let mut l = Lambda::new("specialized", WorkloadId(1), f);
    l.add_object(MemObject::zeroed("ring", 256));
    let mut p2 = Program::new();
    p2.add_lambda(l, vec![]);
    let spec_base = compile(&p2, &CompileOptions::optimized()).unwrap();
    let spec_fold = compile(&p2, &fold_opts).unwrap();
    println!(
        "template-specialized lambda: {} -> {} words ({:?})",
        spec_base.instruction_words(),
        spec_fold.instruction_words(),
        spec_fold.pass_info.fold
    );
    println!("=> folding pays on generated/specialized code; correctness is");
    println!("   guaranteed by the semantics-preservation property tests\n");
}

fn main() {
    println!("=== lambda-NIC design ablations ===\n");
    nic_class_study();
    stratification_study();
    dispatch_policy_study();
    gateway_on_nic_study();
    wfq_study();
    rtc_vs_pipelined_study();
    native_runtime_study();
    const_fold_study();
}
