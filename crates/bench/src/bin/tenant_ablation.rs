//! Multi-tenant NIC virtualization ablation: isolated-static
//! provisioning vs the shared-virtualized datapath.
//!
//! Both arms drive the same Zipf-popular fleet of 100 tenant lambdas at
//! the same four-worker NIC testbed:
//!
//! - **isolated-static**: the legacy single-tenant world. Each lambda
//!   statically burns its instruction-store words, so the packer admits
//!   tenants in popularity order until the store is full and the long
//!   tail simply cannot be deployed — its requests fail unplaced. No
//!   paging, no faults, no isolation machinery.
//! - **shared-virtualized**: the PR-8 virtualization stack. Every
//!   tenant deploys; the per-worker LRU firmware cache keeps the hot
//!   set resident and faults cold pages in (charged on the faulting
//!   request), the hierarchical WFQ schedules tenants by weight, and
//!   the gateway stamps every header with its owning tenant. The
//!   invariant checker's cross-tenant rules run in-stream, so a
//!   completed arm *is* the zero-isolation-violations claim.
//!
//! The claim: virtualization turns the store from a hard admission
//! limit into a performance gradient — the shared arm serves the whole
//! catalog (higher goodput and NPU utilization) at the price of a
//! bounded fault rate, without any tenant reading another's state.
//!
//! Emits `results/tenant_ablation.json` (per-arm goodput, busy
//! fraction, fault rate, per-tenant p99). `--smoke` shrinks the drive
//! for CI; `--trace=PATH` streams tenant-relevant trace events as JSONL
//! (one file per arm) so an isolation-violation panic leaves the
//! offending history on disk for CI to upload.
//!
//! Run with: `cargo run --release -p lnic-bench --bin tenant_ablation`

use std::fmt::Write as _;
use std::fs::File;
use std::io::{LineWriter, Write as _};
use std::sync::Arc;

use lnic::prelude::*;
use lnic_mlambda::compile::CompileOptions;
use lnic_nic::Nic;
use lnic_placer::{pack, LambdaProfile, NicCapacity, PackOptions};
use lnic_placer::{static_costs, subset_program};
use lnic_sim::check::InvariantChecker;
use lnic_sim::prelude::*;
use lnic_sim::trace::{json_line, TraceRecord, TraceSink};
use lnic_tenant::{TenancyConfig, TenantDirectory, TenantSpec};
use lnic_workloads::{tenant_fleet_program, tenant_workload_id, zipf_multiplicities};

/// Fleet size: one lambda per tenant.
const TENANTS: u32 = 100;
/// Padding instructions per tenant lambda: makes the full catalog
/// (~60k words) overflow the 16k-word physical store, so static
/// provisioning must turn tenants away while paging serves them all.
const PAD_WORDS: usize = 600;
/// Zipf popularity exponent across tenants.
const ZIPF_S: f64 = 1.0;
/// Job-spec slots the Zipf apportionment is rounded into.
const SLOTS: usize = 500;
/// Closed-loop client threads.
const THREADS: usize = 8;
const THINK: SimDuration = SimDuration::from_micros(10);
/// Resident instruction-store words under virtualization: half the
/// store pages lambdas, the rest stays with the pager and basic NIC
/// duties.
const CACHE_WORDS: u64 = 8192;
/// Top tenants reported as the "hot" aggregate.
const HOT_TENANTS: usize = 10;

/// Sums NPU execution cycles off the trace stream (the utilization
/// numerator) and counts executions.
#[derive(Default)]
struct ExecSink {
    total_cycles: u64,
    execs: u64,
}

impl TraceSink for ExecSink {
    fn on_record(&mut self, rec: &TraceRecord) {
        if let TraceEvent::ExecFinish { total_cycles, .. } = rec.event {
            self.total_cycles += total_cycles;
            self.execs += 1;
        }
    }
}

/// Streams tenant-relevant events to disk as JSONL, line-buffered so an
/// isolation-violation panic mid-run still leaves the violating prefix
/// on disk for CI to upload.
struct TenantTraceSink {
    out: LineWriter<File>,
}

impl TraceSink for TenantTraceSink {
    fn on_record(&mut self, rec: &TraceRecord) {
        let keep = matches!(
            rec.event,
            TraceEvent::TenantAssign { .. }
                | TraceEvent::FirmwareFault { .. }
                | TraceEvent::FirmwareEvict { .. }
                | TraceEvent::ExecStart { .. }
                | TraceEvent::MemCharge { .. }
                | TraceEvent::AdmissionReject { .. }
        );
        if keep {
            let _ = writeln!(self.out, "{}", json_line(rec));
        }
    }

    fn on_finish(&mut self, _now: SimTime) {
        let _ = self.out.flush();
    }
}

struct Arm {
    name: &'static str,
    deployed_tenants: usize,
    issued: u64,
    ok: u64,
    failed: u64,
    goodput: f64,
    npu_busy_fraction: f64,
    firmware_faults: u64,
    firmware_evictions: u64,
    fault_rate: f64,
    quota_deferrals: u64,
    hot_p99_ms: Option<f64>,
    cold_p99_ms: Option<f64>,
    per_tenant_p99_ms: Vec<Option<f64>>,
    violations: u64,
}

/// Nearest-rank quantile in milliseconds.
fn quantile_ms(lat_ns: &mut [u64], q: f64) -> Option<f64> {
    if lat_ns.is_empty() {
        return None;
    }
    lat_ns.sort_unstable();
    let rank = ((q * lat_ns.len() as f64).ceil() as usize).clamp(1, lat_ns.len());
    Some(lat_ns[rank - 1] as f64 / 1e6)
}

/// The Zipf drive schedule: each tenant's job spec duplicated by its
/// popularity multiplicity, spread evenly through the round-robin list
/// (fractional positioning, golden-ratio phase per tenant). The phase
/// matters: tenants sharing a multiplicity would otherwise collide at
/// identical positions and sort into one giant consecutive block of
/// distinct cold lambdas — an LRU-flushing scan no real Zipf arrival
/// process exhibits.
fn zipf_schedule() -> Vec<JobSpec> {
    let mult = zipf_multiplicities(TENANTS as usize, ZIPF_S, SLOTS);
    let mut placed: Vec<(f64, u32)> = Vec::with_capacity(SLOTS);
    for (i, &m) in mult.iter().enumerate() {
        let phase = (i as f64 * 0.618_033_988_75).fract();
        for k in 0..m {
            placed.push(((k as f64 + phase) / m as f64, i as u32));
        }
    }
    placed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    placed
        .into_iter()
        .map(|(_, i)| JobSpec {
            workload_id: tenant_workload_id(i).0,
            payload: PayloadSpec::Empty,
        })
        .collect()
}

/// Tenant `i` (0-based fleet index) is tenant id `i + 1`: id 0 stays
/// the untenanted default.
fn directory() -> TenantDirectory {
    let mut dir = TenantDirectory::new();
    for i in 0..TENANTS {
        dir.register(i + 1, TenantSpec::weighted(1.0));
        dir.assign(tenant_workload_id(i).0, i + 1);
    }
    dir
}

fn run_arm(seed: u64, virtualized: bool, per_thread: u64, trace: Option<&str>) -> Arm {
    let name = if virtualized {
        "shared_virtualized"
    } else {
        "isolated_static"
    };
    let full = Arc::new(tenant_fleet_program(TENANTS, PAD_WORDS));
    let config = TestbedConfig::new(BackendKind::Nic).seed(seed);
    let nic_params = config.nic.clone();
    let mut bed = build_testbed(config);
    bed.sim.add_trace_sink(Box::new(ExecSink::default()));
    if let Some(path) = trace {
        let file = File::create(format!("{path}.{name}.jsonl")).expect("create trace file");
        bed.sim.add_trace_sink(Box::new(TenantTraceSink {
            out: LineWriter::new(file),
        }));
    }

    let deployed_tenants = if virtualized {
        // The firmware cache virtualizes the store: compile the whole
        // catalog against an effectively unbounded image (pages live in
        // EMEM and fault into the physical store on demand).
        let opts = CompileOptions {
            instruction_store_words: 1 << 20,
            ..CompileOptions::optimized()
        };
        bed.preload_with(&full, &opts);
        bed.enable_tenancy(
            Arc::new(directory()),
            TenancyConfig {
                cache_words: CACHE_WORDS,
                ..TenancyConfig::default()
            },
        );
        TENANTS as usize
    } else {
        // Static provisioning: pack tenants into the physical store in
        // popularity (declaration) order; the tail is never deployed.
        let opts = CompileOptions::optimized();
        let costs = static_costs(&full, &opts);
        let profiles: Vec<LambdaProfile> = costs
            .iter()
            .map(|&cost| LambdaProfile {
                workload_id: cost.workload_id,
                cost,
                rate_rps: 0.0,
                nic_service_ns: 0.0,
                host_service_ns: 0.0,
            })
            .collect();
        let cap = NicCapacity::from_params(&nic_params, &opts);
        let plan = pack(
            &profiles,
            &cap,
            &PackOptions {
                profile_guided: false,
                has_host: false,
                ..PackOptions::default()
            },
        );
        let indices: Vec<usize> = plan
            .nic
            .iter()
            .map(|&wid| (wid - tenant_workload_id(0).0) as usize)
            .collect();
        assert!(
            !indices.is_empty() && indices.len() < TENANTS as usize,
            "static packing should admit some but not all tenants (got {})",
            indices.len()
        );
        bed.preload(&Arc::new(subset_program(&full, &indices)));
        indices.len()
    };

    let driver = bed.sim.add(ClosedLoopDriver::new(
        bed.gateway,
        zipf_schedule(),
        THREADS,
        THINK,
        Some(per_thread),
    ));
    bed.sim.post(driver, SimDuration::ZERO, StartDriver);
    bed.sim.run();
    bed.finish_tracing();

    let exec = bed.sim.trace_sink::<ExecSink>().expect("exec sink");
    let (total_cycles, _execs) = (exec.total_cycles, exec.execs);
    let violations = bed
        .sim
        .trace_sink::<InvariantChecker>()
        .expect("invariant checker attached")
        .violations()
        .len() as u64;
    let (mut firmware_faults, mut firmware_evictions, mut quota_deferrals) = (0u64, 0u64, 0u64);
    for worker in &bed.workers {
        let c = bed.sim.get::<Nic>(worker.component).unwrap().counters();
        firmware_faults += c.firmware_faults;
        firmware_evictions += c.firmware_evictions;
        quota_deferrals += c.quota_deferrals;
    }

    let d = bed.sim.get::<ClosedLoopDriver>(driver).unwrap();
    let issued = d.issued();
    let mut per_tenant_lat: Vec<Vec<u64>> = vec![Vec::new(); TENANTS as usize];
    let (mut ok, mut failed, mut makespan_ns) = (0u64, 0u64, 0u64);
    for c in d.completed() {
        makespan_ns = makespan_ns.max(c.at.as_nanos());
        if c.failed {
            failed += 1;
            continue;
        }
        ok += 1;
        let tenant = (c.workload_id - tenant_workload_id(0).0) as usize;
        per_tenant_lat[tenant].push(c.latency.as_nanos());
    }
    let mut hot: Vec<u64> = Vec::new();
    let mut cold: Vec<u64> = Vec::new();
    for (i, lats) in per_tenant_lat.iter().enumerate() {
        if i < HOT_TENANTS {
            hot.extend(lats);
        } else {
            cold.extend(lats);
        }
    }
    let per_tenant_p99_ms = per_tenant_lat
        .iter_mut()
        .map(|l| quantile_ms(l, 0.99))
        .collect();

    // Utilization: NPU-busy thread-time over wall time, as a fraction
    // of the whole cluster's thread pool.
    let busy_ns = nic_params.cycles_to_time(total_cycles).as_nanos();
    let pool = (nic_params.threads() * bed.workers.len()) as f64;
    let npu_busy_fraction = if makespan_ns == 0 {
        0.0
    } else {
        busy_ns as f64 / (makespan_ns as f64 * pool)
    };

    Arm {
        name,
        deployed_tenants,
        issued,
        ok,
        failed,
        goodput: if issued == 0 {
            0.0
        } else {
            ok as f64 / issued as f64
        },
        npu_busy_fraction,
        firmware_faults,
        firmware_evictions,
        fault_rate: if ok == 0 {
            0.0
        } else {
            firmware_faults as f64 / ok as f64
        },
        quota_deferrals,
        hot_p99_ms: quantile_ms(&mut hot, 0.99),
        cold_p99_ms: quantile_ms(&mut cold, 0.99),
        per_tenant_p99_ms,
        violations,
    }
}

fn commit_id() -> String {
    std::env::var("LNIC_COMMIT")
        .ok()
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .or_else(|| {
            std::process::Command::new("git")
                .args(["rev-parse", "HEAD"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace = std::env::args().find_map(|a| a.strip_prefix("--trace=").map(str::to_owned));
    let per_thread: u64 = if smoke { 150 } else { 1500 };
    let seed = 42 + seed_offset();

    println!(
        "tenant ablation: {TENANTS} tenants, zipf s={ZIPF_S}, {THREADS} client threads, \
         seed {seed}{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!("  arm                 tenants  goodput  busy_frac  faults  fault_rate  hot_p99(ms)  cold_p99(ms)");

    let arms = [
        run_arm(seed, false, per_thread, trace.as_deref()),
        run_arm(seed, true, per_thread, trace.as_deref()),
    ];
    let fmt_ms = |v: Option<f64>| v.map_or("-".to_owned(), |v| format!("{v:.4}"));
    for a in &arms {
        println!(
            "  {:<19}  {:>6}  {:.5}  {:.7}  {:>6}  {:>10.4}  {:>11}  {:>12}",
            a.name,
            a.deployed_tenants,
            a.goodput,
            a.npu_busy_fraction,
            a.firmware_faults,
            a.fault_rate,
            fmt_ms(a.hot_p99_ms),
            fmt_ms(a.cold_p99_ms),
        );
    }

    // The ablation's claims, asserted rather than merely printed.
    let [stat, virt] = &arms;
    assert_eq!(virt.violations, 0, "virtualized arm violated an invariant");
    assert_eq!(stat.violations, 0, "static arm violated an invariant");
    assert_eq!(
        virt.deployed_tenants, TENANTS as usize,
        "virtualization must deploy the whole catalog"
    );
    assert!(
        virt.goodput > stat.goodput,
        "shared-virtualized goodput {:.4} must beat isolated-static {:.4}",
        virt.goodput,
        stat.goodput
    );
    assert!(
        virt.npu_busy_fraction > stat.npu_busy_fraction,
        "shared-virtualized utilization {:.6} must beat isolated-static {:.6}",
        virt.npu_busy_fraction,
        stat.npu_busy_fraction
    );
    assert!(
        virt.firmware_faults > 0,
        "the virtualized arm should page under a {TENANTS}-tenant catalog"
    );
    assert_eq!(
        stat.firmware_faults, 0,
        "static provisioning never faults firmware"
    );

    let num = |v: Option<f64>| v.map_or("null".to_owned(), |v| format!("{v:.4}"));
    let mut json = String::new();
    json.push_str("{\n  \"experiment\": \"tenant_ablation\",\n");
    let _ = writeln!(
        json,
        "  \"seed\": {seed}, \"commit\": \"{}\", \"smoke\": {smoke}, \"tenants\": {TENANTS},",
        commit_id()
    );
    let _ = writeln!(
        json,
        "  \"zipf_s\": {ZIPF_S}, \"pad_words\": {PAD_WORDS}, \"cache_words\": {CACHE_WORDS},"
    );
    json.push_str("  \"arms\": [\n");
    for (i, a) in arms.iter().enumerate() {
        let comma = if i + 1 == arms.len() { "" } else { "," };
        let per_tenant: Vec<String> = a.per_tenant_p99_ms.iter().map(|&v| num(v)).collect();
        let _ = writeln!(
            json,
            "    {{\"arm\": \"{}\", \"deployed_tenants\": {}, \"issued\": {}, \"ok\": {}, \
             \"failed\": {}, \"goodput\": {:.6}, \"npu_busy_fraction\": {:.8}, \
             \"firmware_faults\": {}, \"firmware_evictions\": {}, \"fault_rate\": {:.6}, \
             \"quota_deferrals\": {}, \"violations\": {}, \"hot_p99_ms\": {}, \
             \"cold_p99_ms\": {},\n     \"per_tenant_p99_ms\": [{}]}}{comma}",
            a.name,
            a.deployed_tenants,
            a.issued,
            a.ok,
            a.failed,
            a.goodput,
            a.npu_busy_fraction,
            a.firmware_faults,
            a.firmware_evictions,
            a.fault_rate,
            a.quota_deferrals,
            a.violations,
            num(a.hot_p99_ms),
            num(a.cold_p99_ms),
            per_tenant.join(", ")
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/tenant_ablation.json", json).expect("write ablation json");
    println!("wrote results/tenant_ablation.json");
}
