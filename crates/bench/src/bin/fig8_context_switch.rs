//! Figure 8 + Table 2: three *distinct* web-server lambdas served
//! round-robin on one worker — the context-switching study of §6.3.2.
//!
//! Paper: "with multiple lambdas running concurrently, the bare-metal
//! backend suffers even higher latency (178x to 330x) compared to
//! λ-NIC"; Table 2 reports 58,000 req/s for λ-NIC vs 950 (56 threads)
//! and 520 (1 thread) for bare metal.
//!
//! Run with: `cargo run --release -p lnic-bench --bin fig8_context_switch`

use std::sync::Arc;

use lnic::prelude::*;
use lnic_bench::{
    attach_trace, finish_trace, fmt_ms, print_comparison, print_ecdf, Comparison, THINK_TIME,
};
use lnic_sim::prelude::*;
use lnic_workloads::three_web_servers;

/// Runs the Fig 8 workload; returns (latency series, throughput).
fn run(backend: BackendKind, worker_threads: usize, concurrency: usize) -> (Series, f64) {
    let mut bed = build_testbed(
        TestbedConfig::new(backend)
            .seed(31)
            .workers(1)
            .worker_threads(worker_threads),
    );
    let label = format!("fig8-{}-t{worker_threads}-c{concurrency}", backend.name());
    attach_trace(&mut bed, &label);
    let program = Arc::new(three_web_servers());
    bed.preload(&program);
    for lambda in &program.lambdas {
        bed.place(lambda.id.0, 0);
    }
    let jobs: Vec<JobSpec> = program
        .lambdas
        .iter()
        .map(|l| JobSpec {
            workload_id: l.id.0,
            payload: PayloadSpec::Page(0),
        })
        .collect();
    let gateway = bed.gateway;
    let driver = bed.sim.add(ClosedLoopDriver::new(
        gateway,
        jobs,
        concurrency,
        THINK_TIME,
        Some(600 / concurrency as u64),
    ));
    bed.sim.post(driver, SimDuration::ZERO, StartDriver);
    bed.sim.run();
    finish_trace(&mut bed, &label);
    let d = bed.sim.get::<ClosedLoopDriver>(driver).unwrap();
    (d.latency_series(50), d.throughput_rps())
}

fn main() {
    println!("three distinct web-server lambdas, round-robin requests, one worker\n");

    let (nic, nic_rps) = run(BackendKind::Nic, 56, 56);
    let (bm56, bm56_rps) = run(BackendKind::BareMetal, 56, 56);
    let (bm1, bm1_rps) = run(BackendKind::BareMetal, 1, 56);

    for (label, series) in [
        ("lambda-NIC", &nic),
        ("Bare Metal (56 threads)", &bm56),
        ("Bare Metal (single core)", &bm1),
    ] {
        let s = series.summary();
        println!(
            "{label:<26} mean={} ms p50={} ms p99={} ms max={} ms",
            fmt_ms(s.mean_ns),
            fmt_ms(s.p50_ns as f64),
            fmt_ms(s.p99_ns as f64),
            fmt_ms(s.max_ns as f64)
        );
        print_ecdf(label, series, 30);
        println!();
    }

    let nic_mean = nic.summary().mean_ns;
    let rows = vec![
        Comparison {
            label: "bare-metal latency penalty vs λ-NIC".into(),
            paper: "178x-330x".into(),
            measured: format!(
                "{:.0}x-{:.0}x",
                bm56.summary().mean_ns / nic_mean,
                bm1.summary().mean_ns / nic_mean
            ),
        },
        Comparison {
            label: "Table 2: λ-NIC throughput (req/s)".into(),
            paper: "58,000".into(),
            measured: format!("{nic_rps:.0}"),
        },
        Comparison {
            label: "Table 2: bare metal, 56 threads (req/s)".into(),
            paper: "950".into(),
            measured: format!("{bm56_rps:.0}"),
        },
        Comparison {
            label: "Table 2: bare metal, 1 thread (req/s)".into(),
            paper: "520".into(),
            measured: format!("{bm1_rps:.0}"),
        },
    ];
    print_comparison("Figure 8 / Table 2: contention", &rows);
}
