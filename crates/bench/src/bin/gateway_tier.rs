//! Gateway-tier handoff experiment: goodput through gateway-shard
//! crash, partition, and a planetary flash crowd.
//!
//! The robustness claim under test: with the sharded gateway tier, one
//! gateway shard can crash or be partitioned away and the tier keeps
//! serving — zero acked client requests lost, zero duplicate
//! deliveries, and tier goodput during the outage at ≥ 0.9× its healthy
//! baseline. The comparison arm is the same router machinery over a
//! single gateway (no shard to fail over to): its goodput collapses to
//! zero for the duration of the outage.
//!
//! Cells:
//!
//! * `single_crash` — one gateway, crashed mid-run: outage goodput → 0.
//! * `tier_crash` — three shards, one crashed: the tier detects the
//!   silent shard via the lease loop, deposes it, re-routes the orphans,
//!   and rides through.
//! * `tier_partition` — three shards, one cut off (data + control) then
//!   healed: self-fence, depose, rejoin at a bumped epoch.
//! * `flash_crowd` — planetary open-loop traffic (diurnal regions,
//!   heavy-tailed clients, a ×4 regional flash crowd) with a shard
//!   crash in the middle of the crowd.
//!
//! Emits `results/BENCH_gateway.json` (seed, commit, per-cell goodput
//! windows and counters). `--smoke` shrinks every run for CI;
//! `--trace=DIR` writes per-run JSONL traces for artifact upload.
//!
//! Run with: `cargo run --release -p lnic-bench --bin gateway_tier`

use std::fmt::Write as _;
use std::sync::Arc;

use lnic::driver::CompletedRequest;
use lnic::gateway::Gateway;
use lnic::gwtier::{PlanetDriver, ShardRouter, TierConfig, TierController};
use lnic::prelude::*;
use lnic_bench::{attach_trace, finish_trace};
use lnic_sim::prelude::*;
use lnic_workloads::planet::{FlashCrowd, PlanetModel};
use lnic_workloads::three_web_servers;

const WORKERS: usize = 3;
const THREADS: usize = 12;
const THINK: SimDuration = SimDuration::from_micros(300);
/// Shards beyond the primary in the tier arms (3 shards total).
const EXTRA_SHARDS: usize = 2;
/// Detection slack after the fault fires before the outage window
/// opens: heartbeat (50 ms) × miss threshold (3) plus depose/re-route
/// propagation.
const DETECT: SimDuration = SimDuration::from_millis(250);

/// Timing of one closed-loop cell.
#[derive(Clone, Copy)]
struct Timing {
    fault_at: SimDuration,
    heal_at: SimDuration,
    run: SimDuration,
}

impl Timing {
    fn new(smoke: bool) -> Self {
        if smoke {
            Timing {
                fault_at: SimDuration::from_millis(500),
                heal_at: SimDuration::from_millis(1_200),
                run: SimDuration::from_millis(2_500),
            }
        } else {
            Timing {
                fault_at: SimDuration::from_secs(1),
                heal_at: SimDuration::from_millis(2_500),
                run: SimDuration::from_secs(4),
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Crash,
    Partition,
}

struct ArmResult {
    label: &'static str,
    shards: usize,
    issued: u64,
    ok: u64,
    failed: u64,
    healthy_rps: f64,
    outage_rps: f64,
    recovery_rps: f64,
    routed: u64,
    delivered: u64,
    rerouted: u64,
    bounced: u64,
    duplicates: u64,
    deposed: u64,
    rejoined: u64,
}

fn resilient_config(seed: u64) -> TestbedConfig {
    let mut config = TestbedConfig::new(BackendKind::Nic)
        .seed(seed)
        .workers(WORKERS);
    config.gateway.rpc_timeout = SimDuration::from_millis(50);
    config.gateway.rpc_attempts = 5;
    config.gateway = config.gateway.resilient();
    config
}

fn goodput(completed: &[CompletedRequest], from: SimTime, to: SimTime) -> f64 {
    let window = to.saturating_duration_since(from);
    if window.is_zero() {
        return 0.0;
    }
    let ok = completed
        .iter()
        .filter(|c| !c.failed && c.at >= from && c.at < to)
        .count();
    ok as f64 / window.as_secs_f64()
}

fn run_arm(seed: u64, label: &'static str, extra: usize, fault: FaultKind, t: Timing) -> ArmResult {
    let config = resilient_config(seed);
    let gw_params = config.gateway.clone();
    let link = config.link;
    let mut bed = build_testbed(config);
    let program = Arc::new(three_web_servers());
    bed.preload(&program);
    let (router, controller) =
        bed.enable_gateway_tier(extra, gw_params, link, TierConfig::default());
    attach_trace(&mut bed, label);

    // Fault the primary in the single arm (there is nothing else) and a
    // non-primary shard in the tier arms.
    let target = extra.min(1);
    let fault_at = SimTime::ZERO + t.fault_at;
    let plan = match fault {
        FaultKind::Crash => FaultPlan::new()
            .gateway_crash(target, fault_at)
            .gateway_restart(target, SimTime::ZERO + t.heal_at),
        FaultKind::Partition => {
            FaultPlan::new().gateway_partition(target, fault_at, t.heal_at - t.fault_at)
        }
    };
    bed.inject_faults(&plan);

    let jobs: Vec<JobSpec> = program
        .lambdas
        .iter()
        .map(|l| JobSpec {
            workload_id: l.id.0,
            payload: PayloadSpec::Page(0),
        })
        .collect();
    let driver = bed
        .sim
        .add(ClosedLoopDriver::new(router, jobs, THREADS, THINK, None));
    bed.sim
        .post(driver, SimDuration::from_millis(50), StartDriver);
    bed.sim.run_until(SimTime::ZERO + t.run);
    bed.finish_tracing();
    finish_trace(&mut bed, label);

    let d = bed.sim.get::<ClosedLoopDriver>(driver).unwrap();
    let ok = d.completed().iter().filter(|c| !c.failed).count() as u64;
    let healthy_rps = goodput(
        d.completed(),
        SimTime::ZERO + SimDuration::from_millis(300),
        fault_at,
    );
    let outage_rps = goodput(d.completed(), fault_at + DETECT, SimTime::ZERO + t.heal_at);
    let recovery_rps = goodput(
        d.completed(),
        SimTime::ZERO + t.heal_at + DETECT,
        SimTime::ZERO + t.run,
    );
    let rc = bed.sim.get::<ShardRouter>(router).unwrap().counters();
    let tc = bed
        .sim
        .get::<TierController>(controller)
        .unwrap()
        .counters();
    ArmResult {
        label,
        shards: extra + 1,
        issued: d.issued(),
        ok,
        failed: d.completed().len() as u64 - ok,
        healthy_rps,
        outage_rps,
        recovery_rps,
        routed: rc.routed,
        delivered: rc.delivered,
        rerouted: rc.rerouted,
        bounced: rc.bounced,
        duplicates: rc.duplicates,
        deposed: tc.deposed,
        rejoined: tc.rejoined,
    }
}

struct CrowdResult {
    issued: u64,
    completed: u64,
    failed: u64,
    p50_ns: u64,
    p99_ns: u64,
    crowd_rps: f64,
    handed_off: u64,
    adopted: u64,
    hedges_fired: u64,
}

fn run_flash_crowd(seed: u64, smoke: bool) -> CrowdResult {
    let config = resilient_config(seed);
    let gw_params = config.gateway.clone();
    let link = config.link;
    let mut bed = build_testbed(config);
    let program = Arc::new(three_web_servers());
    bed.preload(&program);
    let (router, _controller) =
        bed.enable_gateway_tier(EXTRA_SHARDS, gw_params, link, TierConfig::default());
    attach_trace(&mut bed, "gateway-tier-flash-crowd");

    let horizon = if smoke {
        SimDuration::from_millis(1_200)
    } else {
        SimDuration::from_secs(3)
    };
    let horizon_s = horizon.as_nanos() as f64 / 1e9;
    let base_rps = if smoke { 1_000.0 } else { 2_000.0 };
    let crowd_start = 0.4 * horizon_s;
    let crowd_len = 0.2 * horizon_s;
    let model = PlanetModel::planetary(1_000_000, base_rps).with_flash_crowd(FlashCrowd {
        at_s: crowd_start,
        duration_s: crowd_len,
        multiplier: 4.0,
        region: Some(1),
    });
    // Crash a shard in the middle of the crowd, restart after it passes.
    let crash_at =
        SimTime::ZERO + SimDuration::from_nanos(((crowd_start + 0.25 * crowd_len) * 1e9) as u64);
    let restart_at =
        SimTime::ZERO + SimDuration::from_nanos(((crowd_start + 2.0 * crowd_len) * 1e9) as u64);
    bed.inject_faults(
        &FaultPlan::new()
            .gateway_crash(1, crash_at)
            .gateway_restart(1, restart_at),
    );

    let jobs: Vec<JobSpec> = program
        .lambdas
        .iter()
        .map(|l| JobSpec {
            workload_id: l.id.0,
            payload: PayloadSpec::Page(0),
        })
        .collect();
    let driver = bed.sim.add(PlanetDriver::new(router, model, jobs, horizon));
    bed.sim.post(driver, SimDuration::ZERO, StartDriver);
    // Leave generous drain time after the horizon so every orphan of
    // the crash is re-homed and completed.
    bed.sim
        .run_until(SimTime::ZERO + horizon + SimDuration::from_secs(2));
    bed.finish_tracing();
    finish_trace(&mut bed, "gateway-tier-flash-crowd");

    let d = bed.sim.get::<PlanetDriver>(driver).unwrap();
    let failed = d.completed().iter().filter(|c| c.failed).count() as u64;
    let lat = d.latency_series(100).summary();
    let crowd_rps = d.goodput_in(
        SimTime::ZERO + SimDuration::from_nanos((crowd_start * 1e9) as u64),
        SimTime::ZERO + SimDuration::from_nanos(((crowd_start + crowd_len) * 1e9) as u64),
    );
    let (mut handed_off, mut adopted, mut hedges_fired) = (0u64, 0u64, 0u64);
    for &gw in &bed.gateways {
        let c = bed.sim.get::<Gateway>(gw).unwrap().counters();
        handed_off += c.handed_off;
        adopted += c.adopted;
        hedges_fired += c.hedges_fired;
    }
    CrowdResult {
        issued: d.issued(),
        completed: d.completed().len() as u64,
        failed,
        p50_ns: lat.p50_ns,
        p99_ns: lat.p99_ns,
        crowd_rps,
        handed_off,
        adopted,
        hedges_fired,
    }
}

fn commit_id() -> String {
    std::env::var("LNIC_COMMIT")
        .ok()
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .or_else(|| {
            std::process::Command::new("git")
                .args(["rev-parse", "HEAD"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn arm_json(r: &ArmResult) -> String {
    format!(
        "    {{\"arm\": \"{}\", \"shards\": {}, \"issued\": {}, \"ok\": {}, \"failed\": {},\n     \
         \"healthy_rps\": {:.1}, \"outage_rps\": {:.1}, \"recovery_rps\": {:.1},\n     \
         \"routed\": {}, \"delivered\": {}, \"rerouted\": {}, \"bounced\": {}, \
         \"duplicates\": {}, \"deposed\": {}, \"rejoined\": {}}}",
        r.label,
        r.shards,
        r.issued,
        r.ok,
        r.failed,
        r.healthy_rps,
        r.outage_rps,
        r.recovery_rps,
        r.routed,
        r.delivered,
        r.rerouted,
        r.bounced,
        r.duplicates,
        r.deposed,
        r.rejoined,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = 42 + seed_offset();
    let t = Timing::new(smoke);
    println!(
        "gateway tier handoff: {WORKERS} workers, {} shards in tier arms, seed {seed}{}",
        EXTRA_SHARDS + 1,
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "fault at {} ms, heal at {} ms, run {} ms, outage window opens +{} ms",
        t.fault_at.as_nanos() / 1_000_000,
        t.heal_at.as_nanos() / 1_000_000,
        t.run.as_nanos() / 1_000_000,
        DETECT.as_nanos() / 1_000_000
    );

    let single = run_arm(seed, "single_crash", 0, FaultKind::Crash, t);
    let tier = run_arm(seed, "tier_crash", EXTRA_SHARDS, FaultKind::Crash, t);
    let partition = run_arm(
        seed,
        "tier_partition",
        EXTRA_SHARDS,
        FaultKind::Partition,
        t,
    );

    println!("arm             shards  healthy_rps  outage_rps  recovery_rps  failed  dups");
    for r in [&single, &tier, &partition] {
        println!(
            "{:<15} {:>6}  {:>11.1} {:>11.1} {:>13.1} {:>7} {:>5}",
            r.label, r.shards, r.healthy_rps, r.outage_rps, r.recovery_rps, r.failed, r.duplicates
        );
    }

    // The robustness contract, enforced so a CI smoke run catches
    // regressions: the tier loses nothing and delivers nothing twice,
    // while the single-gateway arm goes dark for the outage.
    for r in [&single, &tier, &partition] {
        assert_eq!(r.failed, 0, "{}: no client request may fail", r.label);
        assert_eq!(r.duplicates, 0, "{}: no duplicate deliveries", r.label);
    }
    let tier_ratio = tier.outage_rps / tier.healthy_rps;
    let partition_ratio = partition.outage_rps / partition.healthy_rps;
    let single_ratio = single.outage_rps / single.healthy_rps;
    println!(
        "outage/healthy goodput: single {single_ratio:.3}, tier crash {tier_ratio:.3}, tier partition {partition_ratio:.3}"
    );
    assert!(
        single_ratio < 0.1,
        "single-gateway outage goodput should collapse (got {single_ratio:.3})"
    );
    assert!(
        tier_ratio >= 0.9,
        "tier crash outage goodput must stay >= 0.9x healthy (got {tier_ratio:.3})"
    );
    assert!(
        partition_ratio >= 0.9,
        "tier partition outage goodput must stay >= 0.9x healthy (got {partition_ratio:.3})"
    );

    let crowd = run_flash_crowd(seed, smoke);
    assert_eq!(
        crowd.issued, crowd.completed,
        "flash crowd: every issued request must terminate"
    );
    assert_eq!(crowd.failed, 0, "flash crowd: zero failures");
    println!(
        "flash crowd: issued={} completed={} failed={} crowd_rps={:.1} p50={:.3}ms p99={:.3}ms handed_off={} adopted={}",
        crowd.issued,
        crowd.completed,
        crowd.failed,
        crowd.crowd_rps,
        crowd.p50_ns as f64 / 1e6,
        crowd.p99_ns as f64 / 1e6,
        crowd.handed_off,
        crowd.adopted
    );

    let mut json = String::new();
    json.push_str("{\n  \"experiment\": \"gateway_tier\",\n");
    let _ = writeln!(
        json,
        "  \"seed\": {seed}, \"commit\": \"{}\", \"smoke\": {smoke},",
        commit_id()
    );
    let _ = writeln!(
        json,
        "  \"workers\": {WORKERS}, \"threads\": {THREADS}, \"tier_shards\": {},",
        EXTRA_SHARDS + 1
    );
    let _ = writeln!(
        json,
        "  \"fault_at_ms\": {}, \"heal_at_ms\": {}, \"detect_ms\": {},",
        t.fault_at.as_nanos() / 1_000_000,
        t.heal_at.as_nanos() / 1_000_000,
        DETECT.as_nanos() / 1_000_000
    );
    let _ = writeln!(
        json,
        "  \"goodput_ratios\": {{\"single_crash\": {single_ratio:.4}, \"tier_crash\": {tier_ratio:.4}, \"tier_partition\": {partition_ratio:.4}}},"
    );
    json.push_str("  \"arms\": [\n");
    let arms = [&single, &tier, &partition];
    for (i, r) in arms.iter().enumerate() {
        let comma = if i + 1 == arms.len() { "" } else { "," };
        let _ = writeln!(json, "{}{comma}", arm_json(r));
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"flash_crowd\": {{\"issued\": {}, \"completed\": {}, \"failed\": {}, \
         \"crowd_rps\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"handed_off\": {}, \
         \"adopted\": {}, \"hedges_fired\": {}}}",
        crowd.issued,
        crowd.completed,
        crowd.failed,
        crowd.crowd_rps,
        crowd.p50_ns,
        crowd.p99_ns,
        crowd.handed_off,
        crowd.adopted,
        crowd.hedges_fired
    );
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_gateway.json", json).expect("write bench json");
    println!("wrote results/BENCH_gateway.json");
}
