//! Concurrency sweep (beyond the paper's fixed 1/56 points): offered
//! load vs latency and throughput for all three backends on the web
//! workload, exposing each backend's saturation knee.
//!
//! λ-NIC's curve stays flat until the *gateway* saturates (~58 k r/s);
//! bare metal saturates at its GIL-serialized service rate; containers
//! saturate earliest.
//!
//! Run with: `cargo run --release -p lnic-bench --bin sweep_concurrency`

use lnic::prelude::BackendKind;
use lnic_bench::{fmt_ms, run_workload, Workload};

fn main() {
    let levels = [1usize, 2, 4, 8, 16, 32, 56, 112];
    println!("web server: latency (ms) and throughput (req/s) vs concurrency\n");
    println!(
        "{:>5} | {:>10} {:>9} | {:>10} {:>9} | {:>10} {:>9}",
        "conc", "nic ms", "nic r/s", "bm ms", "bm r/s", "ct ms", "ct r/s"
    );
    let mut prev_bm_rps = 0.0;
    let mut bm_knee = None;
    for &c in &levels {
        let mut row = Vec::new();
        for backend in [
            BackendKind::Nic,
            BackendKind::BareMetal,
            BackendKind::Container,
        ] {
            let r = run_workload(backend, Workload::Web, c, (400 / c as u64).max(10), 5, 77);
            row.push((r.latency.summary().mean_ns, r.throughput_rps));
        }
        println!(
            "{:>5} | {:>10} {:>9.0} | {:>10} {:>9.0} | {:>10} {:>9.0}",
            c,
            fmt_ms(row[0].0),
            row[0].1,
            fmt_ms(row[1].0),
            row[1].1,
            fmt_ms(row[2].0),
            row[2].1
        );
        // Detect the bare-metal knee: throughput stops growing.
        if bm_knee.is_none() && prev_bm_rps > 0.0 && row[1].1 < prev_bm_rps * 1.1 {
            bm_knee = Some(c);
        }
        prev_bm_rps = row[1].1;
    }
    if let Some(k) = bm_knee {
        println!("\nbare metal saturates near {k} concurrent clients;");
    }
    println!("lambda-NIC keeps scaling until the host gateway becomes the bottleneck");
    println!("(~58k req/s; see ablation 4 for the gateway-on-NIC ceiling).");
}
