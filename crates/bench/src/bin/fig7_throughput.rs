//! Figure 7: average throughput when executing a single workload
//! instance in isolation — closed-loop with 1 thread and with 56
//! parallel threads (the maximum simultaneous threads of the testbed
//! CPU), three workloads × three backends.
//!
//! Paper's headline numbers (§6.3.1): λ-NIC services requests 27x-736x
//! faster than the two backends for the web server and key-value client
//! and 5x-15x faster for the image transformer.
//!
//! Run with: `cargo run --release -p lnic-bench --bin fig7_throughput`

use lnic::prelude::BackendKind;
use lnic_bench::{print_comparison, run_workload, Comparison, Workload};

fn main() {
    const REQUESTS: u64 = 150;

    let backends = [
        BackendKind::Nic,
        BackendKind::BareMetal,
        BackendKind::Container,
    ];

    // results[workload][backend] = (rps_1thread, rps_56threads)
    let mut results = vec![vec![(0.0f64, 0.0f64); backends.len()]; Workload::ALL.len()];

    for (wi, workload) in Workload::ALL.into_iter().enumerate() {
        println!("\n#### {} ####", workload.name());
        println!("{:<14} {:>16} {:>16}", "backend", "1 thread", "56 threads");
        for (bi, backend) in backends.into_iter().enumerate() {
            let one = run_workload(backend, workload, 1, REQUESTS, 10, 7 + wi as u64);
            let many = run_workload(backend, workload, 56, REQUESTS / 10, 10, 7 + wi as u64);
            results[wi][bi] = (one.throughput_rps, many.throughput_rps);
            println!(
                "{:<14} {:>12.0} r/s {:>12.0} r/s",
                backend.name(),
                one.throughput_rps,
                many.throughput_rps
            );
        }
    }

    let mut rows = Vec::new();
    let paper = ["27x-736x", "27x-736x", "5x-15x"];
    for (wi, workload) in Workload::ALL.into_iter().enumerate() {
        let (nic1, nic56) = results[wi][0];
        let worst_1 = results[wi][1].0.max(results[wi][2].0);
        let best_other_56 = results[wi][1].1.max(results[wi][2].1);
        let min_gain = (nic1 / worst_1).min(nic56 / best_other_56);
        let max_gain = (nic1 / results[wi][2].0).max(nic56 / results[wi][2].1);
        rows.push(Comparison {
            label: format!("{}: λ-NIC speedup range", workload.name()),
            paper: paper[wi].to_owned(),
            measured: format!("{min_gain:.0}x-{max_gain:.0}x"),
        });
    }
    print_comparison("Figure 7: isolation throughput", &rows);
    println!("\n(λ-NIC's 56-thread numbers are gateway-proxy-bound, as in the");
    println!(" paper's testbed where the gateway runs on the master node's CPU.)");
}
