//! Replicated NIC-side KV under fire: linearizability and durability
//! across leader crashes, partitions, asymmetric cuts, and wire chaos.
//!
//! A 3-replica raft group spans the NIC workers (leases fenced through
//! the PR-5 membership epochs), serving reads at the leader NIC without
//! a host hop and replicating writes NIC-to-NIC over the data-plane
//! links. Every cell drives a read-heavy Zipf mix through the gateway
//! while one fault plan runs, with the online Wing–Gong linearizability
//! checker (sim invariant rule 10) attached — the run panics on the
//! first non-linearizable read, so a completed sweep *is* the
//! zero-violations claim. On top of that each cell audits durability
//! directly: every acknowledged write must be present in the surviving
//! leader's replicated store.
//!
//! The healthy cell also gates the latency claim: leader-NIC read p99
//! must stay within 2x the stateless NIC-lambda p99 pinned by
//! `placement_ablation` (the hybrid arm) — replication must not cost
//! the datapath its reason to exist.
//!
//! Emits `results/kv_replication.json` (one cell per fault plan, with
//! seed and commit metadata). `--history=PATH` streams the per-key
//! KV history (`kv_invoke`/`kv_response` events) as JSONL while the
//! run executes, so a linearizability panic leaves the violating
//! history on disk for CI to upload.
//!
//! Run with: `cargo run --release -p lnic-bench --bin kv_replication`
//! (`--smoke` runs the healthy + leader-crash cells for CI).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{LineWriter, Write as _};

use lnic::failover::FailoverConfig;
use lnic::prelude::*;
use lnic::repkv::RepKvReplica;
use lnic_raft::{RaftConfig, Role};
use lnic_sim::check::InvariantChecker;
use lnic_sim::prelude::*;
use lnic_sim::trace::{json_line, TraceRecord, TraceSink};
use lnic_workloads::kv::{KvMix, REPKV_WORKLOAD_ID};

const THREADS: usize = 4;
const THINK: SimDuration = SimDuration::from_micros(200);
/// Driver start: past the first election, so the healthy cell measures
/// steady-state leader reads.
const WARMUP: SimDuration = SimDuration::from_millis(100);
/// Faults aim at whoever leads at this instant.
const FAULT_AT: SimDuration = SimDuration::from_millis(160);
const SETTLE: SimDuration = SimDuration::from_secs(1);
/// Fallback stateless NIC-lambda p99 (ms) when
/// `results/placement_ablation.json` is absent: the pinned hybrid arm.
const FALLBACK_BASELINE_P99_MS: f64 = 0.0262;

/// Raft timers for the group: the 15 ms read lease provably lapses
/// before the 20 ms election floor (one global clock), so a deposed
/// leader can never serve a stale read.
fn raft_cfg() -> RaftConfig {
    RaftConfig {
        election_timeout_min: SimDuration::from_millis(20),
        election_timeout_max: SimDuration::from_millis(40),
        heartbeat_interval: SimDuration::from_millis(5),
        read_lease: Some(SimDuration::from_millis(15)),
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Plan {
    /// No faults: the latency baseline.
    Healthy,
    /// Crash the leader's worker, restart it 300 ms later.
    LeaderCrash,
    /// Cut a follower off the switch: the leader keeps serving.
    PartitionFollower,
    /// Cut the leader off: the majority elects a successor.
    PartitionLeader,
    /// Cut the leader plus one follower: no quorum until the heal.
    PartitionMajority,
    /// One-way cut: the leader's uplink goes dark (it hears everything,
    /// nobody hears it) — the classic asymmetric gray failure.
    AsymCut,
    /// Reorder + duplicate + corrupt windows on every worker link:
    /// replication frames take the same beating as request traffic.
    WireChaos,
}

impl Plan {
    const ALL: [Plan; 7] = [
        Plan::Healthy,
        Plan::LeaderCrash,
        Plan::PartitionFollower,
        Plan::PartitionLeader,
        Plan::PartitionMajority,
        Plan::AsymCut,
        Plan::WireChaos,
    ];
    const SMOKE: [Plan; 2] = [Plan::Healthy, Plan::LeaderCrash];

    fn name(self) -> &'static str {
        match self {
            Plan::Healthy => "healthy",
            Plan::LeaderCrash => "leader_crash",
            Plan::PartitionFollower => "partition_follower",
            Plan::PartitionLeader => "partition_leader",
            Plan::PartitionMajority => "partition_majority",
            Plan::AsymCut => "asym_cut",
            Plan::WireChaos => "wire_chaos",
        }
    }

    /// How long after the fault window the cell keeps running.
    fn horizon(self) -> SimDuration {
        let outage = match self {
            Plan::Healthy => SimDuration::ZERO,
            Plan::LeaderCrash => SimDuration::from_millis(300),
            Plan::PartitionFollower | Plan::PartitionLeader => SimDuration::from_millis(400),
            Plan::PartitionMajority => SimDuration::from_millis(400),
            Plan::AsymCut => SimDuration::from_millis(300),
            Plan::WireChaos => SimDuration::from_millis(700),
        };
        FAULT_AT + outage + SETTLE
    }
}

/// Per-run KV history audit: pairs `kv_invoke`/`kv_response` events,
/// collects acknowledged write values (each doubles as its PutOnce
/// uid), successful-read latencies, and leadership handovers.
#[derive(Default)]
struct KvAudit {
    /// request id → (write, value).
    invokes: HashMap<u64, (bool, u64)>,
    acked_writes: Vec<u64>,
    ok_reads: u64,
    failed_ops: u64,
    read_latency: Option<Series>,
    leader_marks: u64,
}

impl TraceSink for KvAudit {
    fn on_record(&mut self, rec: &TraceRecord) {
        match rec.event {
            TraceEvent::KvInvoke {
                request_id,
                write,
                value,
                ..
            } => {
                self.invokes.insert(request_id, (write, value));
            }
            TraceEvent::KvResponse { request_id, ok, .. } => {
                let Some(&(write, value)) = self.invokes.get(&request_id) else {
                    return;
                };
                match (ok, write) {
                    (true, true) => self.acked_writes.push(value),
                    (true, false) => self.ok_reads += 1,
                    (false, _) => self.failed_ops += 1,
                }
            }
            TraceEvent::RequestCompleted {
                request_id,
                latency_ns,
                failed: false,
                ..
            } => {
                if let Some(&(false, _)) = self.invokes.get(&request_id) {
                    self.read_latency
                        .get_or_insert_with(|| Series::new("repkv_reads"))
                        .record_ns(latency_ns);
                }
            }
            TraceEvent::Mark {
                label: "repkv_leader",
                ..
            } => {
                self.leader_marks += 1;
            }
            _ => {}
        }
    }
}

/// Streams the KV history to disk as JSONL, one line per
/// `kv_invoke`/`kv_response`/leadership event, line-buffered so a
/// linearizability panic mid-run still leaves the violating prefix on
/// disk for CI to upload.
struct KvHistorySink {
    out: LineWriter<File>,
}

impl TraceSink for KvHistorySink {
    fn on_record(&mut self, rec: &TraceRecord) {
        let keep = matches!(
            rec.event,
            TraceEvent::KvInvoke { .. }
                | TraceEvent::KvResponse { .. }
                | TraceEvent::Mark {
                    label: "repkv_leader",
                    ..
                }
        );
        if keep {
            let _ = writeln!(self.out, "{}", json_line(rec));
        }
    }

    fn on_finish(&mut self, _now: SimTime) {
        let _ = self.out.flush();
    }
}

struct Cell {
    name: &'static str,
    issued: u64,
    ok: u64,
    failed: u64,
    availability: f64,
    ok_reads: u64,
    acked_writes: u64,
    failed_ops: u64,
    lost_acked_writes: u64,
    leader_elections: u64,
    redirected_replies: u64,
    codec_rejects: u64,
    read_p50_ms: f64,
    read_p99_ms: f64,
    kv_forced_gc: u64,
    violations: u64,
}

fn leader_index(bed: &Testbed) -> Option<usize> {
    bed.repkv_replicas.iter().enumerate().find_map(|(i, &id)| {
        let rep = bed.sim.get::<RepKvReplica>(id)?;
        let raft = rep.raft()?;
        (raft.role() == Role::Leader && !raft.is_crashed()).then_some(i)
    })
}

fn run_cell(seed: u64, plan: Plan, history: Option<&str>) -> Cell {
    let mut config = TestbedConfig::new(BackendKind::Nic).seed(seed).workers(3);
    config.gateway.rpc_timeout = SimDuration::from_millis(50);
    config.gateway.rpc_attempts = 5;
    config.gateway = config.gateway.resilient();
    let mut bed = build_testbed(config);
    bed.sim.add_trace_sink(Box::new(KvAudit::default()));
    if let Some(path) = history {
        let file =
            File::create(format!("{path}.{}.jsonl", plan.name())).expect("create history file");
        bed.sim.add_trace_sink(Box::new(KvHistorySink {
            out: LineWriter::new(file),
        }));
    }
    bed.enable_replicated_kv(raft_cfg());
    // Fenced membership: lease epochs double as raft leadership fences
    // (an epoch rise steps the co-located replica down).
    bed.enable_failover(
        FailoverConfig {
            heartbeat_interval: SimDuration::from_millis(10),
            missed_beats: 3,
            ..FailoverConfig::default()
        }
        .fenced(),
    );

    let driver = bed.sim.add(ClosedLoopDriver::new(
        bed.gateway,
        vec![JobSpec {
            workload_id: REPKV_WORKLOAD_ID,
            // 64 keys, 90% reads, Zipf 0.99 popularity: the interactive
            // read-heavy regime the paper targets.
            payload: PayloadSpec::RepKv(KvMix::new(64, 900, 990)),
        }],
        THREADS,
        THINK,
        None,
    ));
    bed.sim.post(driver, WARMUP, StartDriver);

    // Let the first election settle, then aim the fault at the leader.
    bed.sim.run_until(SimTime::ZERO + FAULT_AT);
    let leader = leader_index(&bed).expect("a leader exists before the fault window");
    let at = bed.sim.now();
    let follower = (leader + 1) % 3;
    let fault_plan = match plan {
        Plan::Healthy => FaultPlan::new(),
        Plan::LeaderCrash => FaultPlan::new()
            .nic_crash(leader, at)
            .nic_restart(leader, at + SimDuration::from_millis(300)),
        Plan::PartitionFollower => {
            FaultPlan::new().partition(&[follower], at, SimDuration::from_millis(400))
        }
        Plan::PartitionLeader => {
            FaultPlan::new().partition(&[leader], at, SimDuration::from_millis(400))
        }
        Plan::PartitionMajority => {
            FaultPlan::new().partition(&[leader, follower], at, SimDuration::from_millis(400))
        }
        Plan::AsymCut => {
            FaultPlan::new().asym_link(1 + leader, 0, at, SimDuration::from_millis(300))
        }
        Plan::WireChaos => {
            let mut p = FaultPlan::new();
            let window = SimDuration::from_millis(700);
            for w in 0..3 {
                for link in [4 + 2 * w, 5 + 2 * w] {
                    p = p
                        .reorder(link, at, window, SimDuration::from_micros(200))
                        .duplicate(link, at, window, 0.2)
                        .corrupt(link, at, window, 0.05);
                }
            }
            p
        }
    };
    bed.inject_faults(&fault_plan);
    bed.sim.run_until(SimTime::ZERO + plan.horizon());
    bed.finish_tracing();

    // Durability audit: every acknowledged write must be in the
    // surviving leader's replicated store (committed through a
    // majority, so no single fault can un-write it).
    let acked = bed
        .sim
        .trace_sink::<KvAudit>()
        .expect("kv audit sink")
        .acked_writes
        .clone();
    let final_leader = leader_index(&bed).expect("a leader survives the run");
    let kv = bed
        .sim
        .get::<RepKvReplica>(bed.repkv_replicas[final_leader])
        .unwrap()
        .raft()
        .unwrap()
        .kv();
    let lost_acked_writes = acked.iter().filter(|&&uid| !kv.has_uid(uid)).count() as u64;

    let codec_rejects: u64 = bed
        .repkv_replicas
        .iter()
        .map(|&id| {
            bed.sim
                .get::<RepKvReplica>(id)
                .unwrap()
                .counters()
                .codec_rejects
        })
        .sum();
    let checker = bed
        .sim
        .trace_sink::<InvariantChecker>()
        .expect("invariant checker attached");
    let (kv_forced_gc, violations) = (checker.kv_forced_gc(), checker.violations().len() as u64);
    let audit = bed.sim.trace_sink::<KvAudit>().expect("kv audit sink");
    let d = bed.sim.get::<ClosedLoopDriver>(driver).unwrap();
    let issued = d.issued();
    let ok = d.completed().iter().filter(|c| !c.failed).count() as u64;
    let failed = d.completed().iter().filter(|c| c.failed).count() as u64;
    let reads = audit.read_latency.as_ref();
    let q = |s: Option<&Series>, p: f64| {
        s.and_then(|s| s.quantile_ns(p))
            .map_or(f64::NAN, |ns| ns as f64 / 1e6)
    };
    Cell {
        name: plan.name(),
        issued,
        ok,
        failed,
        availability: if issued == 0 {
            0.0
        } else {
            ok as f64 / issued as f64
        },
        ok_reads: audit.ok_reads,
        acked_writes: audit.acked_writes.len() as u64,
        failed_ops: audit.failed_ops,
        lost_acked_writes,
        leader_elections: audit.leader_marks,
        redirected_replies: bed
            .sim
            .get::<Gateway>(bed.gateway)
            .unwrap()
            .counters()
            .redirected_replies,
        codec_rejects,
        read_p50_ms: q(reads, 0.5),
        read_p99_ms: q(reads, 0.99),
        kv_forced_gc,
        violations,
    }
}

/// The stateless NIC-lambda p99 (ms) this sweep's healthy read p99 is
/// gated against: the hybrid arm of `results/placement_ablation.json`
/// when present, else the pinned fallback.
fn baseline_p99_ms() -> f64 {
    let Ok(text) = std::fs::read_to_string("results/placement_ablation.json") else {
        return FALLBACK_BASELINE_P99_MS;
    };
    text.lines()
        .find(|l| l.contains("\"hybrid\""))
        .and_then(|l| {
            let (_, rest) = l.split_once("\"p99_ms\":")?;
            rest.split([',', '}']).next()?.trim().parse().ok()
        })
        .unwrap_or(FALLBACK_BASELINE_P99_MS)
}

fn commit_id() -> String {
    std::env::var("LNIC_COMMIT")
        .ok()
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .or_else(|| {
            std::process::Command::new("git")
                .args(["rev-parse", "HEAD"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let history = std::env::args().find_map(|a| a.strip_prefix("--history=").map(str::to_owned));
    let plans: &[Plan] = if smoke { &Plan::SMOKE } else { &Plan::ALL };
    let seed = 42 + seed_offset();

    println!(
        "kv replication: 3 replicas, {THREADS} client threads, seed {seed}{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!("  cell                 avail    reads  writes  lost  elect  redir  rd_p99(ms)");

    let mut cells = Vec::new();
    for &plan in plans {
        let cell = run_cell(seed, plan, history.as_deref());
        println!(
            "  {:<19}  {:.5}  {:>6}  {:>6}  {:>4}  {:>5}  {:>5}  {:>10.4}",
            cell.name,
            cell.availability,
            cell.ok_reads,
            cell.acked_writes,
            cell.lost_acked_writes,
            cell.leader_elections,
            cell.redirected_replies,
            cell.read_p99_ms
        );
        cells.push(cell);
    }

    // The sweep's claims, asserted rather than merely printed. The
    // linearizability claim needs no assert: rule 10 panics in-stream,
    // so reaching this line with zero recorded violations is the proof.
    for c in &cells {
        assert_eq!(
            c.violations, 0,
            "cell {} recorded invariant violations",
            c.name
        );
        assert_eq!(
            c.lost_acked_writes, 0,
            "cell {} lost acknowledged writes",
            c.name
        );
        assert!(
            c.ok_reads > 0 && c.acked_writes > 0,
            "cell {} made no progress",
            c.name
        );
    }
    let baseline = baseline_p99_ms();
    let healthy = cells.iter().find(|c| c.name == "healthy").unwrap();
    assert!(
        healthy.read_p99_ms <= 2.0 * baseline,
        "leader-NIC read p99 {:.4} ms exceeds 2x the stateless NIC-lambda p99 {:.4} ms",
        healthy.read_p99_ms,
        baseline
    );

    let mut json = String::new();
    json.push_str("{\n  \"experiment\": \"kv_replication\",\n");
    let _ = writeln!(
        json,
        "  \"seed\": {seed}, \"commit\": \"{}\", \"smoke\": {smoke}, \"threads\": {THREADS},",
        commit_id()
    );
    let _ = writeln!(
        json,
        "  \"baseline_p99_ms\": {baseline}, \"read_p99_budget_ms\": {},",
        2.0 * baseline
    );
    json.push_str("  \"cells\": [\n");
    let num = |v: f64| {
        if v.is_nan() {
            "null".to_owned()
        } else {
            format!("{v:.4}")
        }
    };
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"plan\": \"{}\", \"issued\": {}, \"ok\": {}, \"failed\": {}, \
             \"availability\": {:.6}, \"ok_reads\": {}, \"acked_writes\": {}, \
             \"failed_ops\": {}, \"lost_acked_writes\": {}, \"leader_elections\": {}, \
             \"redirected_replies\": {}, \"codec_rejects\": {}, \"read_p50_ms\": {}, \
             \"read_p99_ms\": {}, \"kv_forced_gc\": {}, \"violations\": {}}}{comma}",
            c.name,
            c.issued,
            c.ok,
            c.failed,
            c.availability,
            c.ok_reads,
            c.acked_writes,
            c.failed_ops,
            c.lost_acked_writes,
            c.leader_elections,
            c.redirected_replies,
            c.codec_rejects,
            num(c.read_p50_ms),
            num(c.read_p99_ms),
            c.kv_forced_gc,
            c.violations
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/kv_replication.json", json).expect("write sweep json");
    println!("wrote results/kv_replication.json");
}
